//! # aj-outer
//!
//! Outer iterative solvers that wrap a relaxation method — including the
//! asynchronous engines — as an inner component, the composition the paper
//! points at: asynchronous Jacobi's modern job is smoothing and
//! preconditioning, not standalone solving.
//!
//! Two families:
//!
//! * [`vcycle`] — an L-level multigrid V-cycle generalizing the
//!   `aj_linalg::multigrid` two-grid seed. The hierarchy ([`hierarchy`])
//!   is geometric (rediscretized 5-point stencils with full-weighting /
//!   bilinear transfers) when the matrix is recognizably a 2-D grid, and
//!   greedy strength-based aggregation with a Galerkin product otherwise.
//! * [`flex`] — flexible Krylov solvers (FCG and FGMRES) whose
//!   preconditioner is K inner relaxation sweeps. "Flexible" matters:
//!   an asynchronous inner solve is a *different* operator every
//!   application, which plain CG/GMRES do not tolerate.
//!
//! The crate deliberately depends only on `aj-linalg`. Execution layers
//! plug in through the [`Smoother`] trait: given a level, its matrix, and
//! a residual, run `steps` relaxation sweeps on `A z = r` from `z = 0` and
//! return the correction `z`. [`ReferenceSmoother`] is the sequential
//! dense-reference implementation; `aj-core` adapts the shared-memory and
//! distributed engines behind the same trait, so inner sweeps run
//! asynchronously and only the coarse-grid transfer / Krylov recurrence
//! are synchronization points.

pub mod flex;
pub mod hierarchy;
pub mod vcycle;

pub use hierarchy::Hierarchy;

use aj_linalg::method::{method_iteration, Method, ResolvedMethod};
use aj_linalg::vecops::{self, Norm};
use aj_linalg::{CsrMatrix, LinalgError};

/// Relative-residual ceiling past which an outer solve is declared
/// divergent and stopped (the paper's `ρ(G) > 1` runs blow up fast; there
/// is no point iterating to the cap or to infinities).
pub const DIVERGENCE_CAP: f64 = 1e12;

/// Outer solves stop early when the relative residual has improved by less
/// than 1% over this many consecutive outer iterations — a stalled V-cycle
/// or Krylov plateau would otherwise burn the full iteration cap.
pub const STALL_WINDOW: usize = 30;

/// Which outer solver to run, with its family-specific knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OuterKind {
    /// Multilevel V-cycle; `levels` caps the hierarchy depth (`None` =
    /// coarsen until the coarse problem is trivial), `steps` is the number
    /// of pre- and post-smoothing sweeps per level.
    VCycle {
        /// Hierarchy depth cap (≥ 2 when given).
        levels: Option<usize>,
        /// Pre/post smoothing sweeps per level per cycle.
        steps: usize,
    },
    /// Flexible conjugate gradients; `inner` relaxation sweeps per
    /// preconditioner application.
    Fcg {
        /// Inner sweeps per outer iteration.
        inner: usize,
    },
    /// Flexible GMRES with restart; `inner` relaxation sweeps per
    /// preconditioner application.
    Fgmres {
        /// Inner sweeps per outer iteration.
        inner: usize,
        /// Arnoldi basis size between restarts.
        restart: usize,
    },
}

/// A fully-parsed `outer=` selector: the outer solver plus the relaxation
/// method used as its smoother/preconditioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OuterSpec {
    /// The outer solver family and its knobs.
    pub kind: OuterKind,
    /// The inner relaxation method (smoother for `vcycle`, preconditioner
    /// for the Krylov kinds).
    pub smooth: Method,
}

impl OuterSpec {
    /// Default smoothing sweeps per level for `vcycle`.
    pub const DEFAULT_STEPS: usize = 2;
    /// Default inner sweeps per Krylov preconditioner application.
    pub const DEFAULT_INNER: usize = 4;
    /// Default FGMRES restart length.
    pub const DEFAULT_RESTART: usize = 30;

    /// The default smoother: damped first-order Richardson with the
    /// spectrum-estimated ω. Undamped Jacobi is a *bad* smoother exactly
    /// in the paper's divergence regime (λ_max(D⁻¹A) ≈ 2 leaves the
    /// highest-frequency error untouched), so the default damps.
    pub fn default_smooth() -> Method {
        Method::Richardson1 {
            omega: aj_linalg::OmegaSpec::Auto,
        }
    }

    /// Canonical grammar name of the outer kind.
    pub fn name(&self) -> &'static str {
        match self.kind {
            OuterKind::VCycle { .. } => "vcycle",
            OuterKind::Fcg { .. } => "fcg",
            OuterKind::Fgmres { .. } => "fgmres",
        }
    }

    /// Canonical spec string that re-parses to this value (the memoization
    /// key used by aj-serve, mirroring `ResolvedMethod::to_spec`).
    pub fn to_spec(&self) -> String {
        let smooth = method_spec(&self.smooth);
        match self.kind {
            OuterKind::VCycle { levels, steps } => {
                let levels = match levels {
                    Some(l) => format!("levels={l}:"),
                    None => String::new(),
                };
                format!("vcycle:{levels}smooth={smooth}:steps={steps}")
            }
            OuterKind::Fcg { inner } => format!("fcg:prec={smooth}:inner={inner}"),
            OuterKind::Fgmres { inner, restart } => {
                format!("fgmres:prec={smooth}:inner={inner}:restart={restart}")
            }
        }
    }
}

/// Renders an (unresolved) [`Method`] back into its selector form.
fn method_spec(m: &Method) -> String {
    use aj_linalg::OmegaSpec;
    let omega = |o: &OmegaSpec| match o {
        OmegaSpec::Fixed(w) => format!("omega={w}"),
        OmegaSpec::Auto => "omega=auto".to_string(),
    };
    match m {
        Method::Jacobi => "jacobi".into(),
        Method::Richardson1 { omega: o } => format!("richardson1:{}", omega(o)),
        Method::Richardson2 { omega: o, beta } => match beta {
            Some(b) => format!("richardson2:{}:beta={b}", omega(o)),
            None => format!("richardson2:{}", omega(o)),
        },
        Method::RandomizedResidual { fraction } => format!("rwr:fraction={fraction}"),
    }
}

/// Reinterprets `omega=auto` (and the auto `β`) for *smoothing* position:
/// instead of the standalone minimax rule over the full spectrum
/// `[λ_min, λ_max]` of `D⁻¹A` — whose damping factor at the top of the
/// spectrum is `(λ_max−λ_min)/(λ_max+λ_min) ≈ 1`, i.e. a terrible smoother
/// — target the oscillatory half-band `[λ_max/2, λ_max]` that the coarse
/// grid cannot represent. For `richardson1` this gives the classic damped
/// weight `ω = 4/(3 λ_max)` (= 2/3 on the unit-diagonal Laplacian); for
/// `richardson2` the Chebyshev/heavy-ball pair over the half-band, which
/// damps it at ≈ 0.17 per sweep. Methods with fixed parameters (and
/// jacobi/rwr, which have none) pass through unchanged.
///
/// # Errors
/// Propagates the spectrum-estimate failures of
/// [`aj_linalg::method::preconditioned_extremes`].
pub fn smoothing_method(method: &Method, a: &CsrMatrix) -> Result<Method, LinalgError> {
    use aj_linalg::method::preconditioned_extremes;
    use aj_linalg::OmegaSpec;
    Ok(match *method {
        Method::Richardson1 {
            omega: OmegaSpec::Auto,
        } => {
            let (_, hi) = preconditioned_extremes(a)?;
            Method::Richardson1 {
                omega: OmegaSpec::Fixed(2.0 / (hi / 2.0 + hi)),
            }
        }
        Method::Richardson2 {
            omega: OmegaSpec::Auto,
            beta: None,
        } => {
            let (_, hi) = preconditioned_extremes(a)?;
            let (sl, sh) = ((hi / 2.0).sqrt(), hi.sqrt());
            Method::Richardson2 {
                omega: OmegaSpec::Fixed((2.0 / (sl + sh)).powi(2)),
                beta: Some(((sh - sl) / (sh + sl)).powi(2)),
            }
        }
        m => m,
    })
}

/// The inner component contract: approximately solve `A z = r` starting
/// from `z = 0` with `steps` relaxation sweeps and return `z`. The caller
/// applies the correction (`x += z`); running the sweeps on the residual
/// equation instead of the original system is what lets one engine run
/// serve every level of a hierarchy.
///
/// `level` identifies which hierarchy matrix `a` is (0 = finest; flexible
/// Krylov always passes 0), so implementations can memoize per-level state
/// (resolved method parameters, communication plans) across calls.
pub trait Smoother {
    /// Runs `steps` sweeps on `A z = r` from zero; returns `z`.
    ///
    /// # Errors
    /// Propagates engine/resolution failures as display-ready strings.
    fn smooth(
        &mut self,
        level: usize,
        a: &CsrMatrix,
        r: &[f64],
        steps: usize,
    ) -> Result<Vec<f64>, String>;
}

/// Sequential reference [`Smoother`]: loops the dense-reference
/// [`method_iteration`] with two-phase updates. Per-level resolution
/// (Lanczos ω estimation, rwr seeding) is memoized on first use.
pub struct ReferenceSmoother {
    method: Method,
    seed: u64,
    smoothing: bool,
    resolved: Vec<Option<(ResolvedMethod, Vec<f64>)>>,
}

impl ReferenceSmoother {
    /// A reference smoother applying `method`; `seed` feeds randomized row
    /// selection. `smoothing` switches `omega=auto` to the half-band
    /// [`smoothing_method`] rule — pass `true` when this instance smooths
    /// inside a V-cycle and `false` when it preconditions a Krylov outer
    /// (where the standalone full-spectrum rule is the right one).
    pub fn new(method: Method, seed: u64, smoothing: bool) -> Self {
        ReferenceSmoother {
            method,
            seed,
            smoothing,
            resolved: Vec::new(),
        }
    }
}

impl Smoother for ReferenceSmoother {
    fn smooth(
        &mut self,
        level: usize,
        a: &CsrMatrix,
        r: &[f64],
        steps: usize,
    ) -> Result<Vec<f64>, String> {
        if self.resolved.len() <= level {
            self.resolved.resize(level + 1, None);
        }
        if self.resolved[level].is_none() {
            let method = if self.smoothing {
                smoothing_method(&self.method, a)
                    .map_err(|e| format!("level {level} smoother: {e}"))?
            } else {
                self.method
            };
            let resolved = method
                .resolve(a, self.seed)
                .map_err(|e| format!("level {level} smoother: {e}"))?;
            let mut diag_inv = a.diagonal();
            for d in &mut diag_inv {
                if *d == 0.0 {
                    return Err(format!("level {level} smoother: zero diagonal"));
                }
                *d = 1.0 / *d;
            }
            self.resolved[level] = Some((resolved, diag_inv));
        }
        let (resolved, diag_inv) = self.resolved[level].as_ref().unwrap();
        let n = a.nrows();
        let mut z = vec![0.0; n];
        let mut z_prev = vec![0.0; n];
        let mut z_next = vec![0.0; n];
        for step in 0..steps as u64 {
            method_iteration(a, r, diag_inv, resolved, step, &z, &z_prev, &mut z_next);
            std::mem::swap(&mut z_prev, &mut z);
            std::mem::swap(&mut z, &mut z_next);
        }
        Ok(z)
    }
}

/// Outcome of an outer solve.
#[derive(Debug, Clone)]
pub struct OuterResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Relative residual after each outer iteration (entry 0 is the
    /// initial residual; one entry per V-cycle / Krylov step after that).
    pub history: Vec<f64>,
    /// Whether the final relative residual met the tolerance.
    pub converged: bool,
    /// Total inner relaxation sweeps spent in the smoother, over all
    /// levels and outer iterations.
    pub inner_sweeps: u64,
}

/// Shared stopping logic for the outer loops: tolerance, divergence cap,
/// and a stall window (< 1% total improvement over [`STALL_WINDOW`] outer
/// iterations).
pub(crate) fn should_stop(history: &[f64], tol: f64) -> bool {
    let last = *history.last().unwrap();
    if last < tol || !last.is_finite() || last > DIVERGENCE_CAP {
        return true;
    }
    if history.len() > STALL_WINDOW {
        let then = history[history.len() - 1 - STALL_WINDOW];
        if last > 0.99 * then {
            return true;
        }
    }
    false
}

/// `‖b − Ax‖ / ‖b‖` in the requested norm (the outer loops' shared
/// residual convention, matching the engines' relative residual).
pub(crate) fn rel_residual(a: &CsrMatrix, x: &[f64], b: &[f64], norm: Norm) -> f64 {
    let nb = vecops::norm(b, norm);
    a.residual_norm(x, b, norm) / if nb > 0.0 { nb } else { 1.0 }
}

/// Solves the coarsest-level (or any small SPD) system tightly with CG;
/// used as the bottom solve of the V-cycle.
pub(crate) fn direct_solve(a: &CsrMatrix, r: &[f64]) -> Result<Vec<f64>, String> {
    let n = a.nrows();
    let out = aj_linalg::krylov::conjugate_gradient(
        a,
        r,
        &vec![0.0; n],
        1e-12,
        (10 * n).max(100),
        Norm::L2,
    )
    .map_err(|e: LinalgError| format!("coarse solve: {e}"))?;
    Ok(out.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip_strings() {
        let s = OuterSpec {
            kind: OuterKind::VCycle {
                levels: Some(4),
                steps: 2,
            },
            smooth: OuterSpec::default_smooth(),
        };
        assert_eq!(
            s.to_spec(),
            "vcycle:levels=4:smooth=richardson1:omega=auto:steps=2"
        );
        let s = OuterSpec {
            kind: OuterKind::Fcg { inner: 4 },
            smooth: Method::Jacobi,
        };
        assert_eq!(s.to_spec(), "fcg:prec=jacobi:inner=4");
        let s = OuterSpec {
            kind: OuterKind::Fgmres {
                inner: 3,
                restart: 20,
            },
            smooth: Method::RandomizedResidual { fraction: 0.5 },
        };
        assert_eq!(
            s.to_spec(),
            "fgmres:prec=rwr:fraction=0.5:inner=3:restart=20"
        );
    }

    #[test]
    fn reference_smoother_matches_jacobi_sweeps() {
        // One Jacobi sweep on A z = r from zero is z = D⁻¹ r.
        let a = aj_linalg::CsrMatrix::from_dense(2, 2, &[4.0, -1.0, -1.0, 4.0], 0.0);
        let r = vec![1.0, 2.0];
        let mut s = ReferenceSmoother::new(Method::Jacobi, 1, true);
        let z = s.smooth(0, &a, &r, 1).unwrap();
        assert!((z[0] - 0.25).abs() < 1e-15);
        assert!((z[1] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn stall_window_stops() {
        // 0.9997/iter over the window is < 1% total improvement → stall.
        let mut h = vec![1.0];
        for _ in 0..=STALL_WINDOW {
            h.push(0.9997 * h.last().unwrap());
        }
        assert!(should_stop(&h, 1e-12));
        // A healthy 10%/iter decay does not trip the window.
        let mut h = vec![1.0];
        for _ in 0..STALL_WINDOW {
            h.push(0.9 * h.last().unwrap());
        }
        assert!(!should_stop(&h, 1e-12));
    }
}
