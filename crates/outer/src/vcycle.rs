//! The L-level V-cycle driver.
//!
//! Each cycle is a defect-correction recursion: pre-smooth (`steps` inner
//! sweeps on `A z = r` via the pluggable [`Smoother`]), restrict the new
//! residual, recurse, prolong-and-correct, post-smooth. The coarsest level
//! is solved tightly with CG. When the smoother is one of the asynchronous
//! engines, everything *inside* a smoothing call runs asynchronously; the
//! level transfers are the only synchronization points.

use crate::hierarchy::Hierarchy;
use crate::{direct_solve, rel_residual, should_stop, OuterResult, Smoother};
use aj_linalg::vecops::Norm;

/// One V-cycle at `level`, improving `x` for `A_level x = b`.
/// `sweeps` accumulates inner smoothing sweeps across the recursion.
fn cycle(
    h: &Hierarchy,
    smoother: &mut dyn Smoother,
    steps: usize,
    level: usize,
    b: &[f64],
    x: &mut [f64],
    sweeps: &mut u64,
) -> Result<(), String> {
    let a = h.matrix(level);
    if level + 1 == h.levels() {
        // Coarsest level: tight CG solve of the residual equation.
        let r = a.residual(x, b);
        let e = direct_solve(a, &r)?;
        for (xi, ei) in x.iter_mut().zip(&e) {
            *xi += ei;
        }
        return Ok(());
    }
    // Pre-smooth: z ≈ A⁻¹ r from zero, then correct.
    let r = a.residual(x, b);
    let z = smoother.smooth(level, a, &r, steps)?;
    *sweeps += steps as u64;
    for (xi, zi) in x.iter_mut().zip(&z) {
        *xi += zi;
    }
    // Coarse-grid correction.
    let r = a.residual(x, b);
    let rc = h.restrict(level, &r);
    let mut ec = vec![0.0; h.matrix(level + 1).nrows()];
    cycle(h, smoother, steps, level + 1, &rc, &mut ec, sweeps)?;
    h.prolong_add(level, &ec, x);
    // Post-smooth.
    let r = a.residual(x, b);
    let z = smoother.smooth(level, a, &r, steps)?;
    *sweeps += steps as u64;
    for (xi, zi) in x.iter_mut().zip(&z) {
        *xi += zi;
    }
    Ok(())
}

/// Runs V-cycles on the finest level of `h` until the relative residual
/// (in `norm`) meets `tol`, diverges past the cap, stalls, or
/// `max_cycles` is reached. `steps` is the pre/post smoothing count per
/// level.
///
/// # Errors
/// Propagates smoother and coarse-solve failures.
#[allow(clippy::too_many_arguments)] // the full outer-solve contract: system + inner + stop rule
pub fn solve(
    h: &Hierarchy,
    smoother: &mut dyn Smoother,
    steps: usize,
    b: &[f64],
    x0: &[f64],
    tol: f64,
    max_cycles: u64,
    norm: Norm,
) -> Result<OuterResult, String> {
    let a = h.matrix(0);
    let mut x = x0.to_vec();
    let mut inner_sweeps = 0u64;
    let mut history = vec![rel_residual(a, &x, b, norm)];
    for _ in 0..max_cycles {
        if should_stop(&history, tol) {
            break;
        }
        cycle(h, smoother, steps, 0, b, &mut x, &mut inner_sweeps)?;
        history.push(rel_residual(a, &x, b, norm));
    }
    let converged = *history.last().unwrap() < tol;
    Ok(OuterResult {
        x,
        history,
        converged,
        inner_sweeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OuterSpec, ReferenceSmoother};
    use aj_matrices::fd::laplacian_2d;

    #[test]
    fn vcycle_solves_laplacian_fast() {
        let a = laplacian_2d(31, 31).scale_to_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![1.0; n];
        let h = Hierarchy::build(&a, None).unwrap();
        let mut s = ReferenceSmoother::new(OuterSpec::default_smooth(), 2018, true);
        let out = solve(&h, &mut s, 2, &b, &vec![0.0; n], 1e-8, 60, Norm::L2).unwrap();
        assert!(out.converged, "history: {:?}", out.history);
        // Textbook V-cycle rates: far fewer cycles than the cap.
        assert!(
            out.history.len() - 1 <= 15,
            "took {} cycles",
            out.history.len() - 1
        );
        assert!(out.inner_sweeps > 0);
        let res = a.residual_norm(&out.x, &b, Norm::L2);
        assert!(res / (n as f64).sqrt() < 1e-7);
    }

    #[test]
    fn vcycle_solves_unstructured_via_aggregation() {
        let a = aj_matrices::fe::fe_matrix(12, 12, 0.2, 11)
            .scale_to_unit_diagonal()
            .unwrap();
        let n = a.nrows();
        let b = vec![1.0; n];
        let h = Hierarchy::build(&a, None).unwrap();
        assert!(!h.is_geometric());
        let mut s = ReferenceSmoother::new(OuterSpec::default_smooth(), 2018, true);
        let out = solve(&h, &mut s, 2, &b, &vec![0.0; n], 1e-8, 200, Norm::L2).unwrap();
        assert!(
            out.converged,
            "history tail: {:?}",
            &out.history[out.history.len().saturating_sub(4)..]
        );
    }
}
