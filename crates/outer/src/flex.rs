//! Flexible Krylov outer solvers: FCG and FGMRES(m).
//!
//! Both treat K inner relaxation sweeps (via [`Smoother`]) as the
//! preconditioner `M⁻¹ r ≈ z`. An asynchronous inner solve is a different
//! operator on every application — nondeterministic interleavings change
//! the effective `M⁻¹` — which breaks the fixed-preconditioner assumptions
//! of standard CG/GMRES. The flexible variants only assume the current
//! application:
//!
//! * **FCG** A-orthogonalizes the new preconditioned direction against the
//!   *previous* direction explicitly (Notay's flexible/truncated CG) rather
//!   than relying on the three-term recurrence.
//! * **FGMRES** stores the preconditioned vectors `Z = [z_1 … z_m]` and
//!   forms the correction from them (Saad), so the Arnoldi identity
//!   `A Z_m = V_{m+1} H̄_m` holds regardless of how `z_j` was produced.

use crate::{rel_residual, should_stop, OuterResult, Smoother};
use aj_linalg::vecops::{self, Norm};
use aj_linalg::CsrMatrix;

/// Flexible (truncated) conjugate gradients with `inner` smoothing sweeps
/// as the preconditioner. Stops on `tol` (relative residual in `norm`),
/// divergence, stall, or `max_outer` iterations.
///
/// # Errors
/// Propagates smoother failures; reports breakdown when a search direction
/// has nonpositive curvature even after a steepest-descent restart (the
/// operator is not SPD as far as the iteration can tell).
#[allow(clippy::too_many_arguments)] // the full outer-solve contract: system + inner + stop rule
pub fn fcg(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    smoother: &mut dyn Smoother,
    inner: usize,
    tol: f64,
    max_outer: u64,
    norm: Norm,
) -> Result<OuterResult, String> {
    let n = a.nrows();
    let mut x = x0.to_vec();
    let mut r = a.residual(&x, b);
    let mut inner_sweeps = 0u64;
    let mut history = vec![rel_residual(a, &x, b, norm)];
    // Previous direction state for the one-back A-orthogonalization.
    let mut p_prev: Vec<f64> = Vec::new();
    let mut ap_prev: Vec<f64> = Vec::new();
    let mut pap_prev = 0.0f64;
    for _ in 0..max_outer {
        if should_stop(&history, tol) {
            break;
        }
        let z = smoother.smooth(0, a, &r, inner)?;
        inner_sweeps += inner as u64;
        let mut p = z.clone();
        if !p_prev.is_empty() {
            // β = (z, A p_prev) / (p_prev, A p_prev): make p A-orthogonal
            // to the previous direction.
            let beta = vecops::dot(&z, &ap_prev) / pap_prev;
            for i in 0..n {
                p[i] -= beta * p_prev[i];
            }
        }
        let mut ap = a.spmv(&p);
        let mut pap = vecops::dot(&p, &ap);
        if pap <= 0.0 {
            // Restart from the raw preconditioned residual.
            p = z;
            ap = a.spmv(&p);
            pap = vecops::dot(&p, &ap);
            if pap <= 0.0 {
                return Err(format!(
                    "FCG breakdown: direction curvature pᵀAp = {pap:.3e} ≤ 0 \
                     (operator or preconditioner not positive definite)"
                ));
            }
        }
        let alpha = vecops::dot(&p, &r) / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        history.push({
            let nb = vecops::norm(b, norm);
            vecops::norm(&r, norm) / if nb > 0.0 { nb } else { 1.0 }
        });
        p_prev = p;
        ap_prev = ap;
        pap_prev = pap;
    }
    // The recurrence residual can drift; recompute the true residual for
    // the verdict so `converged` is honest.
    let final_res = rel_residual(a, &x, b, norm);
    let converged = final_res < tol;
    *history.last_mut().unwrap() = final_res;
    Ok(OuterResult {
        x,
        history,
        converged,
        inner_sweeps,
    })
}

/// Flexible GMRES with restart length `restart` and `inner` smoothing
/// sweeps as the preconditioner. The history records the true relative
/// residual (in `norm`) after every outer iteration — the solution is
/// reconstructed each Arnoldi step, which is cheap at the basis sizes used
/// here and keeps the history convention identical to every other solver.
///
/// # Errors
/// Propagates smoother failures.
#[allow(clippy::too_many_arguments)] // solver knobs, mirrors fcg/vcycle::solve
pub fn fgmres(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    smoother: &mut dyn Smoother,
    inner: usize,
    restart: usize,
    tol: f64,
    max_outer: u64,
    norm: Norm,
) -> Result<OuterResult, String> {
    let m = restart.max(1);
    let mut x = x0.to_vec();
    let mut inner_sweeps = 0u64;
    let mut history = vec![rel_residual(a, &x, b, norm)];
    let mut outer = 0u64;
    'restart: loop {
        if should_stop(&history, tol) || outer >= max_outer {
            break;
        }
        let r = a.residual(&x, b);
        let beta = vecops::norm(&r, Norm::L2);
        if beta == 0.0 {
            break;
        }
        let mut v: Vec<Vec<f64>> = vec![r.iter().map(|ri| ri / beta).collect()];
        let mut z: Vec<Vec<f64>> = Vec::new();
        // Column-major upper-Hessenberg entries after Givens, plus the
        // rotations and the rotated RHS g.
        let mut hcols: Vec<Vec<f64>> = Vec::new();
        let mut givens: Vec<(f64, f64)> = Vec::new();
        let mut g = vec![beta];
        for j in 0..m {
            if outer >= max_outer {
                break 'restart;
            }
            outer += 1;
            let zj = smoother.smooth(0, a, &v[j], inner)?;
            inner_sweeps += inner as u64;
            let mut w = a.spmv(&zj);
            z.push(zj);
            // Modified Gram-Schmidt.
            let mut h = vec![0.0; j + 2];
            for (i, vi) in v.iter().enumerate() {
                h[i] = vecops::dot(&w, vi);
                vecops::axpy(-h[i], vi, &mut w);
            }
            h[j + 1] = vecops::norm(&w, Norm::L2);
            // Apply existing rotations, then the new one.
            for (i, &(c, s)) in givens.iter().enumerate() {
                let (hi, hi1) = (h[i], h[i + 1]);
                h[i] = c * hi + s * hi1;
                h[i + 1] = -s * hi + c * hi1;
            }
            let (c, s) = {
                let (p, q) = (h[j], h[j + 1]);
                let d = (p * p + q * q).sqrt();
                if d == 0.0 {
                    (1.0, 0.0)
                } else {
                    (p / d, q / d)
                }
            };
            h[j] = c * h[j] + s * h[j + 1];
            h[j + 1] = 0.0;
            givens.push((c, s));
            let gj = g[j];
            g[j] = c * gj;
            g.push(-s * gj);
            hcols.push(h);
            // Solve the small triangular system and reconstruct the
            // candidate iterate for an honest per-step history entry.
            let k = hcols.len();
            let mut y = vec![0.0; k];
            for i in (0..k).rev() {
                let mut s = g[i];
                for (l, yl) in y.iter().enumerate().take(k).skip(i + 1) {
                    s -= hcols[l][i] * yl;
                }
                y[i] = s / hcols[i][i];
            }
            let mut xc = x.clone();
            for (l, yl) in y.iter().enumerate() {
                vecops::axpy(*yl, &z[l], &mut xc);
            }
            history.push(rel_residual(a, &xc, b, norm));
            if *history.last().unwrap() < tol || j + 1 == m {
                x = xc;
                continue 'restart;
            }
            // `w` still holds the unnormalized next basis vector (MGS
            // orthogonalized, rotations only touched the copy in `h`); its
            // norm is the pre-rotation subdiagonal. Zero means lucky
            // breakdown: the Krylov space is exhausted, accept.
            let hlast = vecops::norm(&w, Norm::L2);
            if hlast == 0.0 {
                x = xc;
                continue 'restart;
            }
            v.push(w.iter().map(|wi| wi / hlast).collect());
        }
    }
    let converged = *history.last().unwrap() < tol;
    Ok(OuterResult {
        x,
        history,
        converged,
        inner_sweeps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OuterSpec, ReferenceSmoother};
    use aj_matrices::fd::laplacian_2d;

    fn setup() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = laplacian_2d(15, 15).scale_to_unit_diagonal().unwrap();
        let n = a.nrows();
        (a, vec![1.0; n], vec![0.0; n])
    }

    #[test]
    fn fcg_converges_preconditioned() {
        let (a, b, x0) = setup();
        let mut s = ReferenceSmoother::new(OuterSpec::default_smooth(), 2018, false);
        let out = fcg(&a, &b, &x0, &mut s, 4, 1e-10, 500, Norm::L2).unwrap();
        assert!(
            out.converged,
            "tail: {:?}",
            &out.history[out.history.len().saturating_sub(3)..]
        );
        // Preconditioning must beat the raw problem: check the true
        // residual really is tiny.
        assert!(rel_residual(&a, &out.x, &b, Norm::L2) < 1e-10);
    }

    #[test]
    fn fcg_beats_unpreconditioned_iteration_count() {
        let (a, b, x0) = setup();
        let mut s = ReferenceSmoother::new(OuterSpec::default_smooth(), 2018, false);
        let out = fcg(&a, &b, &x0, &mut s, 4, 1e-8, 500, Norm::L2).unwrap();
        let plain =
            aj_linalg::krylov::conjugate_gradient(&a, &b, &x0, 1e-8, 500, Norm::L2).unwrap();
        assert!(out.converged && plain.converged);
        assert!(
            out.history.len() < plain.history.len(),
            "fcg {} vs cg {}",
            out.history.len(),
            plain.history.len()
        );
    }

    #[test]
    fn fgmres_converges_and_history_is_true_residual() {
        let (a, b, x0) = setup();
        let mut s = ReferenceSmoother::new(OuterSpec::default_smooth(), 2018, false);
        let out = fgmres(&a, &b, &x0, &mut s, 4, 30, 1e-10, 500, Norm::L2).unwrap();
        assert!(out.converged);
        let true_res = rel_residual(&a, &out.x, &b, Norm::L2);
        let last = *out.history.last().unwrap();
        assert!((true_res - last).abs() <= 1e-8 * (1.0 + last));
        // Monotone nonincreasing within fp slack (GMRES minimizes).
        for w in out.history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-8), "history not monotone: {w:?}");
        }
    }

    #[test]
    fn fgmres_restart_path_still_converges() {
        let (a, b, x0) = setup();
        let mut s = ReferenceSmoother::new(OuterSpec::default_smooth(), 2018, false);
        // Tiny restart forces several restart cycles.
        let out = fgmres(&a, &b, &x0, &mut s, 2, 5, 1e-8, 500, Norm::L2).unwrap();
        assert!(
            out.converged,
            "tail: {:?}",
            &out.history[out.history.len().saturating_sub(3)..]
        );
    }
}
