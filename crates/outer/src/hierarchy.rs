//! Multilevel hierarchies for the V-cycle: geometric when the matrix is
//! recognizably a 2-D five-point grid operator, greedy aggregation with a
//! Galerkin product otherwise.
//!
//! Geometric levels reuse the two-grid seed's machinery
//! (`multigrid::coarse_five_point` rediscretization, full-weighting
//! restriction, bilinear prolongation) applied recursively; the grid shape
//! is *detected* from the sparsity structure rather than passed in, so the
//! `grid:NXxNY` and `fd*` selectors get geometric coarsening without the
//! spec having to carry dimensions around.
//!
//! Aggregation is plain smoothed-aggregation-style pairwise clustering
//! minus the smoothing: strength-of-connection filtering
//! (`|a_ij| > θ·√(a_ii·a_jj)`), greedy root aggregates, a second pass
//! joining leftovers to their strongest neighbour, piecewise-constant
//! transfer `P`, and `A_c = Pᵀ A P` assembled through the duplicate-summing
//! COO builder. Crude by AMG standards, but it keeps coarse operators SPD
//! (e_Iᵀ A e_I > 0) and gives the Krylov bottom solve a well-posed target
//! for any SPD input.

use aj_linalg::multigrid::{coarse_five_point, prolong_bilinear, restrict_full_weighting};
use aj_linalg::{CooMatrix, CsrMatrix, LinalgError};

/// Aggregation strength threshold: `j` is a strong neighbour of `i` when
/// `|a_ij| > θ·√(a_ii·a_jj)`.
const STRENGTH_THETA: f64 = 0.08;

/// Auto-depth coarsening stops once a level has at most this many rows —
/// small enough that the CG bottom solve is effectively free.
const COARSE_TARGET: usize = 64;

/// Hard cap on auto-selected hierarchy depth.
const MAX_AUTO_LEVELS: usize = 10;

/// Inter-level transfer operators.
#[derive(Debug, Clone)]
enum Transfer {
    /// Full-weighting restriction / bilinear prolongation on an
    /// `nx × ny` fine grid (row-major interior numbering).
    Geometric { nx: usize, ny: usize },
    /// Piecewise-constant aggregation: `agg[fine_row]` is the coarse index.
    Aggregation { agg: Vec<u32>, coarse_n: usize },
}

/// An L-level matrix hierarchy (level 0 = finest) with its transfers.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    matrices: Vec<CsrMatrix>,
    transfers: Vec<Transfer>,
    geometric: bool,
}

impl Hierarchy {
    /// Builds a hierarchy for `a`, coarsening geometrically when the
    /// sparsity structure is a 2-D five-point grid and by aggregation
    /// otherwise. `levels` caps the depth (≥ 2); `None` coarsens until the
    /// coarse problem has ≤ 64 rows (or coarsening stops making progress).
    /// The built hierarchy may be shallower than a requested cap when the
    /// problem bottoms out first, but always has ≥ 2 levels.
    ///
    /// # Errors
    /// [`LinalgError::InvalidStructure`] when not even one coarsening step
    /// is possible (e.g. a matrix too small or too irregular to aggregate).
    pub fn build(a: &CsrMatrix, levels: Option<usize>) -> Result<Hierarchy, LinalgError> {
        let cap = levels.unwrap_or(MAX_AUTO_LEVELS).max(2);
        let mut matrices = vec![a.clone()];
        let mut transfers = Vec::new();
        let grid = detect_grid(a);
        let geometric = grid.is_some();
        if let Some((mut nx, mut ny)) = grid {
            while matrices.len() < cap
                && nx >= 3
                && ny >= 3
                && nx % 2 == 1
                && ny % 2 == 1
                && (levels.is_some() || nx * ny > COARSE_TARGET)
            {
                let (cx, cy) = ((nx - 1) / 2, (ny - 1) / 2);
                let fine = matrices.last().unwrap();
                let coarse = coarse_five_point(fine, nx, ny, cx, cy)?;
                transfers.push(Transfer::Geometric { nx, ny });
                matrices.push(coarse);
                (nx, ny) = (cx, cy);
            }
        } else {
            while matrices.len() < cap {
                let fine = matrices.last().unwrap();
                let n = fine.nrows();
                if levels.is_none() && n <= COARSE_TARGET {
                    break;
                }
                let (agg, coarse_n) = aggregate(fine);
                // Stop when aggregation stalls (nearly 1:1) — a further
                // level would just duplicate this one.
                if coarse_n == 0 || coarse_n + coarse_n / 10 >= n {
                    break;
                }
                let coarse = galerkin(fine, &agg, coarse_n);
                transfers.push(Transfer::Aggregation { agg, coarse_n });
                matrices.push(coarse);
            }
        }
        if matrices.len() < 2 {
            return Err(LinalgError::InvalidStructure(format!(
                "cannot coarsen {}×{} matrix even once (grid detected: {}; try a larger problem \
                 or a Krylov outer solver instead of vcycle)",
                a.nrows(),
                a.nrows(),
                geometric,
            )));
        }
        Ok(Hierarchy {
            matrices,
            transfers,
            geometric,
        })
    }

    /// Number of levels (≥ 2; level 0 is the finest).
    pub fn levels(&self) -> usize {
        self.matrices.len()
    }

    /// The matrix at `level`.
    pub fn matrix(&self, level: usize) -> &CsrMatrix {
        &self.matrices[level]
    }

    /// Whether the hierarchy was built by geometric grid coarsening
    /// (`false` = aggregation).
    pub fn is_geometric(&self) -> bool {
        self.geometric
    }

    /// `(rows, nnz)` per level, finest first — the shape summary reported
    /// by `SolveReport`.
    pub fn shape(&self) -> Vec<(usize, usize)> {
        self.matrices.iter().map(|m| (m.nrows(), m.nnz())).collect()
    }

    /// Restricts a fine residual at `level` to level + 1.
    pub fn restrict(&self, level: usize, r: &[f64]) -> Vec<f64> {
        match &self.transfers[level] {
            Transfer::Geometric { nx, ny } => restrict_full_weighting(r, *nx, *ny),
            Transfer::Aggregation { agg, coarse_n } => {
                let mut rc = vec![0.0; *coarse_n];
                for (i, &g) in agg.iter().enumerate() {
                    rc[g as usize] += r[i];
                }
                rc
            }
        }
    }

    /// Prolongs a coarse correction from level + 1 and adds it into the
    /// fine iterate at `level`.
    pub fn prolong_add(&self, level: usize, ec: &[f64], x: &mut [f64]) {
        match &self.transfers[level] {
            Transfer::Geometric { nx, ny } => {
                let ef = prolong_bilinear(ec, *nx, *ny);
                for (xi, ei) in x.iter_mut().zip(&ef) {
                    *xi += ei;
                }
            }
            Transfer::Aggregation { agg, .. } => {
                for (i, &g) in agg.iter().enumerate() {
                    x[i] += ec[g as usize];
                }
            }
        }
    }
}

/// Recognizes a row-major 2-D five-point grid operator from its sparsity
/// structure: returns `(nx, ny)` when every row has exactly the in-bounds
/// {north, south, east, west} neighbours and the stencil is isotropic
/// (one diagonal value, one off-diagonal value across the whole matrix).
pub fn detect_grid(a: &CsrMatrix) -> Option<(usize, usize)> {
    let n = a.nrows();
    if n < 9 {
        return None;
    }
    // Row 0 (corner) couples to exactly (0,1) → column 1 and (1,0) → column
    // ny; that fixes the shape.
    let off0: Vec<usize> = a
        .row_indices(0)
        .iter()
        .copied()
        .filter(|&j| j != 0)
        .collect();
    if off0.len() != 2 || off0[0] != 1 {
        return None;
    }
    let ny = off0[1];
    if ny < 3 || !n.is_multiple_of(ny) {
        return None;
    }
    let nx = n / ny;
    if nx < 3 {
        return None;
    }
    // Isotropy reference values from the corner row.
    let center = a.get(0, 0);
    let off = a.get(0, 1);
    if center == 0.0 || off == 0.0 {
        return None;
    }
    // Full structural + isotropy check: O(nnz), done once at plan time.
    for i in 0..nx {
        for j in 0..ny {
            let row = i * ny + j;
            let mut expected: Vec<usize> = vec![row];
            if i > 0 {
                expected.push(row - ny);
            }
            if i + 1 < nx {
                expected.push(row + ny);
            }
            if j > 0 {
                expected.push(row - 1);
            }
            if j + 1 < ny {
                expected.push(row + 1);
            }
            expected.sort_unstable();
            if a.row_indices(row) != expected.as_slice() {
                return None;
            }
            for (c, v) in a.row_iter(row) {
                let want = if c == row { center } else { off };
                if (v - want).abs() > 1e-12 * want.abs() {
                    return None;
                }
            }
        }
    }
    Some((nx, ny))
}

/// Greedy strength-based aggregation. Returns `(agg, coarse_n)` with
/// `agg[i]` the aggregate index of fine row `i`.
fn aggregate(a: &CsrMatrix) -> (Vec<u32>, usize) {
    let n = a.nrows();
    let diag = a.diagonal();
    const UNASSIGNED: u32 = u32::MAX;
    let mut agg = vec![UNASSIGNED; n];
    let strong = |i: usize, j: usize, v: f64| -> bool {
        i != j && v.abs() > STRENGTH_THETA * (diag[i].abs() * diag[j].abs()).sqrt()
    };
    let mut next = 0u32;
    // Pass 1: roots whose strong neighbourhood is wholly unassigned seed
    // an aggregate containing themselves and that neighbourhood.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let neigh: Vec<usize> = a
            .row_iter(i)
            .filter(|&(j, v)| strong(i, j, v))
            .map(|(j, _)| j)
            .collect();
        if neigh.iter().any(|&j| agg[j] != UNASSIGNED) {
            continue;
        }
        agg[i] = next;
        for &j in &neigh {
            agg[j] = next;
        }
        next += 1;
    }
    // Pass 2: leftovers join their strongest assigned neighbour.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let mut best: Option<(f64, u32)> = None;
        for (j, v) in a.row_iter(i) {
            if strong(i, j, v) && agg[j] != UNASSIGNED {
                let w = v.abs();
                if best.is_none_or(|(bw, _)| w > bw) {
                    best = Some((w, agg[j]));
                }
            }
        }
        if let Some((_, g)) = best {
            agg[i] = g;
        }
    }
    // Pass 3: isolated rows become singletons.
    for g in agg.iter_mut() {
        if *g == UNASSIGNED {
            *g = next;
            next += 1;
        }
    }
    (agg, next as usize)
}

/// Galerkin coarse operator `A_c = Pᵀ A P` for piecewise-constant `P`
/// (entry `(agg[i], agg[j]) += a_ij`; the COO builder sums duplicates).
fn galerkin(a: &CsrMatrix, agg: &[u32], coarse_n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(coarse_n, coarse_n, a.nnz());
    for i in 0..a.nrows() {
        for (j, v) in a.row_iter(i) {
            coo.push(agg[i] as usize, agg[j] as usize, v);
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_matrices::fd::laplacian_2d;

    #[test]
    fn detects_grid_shape() {
        let a = laplacian_2d(15, 9);
        assert_eq!(detect_grid(&a), Some((15, 9)));
        // Unit-diagonal scaling preserves structure and isotropy.
        let s = a.scale_to_unit_diagonal().unwrap();
        assert_eq!(detect_grid(&s), Some((15, 9)));
    }

    #[test]
    fn rejects_non_grid() {
        // A tridiagonal (1-D) operator: corner row has one neighbour.
        let a = CsrMatrix::from_dense(
            3,
            3,
            &[2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0],
            0.0,
        );
        assert_eq!(detect_grid(&a), None);
    }

    #[test]
    fn geometric_hierarchy_depth_and_shapes() {
        let a = laplacian_2d(31, 31);
        let h = Hierarchy::build(&a, None).unwrap();
        assert!(h.is_geometric());
        // 31 → 15 → 7: auto depth stops once 7×7 = 49 ≤ 64 rows.
        assert_eq!(h.levels(), 3);
        assert_eq!(h.shape()[0].0, 31 * 31);
        assert_eq!(h.shape()[2].0, 49);
        // Level cap respected.
        let h2 = Hierarchy::build(&a, Some(2)).unwrap();
        assert_eq!(h2.levels(), 2);
        assert_eq!(h2.matrix(1).nrows(), 15 * 15);
    }

    #[test]
    fn aggregation_hierarchy_on_unstructured_spd() {
        let a = aj_matrices::fe::fe_matrix(12, 12, 0.3, 7);
        let h = Hierarchy::build(&a, None).unwrap();
        assert!(!h.is_geometric());
        assert!(h.levels() >= 2);
        for l in 0..h.levels() {
            let m = h.matrix(l);
            // Galerkin keeps symmetry and positive diagonals.
            assert!(m.is_symmetric(1e-10), "level {l} not symmetric");
            assert!(m.diagonal().iter().all(|&d| d > 0.0), "level {l} diag");
            if l > 0 {
                assert!(m.nrows() < h.matrix(l - 1).nrows());
            }
        }
    }

    #[test]
    fn restrict_prolong_roundtrip_shapes() {
        let a = laplacian_2d(15, 15);
        let h = Hierarchy::build(&a, Some(3)).unwrap();
        let r = vec![1.0; 15 * 15];
        let rc = h.restrict(0, &r);
        assert_eq!(rc.len(), 7 * 7);
        let mut x = vec![0.0; 15 * 15];
        h.prolong_add(0, &rc, &mut x);
        assert!(x.iter().any(|&v| v != 0.0));
    }
}
