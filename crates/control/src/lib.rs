//! Online closed-loop control for the asynchronous relaxation engines.
//!
//! The paper's central observation is that asynchronous Jacobi's behavior
//! is governed by *observed* staleness, not the worst-case bound — and
//! PR 5 showed the flip side: statically auto-tuned over-relaxation
//! (`omega=auto`) is fragile once staleness moves the effective spectrum.
//! "Asynchronous Richardson iterations" (Chow, Frommer & Szyld) derives how
//! the stable ω/β window shrinks with delay; "Supremum-Norm Convergence for
//! Step-Asynchronous SOR" (Vigna) gives the sup-norm safety condition.
//! Together they say the relaxation parameters should be adapted online
//! from measured staleness — which is exactly what aj-obs measures.
//!
//! This crate is the pure decision kernel: engines feed a [`Controller`]
//! one [`Observation`] per residual-monitor sample and apply the
//! [`Decision`]s it returns. Two properties make cross-engine conformance
//! testable (and are pinned by this crate's tests plus the workspace-level
//! `control_conformance` suite):
//!
//! 1. **Purity.** A controller is a deterministic function of its
//!    observation sequence — no clocks, no randomness, no engine state.
//! 2. **Quantization.** Observations enter as a coarse staleness *regime*
//!    (`Low < low ≤ Moderate < high ≤ High` in units of the fastest sweep
//!    period) and parameter moves are discrete multiplicative steps from
//!    shared base values, so two engines with different tick dynamics but
//!    the same staleness regime history emit bit-identical decisions.
//!
//! The decision ladder, most- to least-conservative trigger:
//!
//! * staleness above `shed_after` periods → [`Decision::Shed`] the worst
//!   worker (reusing the termination layer's presumed-dead semantics);
//! * `High` regime → [`Decision::Shrink`] ω (and β, quadratically) one
//!   step toward the delay-safe floor of the [`SafeInterval`];
//! * `patience` consecutive `Low` samples → [`Decision::Widen`] one step
//!   back toward the resolved base values;
//! * residual decay stalled over the last `window` samples → with momentum
//!   active, [`Decision::Switch`] to first-order at the minimax ω; already
//!   first-order → [`Decision::Rescue`] (escalate to an outer solve).

use aj_linalg::method::{ResolvedMethod, SafeInterval};

/// Adaptation gain of the continuous reference law [`adapt`]: how fast the
/// shrink factor falls with excess staleness.
pub const ADAPT_GAIN: f64 = 0.25;

/// Multiplicative step of one [`Decision::Shrink`].
pub const SHRINK_STEP: f64 = 0.5;

/// Multiplicative step of one [`Decision::Widen`].
pub const WIDEN_STEP: f64 = 1.25;

/// Momentum below this snaps to exactly 0 when shrinking, so the shrink
/// chain terminates (a finite decision sequence is what makes cross-engine
/// conformance checkable).
pub const BETA_SNAP: f64 = 1e-3;

/// Controller knobs. Parsed from the `control=` spec grammar in `aj-core`;
/// all defaults are chosen so that a clean (low-staleness, converging) run
/// emits no decisions at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Residual-decay window, in monitor samples, for stall detection.
    pub window: usize,
    /// Staleness ratio at or below which the regime is `Low`.
    pub low: f64,
    /// Staleness ratio at or above which the regime is `High`.
    pub high: f64,
    /// Consecutive `Low` samples required before widening one step.
    pub patience: u32,
    /// Minimum decades of residual decay per sample (averaged over the
    /// window) that still counts as progress; below it the run is stalled.
    /// The default `0.0` declares a stall only when the window shows no net
    /// decay at all (flat or growing residual) — a threshold that is safe at
    /// any observation cadence, from the simulators' sparse monitor grid to
    /// the real-thread backend's per-sweep sampling. Raise it to demand a
    /// minimum convergence *rate*, calibrated to your sample spacing.
    pub stall_decades: f64,
    /// Shed the worst worker when its data age exceeds this many fastest
    /// sweep periods. Non-finite disables shedding.
    pub shed_after: f64,
    /// Allow escalation to an outer rescue when the stall ladder runs out.
    pub rescue: bool,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            window: 8,
            low: 4.0,
            high: 16.0,
            patience: 4,
            stall_decades: 0.0,
            shed_after: f64::INFINITY,
            rescue: true,
        }
    }
}

/// Coarse staleness regime — the only resolution at which staleness enters
/// a decision, so engines with different tick dynamics agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// At most [`ControlConfig::low`] fastest-periods of data age.
    Low,
    /// Between the two thresholds; holds parameters steady.
    Moderate,
    /// At least [`ControlConfig::high`] periods: shrink toward the floor.
    High,
}

impl ControlConfig {
    /// Quantizes a staleness ratio.
    pub fn regime(&self, ratio: f64) -> Regime {
        if ratio >= self.high {
            Regime::High
        } else if ratio <= self.low {
            Regime::Low
        } else {
            Regime::Moderate
        }
    }
}

/// What an engine reports at one residual-monitor sample. Engine ticks are
/// deliberately absent: decisions may not depend on them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Relative residual at this sample.
    pub residual: f64,
    /// Maximum data age across live (non-shed) workers, in units of the
    /// fastest observed sweep period.
    pub staleness: f64,
    /// The worker with that maximum age (shed candidate).
    pub worst: usize,
}

/// One controller action, applied by the engine at the sample that
/// produced it. At most one decision is emitted per observation.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Set the relaxation parameters one step closer to the delay-safe
    /// floor (`ω × 1/2`, `β × 1/4`, clamped into the safe interval).
    Shrink {
        /// New relaxation weight.
        omega: f64,
        /// New momentum coefficient.
        beta: f64,
    },
    /// Set the parameters one step back toward the resolved base values.
    Widen {
        /// New relaxation weight.
        omega: f64,
        /// New momentum coefficient.
        beta: f64,
    },
    /// Drop the momentum term: continue as first-order Richardson at the
    /// minimax-safe ω.
    Switch {
        /// First-order relaxation weight to continue with.
        omega: f64,
    },
    /// Exclude a persistently stale worker from the staleness aggregate
    /// (and, where a termination protocol runs, from its quorum).
    Shed {
        /// The shed worker/rank.
        worker: usize,
    },
    /// The stall ladder ran out: request an outer (V-cycle) rescue run.
    /// The engine stops; the driver re-runs over an outer solver.
    Rescue,
}

impl Decision {
    /// Stable short name (timeline/CSV tag).
    pub fn name(&self) -> &'static str {
        match self {
            Decision::Shrink { .. } => "shrink",
            Decision::Widen { .. } => "widen",
            Decision::Switch { .. } => "switch",
            Decision::Shed { .. } => "shed",
            Decision::Rescue => "rescue",
        }
    }
}

/// Everything an engine needs to instantiate a controller at run start:
/// the parsed knobs plus the safe interval resolved at plan time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSpec {
    /// Parsed `control=` knobs.
    pub cfg: ControlConfig,
    /// The SPD-safe window every adapted parameter is clamped into.
    pub interval: SafeInterval,
}

/// Summary of a controller's run, carried on `SimOutcome`/`SolveReport`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControlStats {
    /// Every emitted decision, tagged with the 0-based monitor-sample
    /// ordinal it was emitted at.
    pub decisions: Vec<(u64, Decision)>,
    /// Observations consumed.
    pub samples: u64,
    /// Relaxation weight in effect at the end of the run.
    pub final_omega: f64,
    /// Momentum coefficient in effect at the end of the run.
    pub final_beta: f64,
    /// Whether the momentum method was switched to first-order mid-run.
    pub switched: bool,
    /// Whether an outer rescue was requested.
    pub rescue_requested: bool,
    /// Workers shed from the staleness aggregate, in shed order.
    pub shed: Vec<usize>,
}

impl ControlStats {
    /// One-line human summary for CLI/report output.
    pub fn summary(&self) -> String {
        format!(
            "{} decisions over {} samples (ω→{:.4}, β→{:.4}{}{}{})",
            self.decisions.len(),
            self.samples,
            self.final_omega,
            self.final_beta,
            if self.switched { ", switched" } else { "" },
            if self.rescue_requested {
                ", rescue requested"
            } else {
                ""
            },
            if self.shed.is_empty() {
                String::new()
            } else {
                format!(", shed {:?}", self.shed)
            },
        )
    }
}

/// The continuous reference adaptation law the discrete controller steps
/// track: a shrink factor `1/(1 + GAIN·max(0, s − 1))` of the base pair
/// (β quadratically, matching the heavy-ball contraction's β ~ ω·λ
/// coupling), clamped into the safe interval.
///
/// Pinned by the property battery: the result always lies in `interval`,
/// is monotone non-increasing in `staleness`, and the function is pure.
pub fn adapt(
    interval: &SafeInterval,
    base_omega: f64,
    base_beta: f64,
    staleness: f64,
) -> (f64, f64) {
    let (base_omega, base_beta) = interval.clamp(base_omega, base_beta);
    let excess = (staleness - 1.0).max(0.0);
    let shrink = 1.0 / (1.0 + ADAPT_GAIN * excess);
    interval.clamp(base_omega * shrink, base_beta * shrink * shrink)
}

/// The stateful decision kernel. See the module docs for the ladder.
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: ControlConfig,
    interval: SafeInterval,
    /// Resolved base parameters (the widen ceiling).
    base_omega: f64,
    base_beta: f64,
    omega: f64,
    beta: f64,
    /// Whether the running method takes ω/β at all (rwr does not).
    adaptable: bool,
    /// Momentum still active (switch candidate).
    momentum: bool,
    low_streak: u32,
    /// Residual window for stall detection (cleared on every decision —
    /// the dynamics just changed).
    window: Vec<f64>,
    shed: Vec<usize>,
    switched: bool,
    rescued: bool,
    samples: u64,
    decisions: Vec<(u64, Decision)>,
}

impl Controller {
    /// Builds a controller for a run starting on `method`.
    /// `fallback_omega` is the engine's configured ω for methods that don't
    /// carry their own (plain Jacobi).
    pub fn new(
        cfg: ControlConfig,
        method: ResolvedMethod,
        fallback_omega: f64,
        interval: SafeInterval,
    ) -> Controller {
        let (omega, beta, adaptable, momentum) = match method {
            ResolvedMethod::Jacobi => (fallback_omega, 0.0, true, false),
            ResolvedMethod::Richardson1 { omega } => (omega, 0.0, true, false),
            ResolvedMethod::Richardson2 { omega, beta } => (omega, beta, true, true),
            ResolvedMethod::RandomizedResidual { .. } => (1.0, 0.0, false, false),
        };
        Controller {
            cfg,
            interval,
            base_omega: omega,
            base_beta: beta,
            omega,
            beta,
            adaptable,
            momentum,
            low_streak: 0,
            window: Vec::with_capacity(cfg.window.min(1 << 16)),
            shed: Vec::new(),
            switched: false,
            rescued: false,
            samples: 0,
            decisions: Vec::new(),
        }
    }

    /// Whether `worker` has been shed; engines exclude shed workers from
    /// the staleness aggregate they feed back in.
    pub fn is_shed(&self, worker: usize) -> bool {
        self.shed.contains(&worker)
    }

    /// Whether a rescue has been requested (the engine should stop and let
    /// the driver escalate).
    pub fn rescue_requested(&self) -> bool {
        self.rescued
    }

    /// Parameters currently in effect.
    pub fn params(&self) -> (f64, f64) {
        (self.omega, self.beta)
    }

    /// Consumes one monitor sample; returns at most one decision. The
    /// engine must apply it before the next sweep takes effect.
    pub fn observe(&mut self, obs: Observation) -> Option<Decision> {
        self.samples += 1;
        let ordinal = self.samples - 1;
        let decision = self.decide(obs);
        if let Some(d) = &decision {
            self.apply(d);
            self.window.clear();
            self.low_streak = 0;
            self.decisions.push((ordinal, d.clone()));
        }
        decision
    }

    fn decide(&mut self, obs: Observation) -> Option<Decision> {
        if self.rescued {
            return None;
        }
        // 1. Shed: the worst worker's data is so old the termination layer
        //    would presume it dead; stop letting it pin the regime.
        if obs.staleness > self.cfg.shed_after && !self.is_shed(obs.worst) {
            return Some(Decision::Shed { worker: obs.worst });
        }
        // 2. Regime-driven parameter steps.
        match self.cfg.regime(obs.staleness) {
            Regime::High => {
                self.low_streak = 0;
                if self.adaptable {
                    let shrunk_beta = self.beta * SHRINK_STEP * SHRINK_STEP;
                    let (omega, beta) = self.interval.clamp(
                        (self.omega * SHRINK_STEP).max(self.interval.omega_min()),
                        if shrunk_beta < BETA_SNAP {
                            0.0
                        } else {
                            shrunk_beta
                        },
                    );
                    if (omega, beta) != (self.omega, self.beta) {
                        return Some(Decision::Shrink { omega, beta });
                    }
                }
            }
            Regime::Moderate => {
                self.low_streak = 0;
            }
            Regime::Low => {
                self.low_streak += 1;
                if self.adaptable && self.low_streak >= self.cfg.patience {
                    // A snapped-to-zero β re-seeds at BETA_SNAP so widening
                    // can regrow it toward the base value.
                    let grown_beta = if self.beta == 0.0 && self.base_beta > 0.0 {
                        BETA_SNAP
                    } else {
                        self.beta * WIDEN_STEP
                    };
                    let (omega, beta) = self.interval.clamp(
                        (self.omega * WIDEN_STEP).min(self.base_omega),
                        grown_beta.min(self.base_beta),
                    );
                    if (omega, beta) != (self.omega, self.beta) {
                        return Some(Decision::Widen { omega, beta });
                    }
                }
            }
        }
        // 3. Stall ladder on windowed residual decay.
        self.window.push(obs.residual);
        if self.window.len() > self.cfg.window {
            self.window.remove(0);
        }
        if self.cfg.window >= 2 && self.window.len() == self.cfg.window {
            let first = self.window[0].max(f64::MIN_POSITIVE);
            let last = self.window[self.window.len() - 1].max(f64::MIN_POSITIVE);
            let decades = (first / last).log10();
            let need = self.cfg.stall_decades * (self.cfg.window - 1) as f64;
            // A NaN decay (non-finite residuals) must count as stalled, so
            // the test is "provably making progress", not "not stalled".
            let progressing = matches!(
                decades.partial_cmp(&need),
                Some(std::cmp::Ordering::Greater)
            );
            if !progressing {
                if self.momentum {
                    let (omega, _) = self.interval.clamp(self.interval.omega_opt1(), 0.0);
                    return Some(Decision::Switch { omega });
                }
                if self.cfg.rescue {
                    return Some(Decision::Rescue);
                }
            }
        }
        None
    }

    fn apply(&mut self, d: &Decision) {
        match *d {
            Decision::Shrink { omega, beta } | Decision::Widen { omega, beta } => {
                self.omega = omega;
                self.beta = beta;
            }
            Decision::Switch { omega } => {
                self.omega = omega;
                self.beta = 0.0;
                self.momentum = false;
                self.switched = true;
                // The widen ceiling follows the switch: never re-widen back
                // into the configuration that stalled.
                self.base_omega = omega;
                self.base_beta = 0.0;
            }
            Decision::Shed { worker } => self.shed.push(worker),
            Decision::Rescue => self.rescued = true,
        }
    }

    /// Applies an emitted decision to a running method value, returning the
    /// method the next sweep should execute (plus the plain-Jacobi ω for
    /// engines whose Jacobi arm reads a separate weight). Shared by every
    /// engine so the decision→method mapping cannot drift between them.
    pub fn retune(
        method: ResolvedMethod,
        fallback_omega: f64,
        d: &Decision,
    ) -> (ResolvedMethod, f64) {
        match *d {
            Decision::Shrink { omega, beta } | Decision::Widen { omega, beta } => match method {
                ResolvedMethod::Jacobi => (ResolvedMethod::Jacobi, omega),
                ResolvedMethod::Richardson1 { .. } => {
                    (ResolvedMethod::Richardson1 { omega }, fallback_omega)
                }
                ResolvedMethod::Richardson2 { .. } => {
                    (ResolvedMethod::Richardson2 { omega, beta }, fallback_omega)
                }
                keep @ ResolvedMethod::RandomizedResidual { .. } => (keep, fallback_omega),
            },
            Decision::Switch { omega } => (ResolvedMethod::Richardson1 { omega }, fallback_omega),
            Decision::Shed { .. } | Decision::Rescue => (method, fallback_omega),
        }
    }

    /// Finishes the run, yielding the summary carried on outcomes.
    pub fn into_stats(self) -> ControlStats {
        ControlStats {
            decisions: self.decisions,
            samples: self.samples,
            final_omega: self.omega,
            final_beta: self.beta,
            switched: self.switched,
            rescue_requested: self.rescued,
            shed: self.shed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval() -> SafeInterval {
        SafeInterval {
            lambda_min: 0.1,
            lambda_max: 1.9,
        }
    }

    fn r2() -> ResolvedMethod {
        ResolvedMethod::Richardson2 {
            omega: 1.0,
            beta: 0.5,
        }
    }

    fn obs(residual: f64, staleness: f64) -> Observation {
        Observation {
            residual,
            staleness,
            worst: 0,
        }
    }

    #[test]
    fn clean_run_emits_no_decisions() {
        let mut c = Controller::new(ControlConfig::default(), r2(), 1.0, interval());
        let mut r = 1.0;
        for _ in 0..200 {
            r *= 0.8;
            assert_eq!(c.observe(obs(r, 1.5)), None);
        }
        let stats = c.into_stats();
        assert!(stats.decisions.is_empty());
        assert_eq!(stats.samples, 200);
        assert_eq!((stats.final_omega, stats.final_beta), (1.0, 0.5));
    }

    #[test]
    fn high_staleness_shrinks_to_the_floor_then_stops() {
        let cfg = ControlConfig {
            window: 10_000, // stall detection off
            ..ControlConfig::default()
        };
        let mut c = Controller::new(cfg, r2(), 1.0, interval());
        let mut shrinks = 0;
        let mut r = 1.0;
        for _ in 0..50 {
            r *= 0.9;
            if let Some(d) = c.observe(obs(r, 100.0)) {
                assert!(matches!(d, Decision::Shrink { .. }), "{d:?}");
                shrinks += 1;
            }
        }
        let (w, b) = c.params();
        assert_eq!(w, interval().omega_min(), "shrunk to the floor");
        assert!(b < 0.5 / 16.0);
        // Finite decision count: once at the floor, High samples are quiet.
        assert!(shrinks > 2 && shrinks < 10, "{shrinks} shrinks");
        let stats = c.into_stats();
        assert_eq!(stats.decisions.len(), shrinks);
    }

    #[test]
    fn sustained_low_staleness_widens_back_to_base() {
        let cfg = ControlConfig {
            window: 10_000,
            ..ControlConfig::default()
        };
        let mut c = Controller::new(cfg, r2(), 1.0, interval());
        let mut r = 1.0;
        for _ in 0..10 {
            r *= 0.9;
            c.observe(obs(r, 100.0));
        }
        assert!(c.params().0 < 1.0);
        for _ in 0..500 {
            r *= 0.9;
            if let Some(d) = c.observe(obs(r, 0.5)) {
                assert!(matches!(d, Decision::Widen { .. }), "{d:?}");
            }
        }
        assert_eq!(c.params(), (1.0, 0.5), "back at base exactly");
    }

    #[test]
    fn stalled_momentum_switches_then_rescues() {
        let cfg = ControlConfig {
            window: 4,
            ..ControlConfig::default()
        };
        let mut c = Controller::new(cfg, r2(), 1.0, interval());
        let mut saw_switch = false;
        let mut saw_rescue = false;
        for _ in 0..40 {
            // Flat residual, calm staleness: pure stall.
            match c.observe(obs(0.5, 1.0)) {
                Some(Decision::Switch { omega }) => {
                    assert!(!saw_switch, "switch fired twice");
                    assert_eq!(omega, interval().omega_opt1());
                    saw_switch = true;
                }
                Some(Decision::Rescue) => {
                    assert!(saw_switch, "rescue before switch");
                    saw_rescue = true;
                }
                Some(other) => panic!("unexpected {other:?}"),
                None => {}
            }
        }
        assert!(saw_switch && saw_rescue);
        let stats = c.into_stats();
        assert!(stats.switched && stats.rescue_requested);
        assert_eq!(stats.final_beta, 0.0);
        // After a rescue request the controller goes quiet.
        let mut c2 = Controller::new(
            ControlConfig {
                window: 2,
                ..ControlConfig::default()
            },
            ResolvedMethod::Richardson1 { omega: 0.9 },
            1.0,
            interval(),
        );
        let mut rescues = 0;
        for _ in 0..20 {
            if let Some(Decision::Rescue) = c2.observe(obs(0.5, 1.0)) {
                rescues += 1;
            }
        }
        assert_eq!(rescues, 1);
    }

    #[test]
    fn shed_fires_once_per_worker_and_takes_priority() {
        let cfg = ControlConfig {
            shed_after: 64.0,
            window: 10_000,
            ..ControlConfig::default()
        };
        let mut c = Controller::new(cfg, r2(), 1.0, interval());
        assert_eq!(
            c.observe(Observation {
                residual: 1.0,
                staleness: 100.0,
                worst: 3
            }),
            Some(Decision::Shed { worker: 3 })
        );
        assert!(c.is_shed(3) && !c.is_shed(0));
        // Same worker again: regime logic resumes (shrink, not re-shed).
        assert!(matches!(
            c.observe(Observation {
                residual: 1.0,
                staleness: 100.0,
                worst: 3
            }),
            Some(Decision::Shrink { .. })
        ));
    }

    #[test]
    fn rwr_adapts_nothing_but_still_sheds_and_rescues() {
        let cfg = ControlConfig {
            shed_after: 64.0,
            window: 3,
            ..ControlConfig::default()
        };
        let m = ResolvedMethod::RandomizedResidual {
            fraction: 0.5,
            seed: 1,
        };
        let mut c = Controller::new(cfg, m, 1.0, interval());
        for _ in 0..10 {
            if let Some(d) = c.observe(obs(0.5, 30.0)) {
                // High regime but not adaptable: only the stall ladder may
                // fire, and rwr has no momentum, so straight to rescue.
                assert_eq!(d, Decision::Rescue);
            }
        }
        assert!(c.rescue_requested());
    }

    #[test]
    fn retune_maps_decisions_onto_every_method() {
        let shrink = Decision::Shrink {
            omega: 0.25,
            beta: 0.1,
        };
        assert_eq!(
            Controller::retune(ResolvedMethod::Jacobi, 1.0, &shrink),
            (ResolvedMethod::Jacobi, 0.25)
        );
        assert_eq!(
            Controller::retune(ResolvedMethod::Richardson1 { omega: 0.9 }, 1.0, &shrink),
            (ResolvedMethod::Richardson1 { omega: 0.25 }, 1.0)
        );
        assert_eq!(
            Controller::retune(r2(), 1.0, &shrink),
            (
                ResolvedMethod::Richardson2 {
                    omega: 0.25,
                    beta: 0.1
                },
                1.0
            )
        );
        let rwr = ResolvedMethod::RandomizedResidual {
            fraction: 0.5,
            seed: 7,
        };
        assert_eq!(Controller::retune(rwr, 1.0, &shrink), (rwr, 1.0));
        assert_eq!(
            Controller::retune(r2(), 1.0, &Decision::Switch { omega: 0.8 }),
            (ResolvedMethod::Richardson1 { omega: 0.8 }, 1.0)
        );
        assert_eq!(
            Controller::retune(r2(), 1.0, &Decision::Rescue),
            (r2(), 1.0)
        );
    }

    #[test]
    fn controller_is_a_pure_function_of_its_observations() {
        let cfg = ControlConfig {
            shed_after: 50.0,
            ..ControlConfig::default()
        };
        let seq: Vec<Observation> = (0..300)
            .map(|i| Observation {
                residual: 1.0 / (1.0 + i as f64 * 0.1),
                staleness: ((i * 37) % 90) as f64,
                worst: i % 5,
            })
            .collect();
        let mut a = Controller::new(cfg, r2(), 1.0, interval());
        let mut b = Controller::new(cfg, r2(), 1.0, interval());
        for o in &seq {
            assert_eq!(a.observe(*o), b.observe(*o));
        }
        assert_eq!(a.into_stats(), b.into_stats());
    }
}
