//! Property battery for the adaptation law and the decision kernel
//! (the ISSUE 10 controller test battery's pure half):
//!
//! 1. adapted ω/β stay inside the SPD-safe interval for arbitrary
//!    staleness histograms and base parameters;
//! 2. the law is monotone non-increasing in mean staleness;
//! 3. the controller is a pure function of its observation window
//!    (replay-determinism), and every parameter decision it emits is
//!    inside the safe interval.

use aj_control::{adapt, ControlConfig, Controller, Decision, Observation};
use aj_linalg::method::{ResolvedMethod, SafeInterval, BETA_CAP};
use proptest::prelude::*;

/// Mean of a staleness histogram given as (bucket value, count) pairs.
fn histogram_mean(hist: &[(f64, u64)]) -> f64 {
    let total: u64 = hist.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return 0.0;
    }
    hist.iter().map(|&(v, c)| v * c as f64).sum::<f64>() / total as f64
}

fn interval(lo: f64, spread: f64) -> SafeInterval {
    SafeInterval {
        lambda_min: lo,
        lambda_max: lo + spread,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// (1) In-interval for arbitrary histograms: whatever staleness
    /// distribution the engines measure, the adapted pair is SPD-safe.
    #[test]
    fn adapted_parameters_stay_in_the_safe_interval(
        lo in 0.01f64..1.0,
        spread in 0.1f64..3.0,
        base_omega in 0.0f64..4.0,
        base_beta in 0.0f64..1.5,
        hist in proptest::collection::vec((0.0f64..500.0, 0u64..1000), 1..32),
    ) {
        let iv = interval(lo, spread);
        let s = histogram_mean(&hist);
        let (w, b) = adapt(&iv, base_omega, base_beta, s);
        prop_assert!(iv.contains(w, b), "(ω={w}, β={b}) outside {iv:?} at s={s}");
        prop_assert!(b <= BETA_CAP);
        prop_assert!(w < iv.omega_max(b));
        prop_assert!(w >= iv.omega_min());
    }

    /// (2) Monotone: more observed staleness never yields a hotter pair.
    #[test]
    fn adaptation_is_monotone_in_mean_staleness(
        lo in 0.01f64..1.0,
        spread in 0.1f64..3.0,
        base_omega in 0.0f64..4.0,
        base_beta in 0.0f64..1.5,
        s1 in 0.0f64..300.0,
        ds in 0.0f64..300.0,
    ) {
        let iv = interval(lo, spread);
        let (w1, b1) = adapt(&iv, base_omega, base_beta, s1);
        let (w2, b2) = adapt(&iv, base_omega, base_beta, s1 + ds);
        prop_assert!(w2 <= w1, "ω grew with staleness: {w1} -> {w2}");
        prop_assert!(b2 <= b1, "β grew with staleness: {b1} -> {b2}");
    }

    /// (2b) The law is a pure function: same inputs, same outputs, bitwise.
    #[test]
    fn adaptation_law_is_pure(
        lo in 0.01f64..1.0,
        spread in 0.1f64..3.0,
        base_omega in 0.0f64..4.0,
        base_beta in 0.0f64..1.5,
        s in 0.0f64..300.0,
    ) {
        let iv = interval(lo, spread);
        prop_assert_eq!(
            adapt(&iv, base_omega, base_beta, s),
            adapt(&iv, base_omega, base_beta, s)
        );
    }

    /// (3) Replay-determinism: two controllers fed the same observation
    /// sequence agree decision-for-decision and end in the same state; and
    /// every parameter decision lies in the safe interval.
    #[test]
    fn controller_replays_deterministically_and_stays_safe(
        lo in 0.01f64..1.0,
        spread in 0.1f64..3.0,
        base_omega in 0.1f64..1.5,
        base_beta in 0.0f64..0.9,
        window in 2usize..12,
        shed_after in 10.0f64..200.0,
        raw in proptest::collection::vec(
            (0.0f64..2.0, 0.0f64..400.0, 0usize..8), 1..120),
    ) {
        let iv = interval(lo, spread);
        // Base parameters come from a resolution, which clamps them.
        let (base_omega, base_beta) = iv.clamp(base_omega, base_beta);
        let method = ResolvedMethod::Richardson2 {
            omega: base_omega,
            beta: base_beta,
        };
        let cfg = ControlConfig {
            window,
            shed_after,
            ..ControlConfig::default()
        };
        let mut a = Controller::new(cfg, method, 1.0, iv);
        let mut b = Controller::new(cfg, method, 1.0, iv);
        for &(residual, staleness, worst) in &raw {
            let o = Observation { residual, staleness, worst };
            let da = a.observe(o);
            let db = b.observe(o);
            prop_assert_eq!(&da, &db);
            match da {
                Some(Decision::Shrink { omega, beta })
                | Some(Decision::Widen { omega, beta }) => {
                    prop_assert!(
                        iv.contains(omega, beta),
                        "unsafe decision (ω={omega}, β={beta}) in {iv:?}"
                    );
                }
                Some(Decision::Switch { omega }) => {
                    prop_assert!(iv.contains(omega, 0.0));
                }
                _ => {}
            }
            let (w, bb) = a.params();
            prop_assert!(iv.contains(w, bb), "state left the interval");
        }
        prop_assert_eq!(a.into_stats(), b.into_stats());
    }
}
