//! Process-mode tests for the net backend, driven through the real `aj`
//! binary (`CARGO_BIN_EXE_aj`):
//!
//! * cross-validation — the same seeded problem solved by the simulator
//!   and by real OS processes must agree on the fixed point and produce
//!   staleness-at-use distributions in the same normalized band;
//! * fault handling — killing a child rank mid-solve must not hang the
//!   parent: the termination protocol's staleness timeout excludes the
//!   dead rank and the CLI exits with the documented nonzero code.

use aj_core::obs::ObsConfig;
use aj_core::{Backend, SolveOptions};
use std::io::Write;

/// Points the net backend's process spawner at the freshly built `aj`
/// binary, which carries the hidden `_rank` child entrypoint. (The test
/// harness binary itself does not.)
fn use_aj_as_child() {
    std::env::set_var("AJ_NET_CHILD", env!("CARGO_BIN_EXE_aj"));
}

/// Mean staleness-at-use normalized by the mean sweep period, from a
/// solve's metrics snapshot. Dimensionless, so the simulator's tick-based
/// histograms and the net backend's microsecond-based ones are directly
/// comparable.
fn normalized_staleness(snap: &aj_core::obs::Snapshot) -> (f64, f64, f64) {
    let staleness = snap.family_total("staleness");
    let period = snap.family_total("sweep_period");
    let stale_mean = staleness.mean().expect("no staleness samples recorded");
    let period_mean = period.mean().expect("no sweep-period samples recorded");
    (stale_mean, period_mean, stale_mean / period_mean)
}

#[test]
fn net_processes_cross_validate_against_the_simulator() {
    use_aj_as_child();
    let p = aj_core::spec::load_problem("fd68", 2018).unwrap();
    // Tight tolerance so both iterates are pinned to the fixed point far
    // below the 1e-8 agreement band: ‖x − x*‖ ≲ residual / (1 − ρ). Not
    // 1e-12, though — detection fires at safety_factor·tol on stale local
    // reports, and at 1e-12 the recomputed global residual occasionally
    // lands a hair above tol (observed 1.06e-12), a marginal-convergence
    // flake rather than a disagreement.
    let opts = |staleness_timeout, pace_us| SolveOptions {
        tol: 1e-11,
        obs: ObsConfig::sampled(4),
        staleness_timeout,
        pace_us,
        ..Default::default()
    };
    let sim = aj_core::solve(
        &p,
        Backend::SimDistributed {
            ranks: 4,
            asynchronous: true,
            detect: true,
        },
        &opts(None, None),
    )
    .expect("simulator solve");
    // 1 ms/sweep pacing: the sweep period then dominates loopback
    // scheduling jitter, so normalized staleness measures the protocol,
    // not the host's scheduler mood.
    let net = aj_core::solve(&p, Backend::Net { ranks: 4 }, &opts(Some(30.0), Some(1000)))
        .expect("net solve");
    assert!(sim.converged, "simulator residual {:e}", sim.final_residual);
    assert!(net.converged, "net residual {:e}", net.final_residual);

    // Fixed-point agreement: two independent engines, one answer.
    let max_diff = sim
        .x
        .iter()
        .zip(&net.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_diff < 1e-8,
        "engines disagree on the fixed point: ‖Δx‖∞ = {max_diff:e}"
    );

    // Staleness agreement: both engines run the regime where a ghost is
    // about a sweep old (dmsim: put latency 50 of a 300-tick sweep; net:
    // TCP loopback under 1 ms pacing), so the normalized means must land
    // in the same band. The band is pinned in EXPERIMENTS.md; widen it
    // only with a written justification there.
    let (sim_stale, sim_period, sim_norm) =
        normalized_staleness(sim.metrics.as_ref().expect("sim metrics"));
    let (net_stale, net_period, net_norm) =
        normalized_staleness(net.metrics.as_ref().expect("net metrics"));
    let ratio = net_norm / sim_norm;
    // CSV artifact for CI (and humans): one row per engine.
    let csv_path = std::env::var("AJ_NET_XVAL_CSV").unwrap_or_else(|_| {
        std::env::temp_dir()
            .join("net-cross-validate.csv")
            .to_string_lossy()
            .into_owned()
    });
    let mut csv = std::fs::File::create(&csv_path).expect("create csv");
    writeln!(
        csv,
        "engine,staleness_mean,sweep_period_mean,normalized_staleness,final_residual"
    )
    .unwrap();
    writeln!(
        csv,
        "dmsim,{sim_stale},{sim_period},{sim_norm},{:e}",
        sim.final_residual
    )
    .unwrap();
    writeln!(
        csv,
        "net,{net_stale},{net_period},{net_norm},{:e}",
        net.final_residual
    )
    .unwrap();
    assert!(
        (0.05..=5.0).contains(&ratio),
        "normalized staleness diverged: sim {sim_norm:.4}, net {net_norm:.4}, \
         ratio {ratio:.4} outside the pinned band (see {csv_path})"
    );
}

#[test]
fn killed_child_rank_is_excluded_and_the_cli_exits_nonzero() {
    // Pure CLI path: `aj solve --backend net:ranks=4` spawns its own
    // children (current_exe), so no AJ_NET_CHILD is needed. Pacing at
    // 5 ms/sweep keeps the solve alive well past the 300 ms kill; the
    // 1-second staleness timeout then presumes rank 3 dead, the three
    // survivors converge to the frozen-subdomain limit, and detection
    // fires with rank 3 excluded. The recomputed *global* residual still
    // includes the dead rank's stale block, so the solve reports NOT
    // converged — exit code 3, not a hang and not a crash.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_aj"))
        .args([
            "solve",
            "--matrix",
            "fd68",
            "--backend",
            "net:ranks=4",
            "--tol",
            "1e-10",
            "--pace",
            "5000",
            "--crash",
            "3@300",
            "--staleness",
            "1.0",
        ])
        .output()
        .expect("run aj solve");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(3),
        "expected exit 3 (not converged)\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("excluded:  ranks [3]"),
        "termination must report the dead rank\nstdout:\n{stdout}"
    );
    assert!(
        stdout.contains("NOT converged"),
        "status line must say NOT converged\nstdout:\n{stdout}"
    );
}
