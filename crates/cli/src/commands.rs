//! The `info`, `solve`, `trace`, `obs`, and `serve` subcommands.
//!
//! Commands return the process exit code on success; see the `EXIT_*`
//! constants for the contract.

use crate::args::Args;
use crate::matrix;
use aj_core::dmsim::fault::{FaultPlan, LinkFault};
use aj_core::dmsim::shmem_sim::ShmemSimConfig;
use aj_core::linalg::vecops::Norm;
use aj_core::linalg::{eigen, sweeps};
use aj_core::obs::{ObsConfig, Snapshot};
use aj_core::report::{write_csv, Series};
use aj_core::Problem;

/// Everything worked (and, for `solve`, the tolerance was met).
pub const EXIT_OK: i32 = 0;
/// A runtime failure: bad input file, solver error, I/O error, bind error.
pub const EXIT_RUNTIME: i32 = 1;
/// A usage error: unparseable command line or unknown command.
pub const EXIT_USAGE: i32 = 2;
/// The solve ran to its iteration cap without meeting the tolerance. The
/// report is still printed (and `--metrics-out`/`--history` still written);
/// the code lets scripts tell "diverged/stalled" from "crashed" (1).
pub const EXIT_NOT_CONVERGED: i32 = 3;
/// A request was rejected (shed) by a solve service rather than executed.
/// `aj` itself is the server side and never exits with this; it reserves
/// the code for client tooling (the `serve_load` harness uses it), so
/// scripts can treat `aj`/`serve_load` exit codes uniformly.
#[allow(dead_code)]
pub const EXIT_SHED: i32 = 4;

fn load_problem(args: &Args) -> Result<(Problem, u64), String> {
    let seed: u64 = args.get_or("seed", 2018)?;
    let selector = args.get("matrix").ok_or("missing --matrix (try --help)")?;
    Ok((matrix::load(selector, seed)?, seed))
}

/// `aj info` — matrix diagnostics.
pub fn info(args: &Args) -> Result<i32, String> {
    let (p, _) = load_problem(args)?;
    println!("matrix:      {}", p.name);
    println!("size:        {} × {}", p.n(), p.n());
    println!(
        "nonzeros:    {} ({:.2} per row)",
        p.a.nnz(),
        p.a.nnz() as f64 / p.n() as f64
    );
    println!("symmetric:   {}", p.a.is_symmetric(1e-12));
    println!("W.D.D.:      {}", p.a.is_weakly_diagonally_dominant());
    let rho =
        eigen::jacobi_spectral_radius_unit_diag(&p.a, 200.min(p.n())).map_err(|e| e.to_string())?;
    println!(
        "ρ(G):        {rho:.6}  → synchronous Jacobi {}",
        if rho < 1.0 { "converges" } else { "DIVERGES" }
    );
    let colors = sweeps::greedy_coloring(&p.a);
    let ncolors = colors.iter().max().map_or(0, |m| m + 1);
    println!("greedy colors: {ncolors} (multicolor Gauss–Seidel sweeps per iteration)");
    Ok(EXIT_OK)
}

/// Parses `RANK@TIME` or `RANK@TIME+EXTRA` fault specs.
fn parse_rank_at(spec: &str) -> Result<(usize, f64, Option<f64>), String> {
    let bad = || format!("bad fault spec '{spec}' (want RANK@TIME or RANK@TIME+EXTRA)");
    let (r, rest) = spec.split_once('@').ok_or_else(bad)?;
    let rank = r.trim().parse().map_err(|_| bad())?;
    let (t, extra) = match rest.split_once('+') {
        Some((t, x)) => (t, Some(x.trim().parse().map_err(|_| bad())?)),
        None => (rest, None),
    };
    let at = t.trim().parse().map_err(|_| bad())?;
    Ok((rank, at, extra))
}

/// Builds a [`FaultPlan`] from `--crash`/`--stall`/`--drop`/`--dup`/
/// `--reorder`/`--lat-factor`/`--fault-seed`; `None` when no fault option
/// is given.
fn fault_plan(args: &Args, seed: u64) -> Result<Option<FaultPlan>, String> {
    let drop: f64 = args.get_or("drop", 0.0)?;
    let duplicate: f64 = args.get_or("dup", 0.0)?;
    let reorder: f64 = args.get_or("reorder", 0.0)?;
    let latency_factor: f64 = args.get_or("lat-factor", 1.0)?;
    for (name, p) in [("drop", drop), ("dup", duplicate), ("reorder", reorder)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("--{name} must be a probability in [0, 1], got {p}"));
        }
    }
    if latency_factor <= 0.0 {
        return Err(format!(
            "--lat-factor must be positive, got {latency_factor}"
        ));
    }
    let mut plan = FaultPlan::new(args.get_or("fault-seed", seed)?);
    if drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || latency_factor != 1.0 {
        plan = plan.with_link(LinkFault {
            drop,
            duplicate,
            reorder,
            latency_factor,
            ..LinkFault::everywhere()
        });
    }
    if let Some(specs) = args.get("crash") {
        for spec in specs.split(',') {
            let (rank, at, recover_after) = parse_rank_at(spec)?;
            plan = plan.with_crash(rank, at, recover_after);
        }
    }
    if let Some(specs) = args.get("stall") {
        for spec in specs.split(',') {
            let (rank, at, duration) = parse_rank_at(spec)?;
            let duration =
                duration.ok_or_else(|| format!("--stall '{spec}' needs RANK@TIME+DURATION"))?;
            plan = plan.with_stall(rank, at, duration);
        }
    }
    Ok((!plan.is_empty()).then_some(plan))
}

/// Parses `--obs off | full | sampled[:N]` (default off).
fn parse_obs(args: &Args) -> Result<ObsConfig, String> {
    match args.get("obs") {
        None | Some("off") => Ok(ObsConfig::off()),
        Some("full") => Ok(ObsConfig::full()),
        Some("sampled") => Ok(ObsConfig::sampled(16)),
        Some(s) => match s.strip_prefix("sampled:").map(str::parse) {
            Some(Ok(n)) => Ok(ObsConfig::sampled(n)),
            _ => Err(format!("--obs wants off | full | sampled[:N], got '{s}'")),
        },
    }
}

/// `aj solve` — run a backend and report convergence.
pub fn solve(args: &Args) -> Result<i32, String> {
    let (p, seed) = load_problem(args)?;
    let opts = aj_core::SolveOptions {
        tol: args.get_or("tol", 1e-6)?,
        max_iterations: args.get_or("max-iters", 100_000u64)?,
        norm: Norm::L1,
        omega: args.get_or("omega", 1.0)?,
        method: match args.get("method") {
            Some(selector) => aj_core::spec::parse_method(selector)?,
            None => aj_core::linalg::method::Method::Jacobi,
        },
        format: match args.get("format") {
            Some(selector) => aj_core::spec::parse_format(selector)?,
            None => aj_core::linalg::StorageFormat::Csr,
        },
        seed,
        faults: fault_plan(args, seed)?,
        staleness_timeout: args
            .get("staleness")
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("invalid value for --staleness: {v}"))
            })
            .transpose()?,
        pace_us: args
            .get("pace")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| format!("invalid value for --pace: {v}"))
            })
            .transpose()?,
        obs: {
            let obs = parse_obs(args)?;
            if args.get("metrics-out").is_some() && !obs.is_on() {
                // --metrics-out without --obs: record at the default sample
                // rate rather than writing an empty snapshot.
                ObsConfig::sampled(16)
            } else {
                obs
            }
        },
        plan: None,
        outer: match args.get("outer") {
            Some(selector) => Some(aj_core::spec::parse_outer(selector)?),
            None => None,
        },
        outer_plan: None,
        control: match args.get("control") {
            Some(selector) => aj_core::spec::parse_control(selector)?,
            None => None,
        },
    };
    let threads: usize = args.get_or("threads", 4usize)?;
    let ranks: usize = args.get_or("ranks", 16usize)?;
    // An explicitly-given count is checked even if the chosen backend
    // ignores it — `--threads 0` is a mistake worth flagging either way.
    for (name, count) in [("threads", threads), ("ranks", ranks)] {
        if args.get(name).is_some() && !(1..=p.n()).contains(&count) {
            return Err(format!(
                "--{name} must be in 1..={} for this matrix (got {count})",
                p.n()
            ));
        }
    }
    let backend = aj_core::spec::parse_backend(
        args.get("backend").unwrap_or("sync"),
        threads,
        ranks,
        args.has_flag("detect"),
    )?;
    aj_core::spec::validate_backend(&backend, p.n())?;

    let start = std::time::Instant::now();
    let report = aj_core::solve(&p, backend, &opts)?;
    let wall = start.elapsed();

    println!("matrix:    {} (n = {}, nnz = {})", p.name, p.n(), p.a.nnz());
    println!("backend:   {}", report.backend);
    println!(
        "status:    {}",
        if report.converged {
            "converged"
        } else {
            "NOT converged"
        }
    );
    println!(
        "rel. res.: {:.3e} (tolerance {:.1e})",
        report.final_residual, opts.tol
    );
    println!("samples:   {}", report.history.len());
    println!("wall time: {wall:?}");
    if let Some(o) = &report.outer {
        let levels = o
            .levels
            .iter()
            .map(|(rows, nnz)| format!("{rows}({nnz})"))
            .collect::<Vec<_>>()
            .join(" → ");
        println!(
            "outer:     {} · levels {levels} · {} outer iterations · {} inner sweeps",
            o.spec, o.iterations, o.inner_sweeps
        );
    }
    if let Some(c) = &report.control {
        println!("control:   {}", c.summary());
    }
    if let Some(c) = &report.comm {
        let mut line = format!("comm:      {} puts, {} values", c.puts, c.values);
        if c.drops + c.duplicates + c.reorders > 0 {
            line.push_str(&format!(
                " ({} dropped, {} duplicated, {} reordered)",
                c.drops, c.duplicates, c.reorders
            ));
        }
        println!("{line}");
    }
    if let Some(t) = &report.termination {
        match t.detected_at {
            Some(at) => println!(
                "detect:    stop at t={at:.1} ({} reports, {} dropped)",
                t.reports_sent, t.reports_dropped
            ),
            None => println!("detect:    protocol never fired"),
        }
        if !t.excluded_ranks.is_empty() {
            println!(
                "excluded:  ranks {:?} (presumed dead via staleness)",
                t.excluded_ranks
            );
        }
    }
    if let Some(f) = &report.faults {
        for &(rank, at) in &f.crash_times {
            println!("fault:     rank {rank} crashed at t={at:.1}");
        }
        for &(rank, at) in &f.recovery_times {
            println!("fault:     rank {rank} recovered at t={at:.1}");
        }
        let dead = f.dead_ranks();
        if !dead.is_empty() {
            println!("fault:     dead at end: ranks {dead:?}");
        }
        if f.stalled_sweeps + f.skipped_sweeps + f.dead_window_drops > 0 {
            println!(
                "fault:     {} sweeps stalled, {} skipped, {} puts hit dead windows",
                f.stalled_sweeps, f.skipped_sweeps, f.dead_window_drops
            );
        }
    }
    if let Some(snap) = &report.metrics {
        let fams = snap.families();
        println!(
            "metrics:   {} counters, {} histogram families ({}), {} timelines",
            snap.counters.len(),
            fams.len(),
            fams.join(", "),
            snap.timelines.len()
        );
        if let Some(path) = args.get("metrics-out") {
            if let Some(dir) = std::path::Path::new(path).parent() {
                std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            }
            std::fs::write(path, snap.to_json()).map_err(|e| e.to_string())?;
            println!("metrics:   written to {path}");
        }
    } else if let Some(path) = args.get("metrics-out") {
        return Err(format!(
            "--metrics-out {path}: backend '{}' records no metrics (sequential reference)",
            report.backend
        ));
    }
    let code = if report.converged {
        EXIT_OK
    } else {
        EXIT_NOT_CONVERGED
    };
    if let Some(path) = args.get("history") {
        write_csv(
            std::path::Path::new(path),
            &[Series::new(report.backend, report.history)],
        )
        .map_err(|e| e.to_string())?;
        println!("history:   written to {path}");
    }
    Ok(code)
}

/// `aj _rank` — hidden child entrypoint for the net backend.
///
/// The parent solve spawns `aj _rank --parent ADDR --rank R` once per
/// rank; everything else (the local system, method, format, pacing)
/// arrives over the socket after the hello/welcome handshake, so the
/// child needs no matrix selector and no access to the problem files.
pub fn rank_child(args: &Args) -> Result<i32, String> {
    let parent = args
        .get("parent")
        .ok_or("missing --parent (internal entrypoint; use `aj solve --backend net`)")?;
    let rank: usize = args
        .get("rank")
        .ok_or("missing --rank (internal entrypoint; use `aj solve --backend net`)")?
        .parse()
        .map_err(|e| format!("invalid --rank: {e}"))?;
    aj_core::net::child::run(parent, rank)?;
    Ok(EXIT_OK)
}

/// `aj obs` — inspect a metrics snapshot written by `aj solve --metrics-out`.
///
/// `aj obs summary FILE` prints per-rank quantiles and ASCII timelines;
/// `aj obs csv FILE` re-emits the snapshot as long-form CSV.
pub fn obs(args: &Args) -> Result<i32, String> {
    let action = args.positional(0).unwrap_or("summary");
    let path = args
        .positional(1)
        .or_else(|| args.get("metrics"))
        .ok_or("missing snapshot path (aj obs summary <metrics.json>)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let snap = Snapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let width: usize = args.get_or("width", 72usize)?;
    match action {
        "summary" => {
            // Includes the per-rank ASCII timelines when the snapshot has
            // any.
            print!("{}", snap.render_summary(width));
            Ok(EXIT_OK)
        }
        "csv" => {
            print!("{}", snap.to_csv());
            Ok(EXIT_OK)
        }
        other => Err(format!("unknown obs action: {other} (want summary | csv)")),
    }
}

/// `aj trace` — traced asynchronous run + §IV-A analysis.
pub fn trace(args: &Args) -> Result<i32, String> {
    let (p, seed) = load_problem(args)?;
    let threads: usize = args.get_or("threads", 4usize)?;
    if !(1..=p.n()).contains(&threads) {
        return Err(format!(
            "--threads must be in 1..={} for this matrix (got {threads})",
            p.n()
        ));
    }
    let iterations: u64 = args.get_or("iterations", 30u64)?;
    let mut cfg = ShmemSimConfig::new(threads, p.n(), seed);
    cfg.stop = aj_core::dmsim::shmem_sim::StopRule::FixedIterations(iterations);
    cfg.tol = 0.0;
    let (out, trace) = aj_core::dmsim::shmem_sim::run_shmem_async_traced(&p.a, &p.b, &p.x0, &cfg);
    let analysis = aj_core::trace::reconstruct(&trace);
    let stats = aj_core::trace::trace_stats(&trace);
    println!("matrix:               {} (n = {})", p.name, p.n());
    println!(
        "threads:              {threads} ({} rows each ≈)",
        p.n().div_ceil(threads)
    );
    println!("relaxations:          {}", analysis.total);
    println!("propagated fraction:  {:.4}", analysis.fraction());
    println!("parallel steps Φ(l):  {}", analysis.steps.len());
    println!(
        "reads:                {} (mean lag {:.3}, max lag {})",
        stats.total_reads, stats.mean_lag, stats.max_lag
    );
    println!("progress imbalance:   {:.3}", stats.imbalance);
    println!("final rel. residual:  {:.3e}", out.final_residual());
    if let Some(path) = args.get("out") {
        let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
        aj_core::trace::stats::write_trace_csv(&trace, std::io::BufWriter::new(f))
            .map_err(|e| e.to_string())?;
        println!("trace CSV:            written to {path}");
    }
    Ok(EXIT_OK)
}

/// `aj serve` — run the concurrent solve service over TCP until a client
/// sends a `shutdown` request.
pub fn serve(args: &Args) -> Result<i32, String> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:4100");
    let default_workers = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(2);
    let cfg = aj_serve::ServiceConfig {
        workers: args.get_or("workers", default_workers)?,
        queue_cap: args.get_or("queue-cap", 64usize)?,
        cache_cap: args.get_or("cache-cap", 8usize)?,
        solve_obs: {
            let obs = parse_obs(args)?;
            if args.get("metrics-out").is_some() && !obs.is_on() {
                ObsConfig::sampled(16)
            } else {
                obs
            }
        },
        store: args.get("store").map(aj_serve::StoreConfig::new),
    };
    let service = aj_serve::SolveService::try_start(cfg.clone())?;
    if let Some(rec) = service.recovery() {
        println!(
            "recovered: {} events, {} jobs ({} re-enqueued{}) in {:.1} ms",
            rec.events,
            rec.jobs,
            rec.reenqueued,
            if rec.torn_tail_dropped {
                ", torn tail dropped"
            } else {
                ""
            },
            rec.replay.as_secs_f64() * 1000.0
        );
    }
    let server = aj_serve::Server::bind(addr, service)?;
    println!(
        "aj-serve listening on {} ({} workers, queue {}, cache {})",
        server.addr(),
        cfg.workers,
        cfg.queue_cap,
        cfg.cache_cap
    );
    server.run()?;
    let snap = server.service().metrics_snapshot();
    let get = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    println!(
        "served:    {} jobs ({} completed, {} failed, {} shed)",
        get("jobs_submitted"),
        get("jobs_completed"),
        get("jobs_failed"),
        get("jobs_shed_queue_full")
            + get("jobs_shed_deadline")
            + get("jobs_shed_cancelled")
            + get("jobs_shed_shutdown"),
    );
    println!(
        "cache:     {} hits, {} misses, {} evictions",
        get("plan_cache_hits"),
        get("plan_cache_misses"),
        get("plan_cache_evictions"),
    );
    if let Some(path) = args.get("metrics-out") {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        std::fs::write(path, snap.to_json()).map_err(|e| e.to_string())?;
        println!("metrics:   written to {path}");
    }
    Ok(EXIT_OK)
}
