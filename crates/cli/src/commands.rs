//! The `info`, `solve`, and `trace` subcommands.

use crate::args::Args;
use crate::matrix;
use aj_core::dmsim::shmem_sim::ShmemSimConfig;
use aj_core::linalg::vecops::Norm;
use aj_core::linalg::{eigen, sweeps};
use aj_core::report::{write_csv, Series};
use aj_core::Problem;

fn load_problem(args: &Args) -> Result<(Problem, u64), String> {
    let seed: u64 = args.get_or("seed", 2018)?;
    let selector = args.get("matrix").ok_or("missing --matrix (try --help)")?;
    Ok((matrix::load(selector, seed)?, seed))
}

/// `aj info` — matrix diagnostics.
pub fn info(args: &Args) -> Result<(), String> {
    let (p, _) = load_problem(args)?;
    println!("matrix:      {}", p.name);
    println!("size:        {} × {}", p.n(), p.n());
    println!(
        "nonzeros:    {} ({:.2} per row)",
        p.a.nnz(),
        p.a.nnz() as f64 / p.n() as f64
    );
    println!("symmetric:   {}", p.a.is_symmetric(1e-12));
    println!("W.D.D.:      {}", p.a.is_weakly_diagonally_dominant());
    let rho =
        eigen::jacobi_spectral_radius_unit_diag(&p.a, 200.min(p.n())).map_err(|e| e.to_string())?;
    println!(
        "ρ(G):        {rho:.6}  → synchronous Jacobi {}",
        if rho < 1.0 { "converges" } else { "DIVERGES" }
    );
    let colors = sweeps::greedy_coloring(&p.a);
    let ncolors = colors.iter().max().map_or(0, |m| m + 1);
    println!("greedy colors: {ncolors} (multicolor Gauss–Seidel sweeps per iteration)");
    Ok(())
}

/// `aj solve` — run a backend and report convergence.
pub fn solve(args: &Args) -> Result<(), String> {
    let (p, seed) = load_problem(args)?;
    let opts = aj_core::SolveOptions {
        tol: args.get_or("tol", 1e-6)?,
        max_iterations: args.get_or("max-iters", 100_000u64)?,
        norm: Norm::L1,
        omega: args.get_or("omega", 1.0)?,
        seed,
    };
    let threads: usize = args.get_or("threads", 4usize)?;
    let ranks: usize = args.get_or("ranks", 16usize)?;
    if !(1..=p.n()).contains(&threads) {
        return Err(format!(
            "--threads must be in 1..={} for this matrix (got {threads})",
            p.n()
        ));
    }
    if !(1..=p.n()).contains(&ranks) {
        return Err(format!(
            "--ranks must be in 1..={} for this matrix (got {ranks})",
            p.n()
        ));
    }
    let backend = match args.get("backend").unwrap_or("sync") {
        "sync" => aj_core::Backend::Jacobi,
        "gs" => aj_core::Backend::GaussSeidel,
        "cg" => aj_core::Backend::ConjugateGradient,
        "async-threads" => aj_core::Backend::AsyncThreads { workers: threads },
        "sim-async" => aj_core::Backend::SimShared {
            workers: threads,
            asynchronous: true,
        },
        "sim-sync" => aj_core::Backend::SimShared {
            workers: threads,
            asynchronous: false,
        },
        "dist-async" => aj_core::Backend::SimDistributed {
            ranks,
            asynchronous: true,
            detect: args.has_flag("detect"),
        },
        "dist-sync" => aj_core::Backend::SimDistributed {
            ranks,
            asynchronous: false,
            detect: false,
        },
        other => return Err(format!("unknown backend: {other} (try --help)")),
    };

    let start = std::time::Instant::now();
    let report = aj_core::solve(&p, backend, &opts)?;
    let wall = start.elapsed();

    println!("matrix:    {} (n = {}, nnz = {})", p.name, p.n(), p.a.nnz());
    println!("backend:   {}", report.backend);
    println!(
        "status:    {}",
        if report.converged {
            "converged"
        } else {
            "NOT converged"
        }
    );
    println!(
        "rel. res.: {:.3e} (tolerance {:.1e})",
        report.final_residual, opts.tol
    );
    println!("samples:   {}", report.history.len());
    println!("wall time: {wall:?}");
    if let Some(path) = args.get("history") {
        write_csv(
            std::path::Path::new(path),
            &[Series::new(report.backend, report.history)],
        )
        .map_err(|e| e.to_string())?;
        println!("history:   written to {path}");
    }
    Ok(())
}

/// `aj trace` — traced asynchronous run + §IV-A analysis.
pub fn trace(args: &Args) -> Result<(), String> {
    let (p, seed) = load_problem(args)?;
    let threads: usize = args.get_or("threads", 4usize)?;
    if !(1..=p.n()).contains(&threads) {
        return Err(format!(
            "--threads must be in 1..={} for this matrix (got {threads})",
            p.n()
        ));
    }
    let iterations: u64 = args.get_or("iterations", 30u64)?;
    let mut cfg = ShmemSimConfig::new(threads, p.n(), seed);
    cfg.stop = aj_core::dmsim::shmem_sim::StopRule::FixedIterations(iterations);
    cfg.tol = 0.0;
    let (out, trace) = aj_core::dmsim::shmem_sim::run_shmem_async_traced(&p.a, &p.b, &p.x0, &cfg);
    let analysis = aj_core::trace::reconstruct(&trace);
    let stats = aj_core::trace::trace_stats(&trace);
    println!("matrix:               {} (n = {})", p.name, p.n());
    println!(
        "threads:              {threads} ({} rows each ≈)",
        p.n().div_ceil(threads)
    );
    println!("relaxations:          {}", analysis.total);
    println!("propagated fraction:  {:.4}", analysis.fraction());
    println!("parallel steps Φ(l):  {}", analysis.steps.len());
    println!(
        "reads:                {} (mean lag {:.3}, max lag {})",
        stats.total_reads, stats.mean_lag, stats.max_lag
    );
    println!("progress imbalance:   {:.3}", stats.imbalance);
    println!("final rel. residual:  {:.3e}", out.final_residual());
    if let Some(path) = args.get("out") {
        let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
        aj_core::trace::stats::write_trace_csv(&trace, std::io::BufWriter::new(f))
            .map_err(|e| e.to_string())?;
        println!("trace CSV:            written to {path}");
    }
    Ok(())
}
