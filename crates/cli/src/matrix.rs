//! Matrix selector parsing (`--matrix fd68`, `suite:ecology2:small`, …).

use aj_core::matrices::suite::Scale;
use aj_core::Problem;

/// Builds a [`Problem`] from a selector string.
pub fn load(selector: &str, seed: u64) -> Result<Problem, String> {
    if let Some(p) = Problem::paper_fd(selector, seed) {
        return Ok(p);
    }
    if selector == "fe" {
        return Ok(Problem::paper_fe(seed));
    }
    if let Some(rest) = selector.strip_prefix("suite:") {
        let mut parts = rest.split(':');
        let name = parts.next().unwrap_or_default();
        let scale = match parts.next() {
            None | Some("small") => Scale::Small,
            Some("tiny") => Scale::Tiny,
            Some("medium") => Scale::Medium,
            Some(other) => return Err(format!("unknown scale: {other}")),
        };
        return Problem::suite(name, scale, seed)
            .ok_or_else(|| format!("unknown suite problem: {name}"));
    }
    if let Some(path) = selector.strip_prefix("mtx:") {
        return Problem::from_matrix_market(std::path::Path::new(path), seed)
            .map_err(|e| format!("loading {path}: {e}"));
    }
    if let Some(dims) = selector.strip_prefix("grid:") {
        let (nx, ny) = dims
            .split_once('x')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .ok_or_else(|| format!("bad grid spec: {dims} (want e.g. grid:64x64)"))?;
        let a = aj_core::matrices::fd::laplacian_2d(nx, ny);
        return Problem::from_matrix(format!("grid-{nx}x{ny}"), a, seed).map_err(|e| e.to_string());
    }
    Err(format!("unknown matrix selector: {selector} (try --help)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_resolve() {
        assert_eq!(load("fd68", 1).unwrap().n(), 68);
        assert_eq!(load("fe", 1).unwrap().n(), 3136);
        assert!(load("suite:ecology2:tiny", 1).unwrap().n() > 1000);
        assert_eq!(load("grid:5x7", 1).unwrap().n(), 35);
    }

    #[test]
    fn bad_selectors_error() {
        assert!(load("nope", 1).is_err());
        assert!(load("suite:nope", 1).is_err());
        assert!(load("suite:ecology2:giant", 1).is_err());
        assert!(load("grid:5by7", 1).is_err());
        assert!(load("mtx:/does/not/exist.mtx", 1).is_err());
    }
}
