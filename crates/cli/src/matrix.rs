//! Matrix selector parsing (`--matrix fd68`, `suite:ecology2:small`, …).
//!
//! The grammar itself lives in [`aj_core::spec`] so the CLI, the solve
//! service, and the load generator all accept exactly the same selectors;
//! this module is the CLI-facing shim.

use aj_core::Problem;

/// Builds a [`Problem`] from a selector string.
pub fn load(selector: &str, seed: u64) -> Result<Problem, String> {
    aj_core::spec::load_problem(selector, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_resolve() {
        assert_eq!(load("fd68", 1).unwrap().n(), 68);
        assert_eq!(load("fe", 1).unwrap().n(), 3136);
        assert!(load("suite:ecology2:tiny", 1).unwrap().n() > 1000);
        assert_eq!(load("grid:5x7", 1).unwrap().n(), 35);
    }

    #[test]
    fn bad_selectors_error() {
        assert!(load("nope", 1).is_err());
        assert!(load("suite:nope", 1).is_err());
        assert!(load("suite:ecology2:giant", 1).is_err());
        assert!(load("grid:5by7", 1).is_err());
        assert!(load("mtx:/does/not/exist.mtx", 1).is_err());
    }
}
