//! Tiny dependency-free argument parsing.

use std::collections::HashMap;

/// Parsed command line: a subcommand, further positional arguments (e.g.
/// `aj obs summary metrics.json`), and `--key value` / `--key=value` /
/// `--flag` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// First positional argument (the subcommand).
    pub command: Option<String>,
    /// Positional arguments after the subcommand, in order.
    pub positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    ///
    /// `boolean_flags` lists the options that never take a value: they are
    /// recorded as flags even when followed by another token, so
    /// `aj obs --detect summary` keeps `summary` as a positional instead of
    /// swallowing it as `--detect`'s value. Any option (boolean or not) can
    /// also be written inline as `--key=value`.
    ///
    /// # Errors
    /// Rejects a value-taking option at the end of the line with nothing
    /// following it, and an empty `--`.
    pub fn parse<I: IntoIterator<Item = String>>(
        args: I,
        boolean_flags: &[&str],
    ) -> Result<Args, String> {
        let mut command = None;
        let mut positionals = Vec::new();
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key.is_empty() {
                    return Err("stray '--'".into());
                }
                if let Some((k, v)) = key.split_once('=') {
                    options.insert(k.to_string(), v.to_string());
                } else if boolean_flags.contains(&key) {
                    flags.push(key.to_string());
                } else {
                    match it.peek() {
                        Some(v) if !v.starts_with("--") => {
                            options.insert(key.to_string(), it.next().unwrap());
                        }
                        Some(_) => {
                            return Err(format!(
                                "option --{key} needs a value (use --{key}=... or --{key} VALUE)"
                            ));
                        }
                        None => {
                            return Err(format!("option --{key} needs a value"));
                        }
                    }
                }
            } else if command.is_none() {
                command = Some(a);
            } else {
                positionals.push(a);
            }
        }
        Ok(Args {
            command,
            positionals,
            options,
            flags,
        })
    }

    /// Positional argument after the subcommand (0-based).
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(|s| s.as_str())
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Parsed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }

    /// Boolean flag: `--key`, `--key=true`, or `--key=false` (the inline
    /// form lets scripts toggle flags without editing the argument list).
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
            || self.options.get(key).map(String::as_str) == Some("true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOOLS: &[&str] = &["quiet", "detect", "help", "quick"];

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from), BOOLS).unwrap()
    }

    #[test]
    fn command_options_and_flags() {
        let a = parse("solve --matrix fd68 --tol 1e-4 --quiet");
        assert_eq!(a.command.as_deref(), Some("solve"));
        assert_eq!(a.get("matrix"), Some("fd68"));
        assert_eq!(a.get_or("tol", 1.0).unwrap(), 1e-4);
        assert!(a.has_flag("quiet"));
        assert!(!a.has_flag("verbose"));
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse("info");
        assert_eq!(a.get_or("threads", 4usize).unwrap(), 4);
        assert!(a.positional(0).is_none());
        let bad = parse("solve --tol abc");
        assert!(bad.get_or("tol", 1.0).is_err());
    }

    #[test]
    fn nested_subcommands_via_positionals() {
        let a = parse("obs summary metrics.json --width 100");
        assert_eq!(a.command.as_deref(), Some("obs"));
        assert_eq!(a.positional(0), Some("summary"));
        assert_eq!(a.positional(1), Some("metrics.json"));
        assert_eq!(a.get_or("width", 80usize).unwrap(), 100);
    }

    #[test]
    fn boolean_flag_does_not_swallow_a_following_positional() {
        // The old parser consumed `summary` as the value of --detect.
        let a = parse("obs --detect summary metrics.json");
        assert!(a.has_flag("detect"));
        assert_eq!(a.positional(0), Some("summary"));
        assert_eq!(a.positional(1), Some("metrics.json"));
        // ... and a boolean flag right before another option still works.
        let a = parse("solve --detect --tol 1e-8");
        assert!(a.has_flag("detect"));
        assert_eq!(a.get_or("tol", 1.0).unwrap(), 1e-8);
    }

    #[test]
    fn inline_equals_values() {
        let a = parse("solve --matrix=fd68 --tol=1e-4 --detect=true --quick=false");
        assert_eq!(a.get("matrix"), Some("fd68"));
        assert_eq!(a.get_or("tol", 1.0).unwrap(), 1e-4);
        assert!(a.has_flag("detect"));
        assert!(!a.has_flag("quick"));
        // '=' inside the value survives.
        let a = parse("solve --note=a=b");
        assert_eq!(a.get("note"), Some("a=b"));
    }

    #[test]
    fn trailing_boolean_flag_is_fine_but_dangling_option_errors() {
        let a = parse("solve --quick");
        assert!(a.has_flag("quick"));
        let err = Args::parse(["solve".into(), "--matrix".into()], BOOLS).unwrap_err();
        assert!(err.contains("--matrix"));
        // A value-taking option followed by another option is a usage
        // error, not a silent flag.
        assert!(Args::parse(
            [
                "solve".into(),
                "--matrix".into(),
                "--tol".into(),
                "1".into()
            ]
            .into_iter(),
            BOOLS,
        )
        .is_err());
    }
}
