//! `aj` — command-line front-end for the asynchronous Jacobi reproduction.
//!
//! ```text
//! aj info  --matrix fd4624                       matrix diagnostics
//! aj solve --matrix suite:ecology2 --backend dist-async --ranks 64 --tol 1e-4
//! aj trace --matrix fd272 --threads 68 --iterations 30
//! aj serve --addr 127.0.0.1:4100 --workers 4
//! aj --help
//! ```

mod args;
mod commands;
mod matrix;

use args::Args;

/// Options that never take a value. `Args::parse` needs the list so a
/// boolean flag followed by a positional (`aj obs --detect summary …`)
/// doesn't swallow the positional as its value.
const BOOLEAN_FLAGS: &[&str] = &["help", "detect"];

const HELP: &str = "\
aj — asynchronous Jacobi solvers (Wolfson-Pou & Chow, IPDPS 2018 reproduction)

USAGE:
  aj <COMMAND> [OPTIONS]

COMMANDS:
  info     print matrix diagnostics (size, nnz, W.D.D., ρ(G), colors)
  solve    run a solver and report the convergence history
  trace    run traced asynchronous Jacobi; report the propagated fraction
           and read-staleness statistics (paper §IV-A / Figure 2)
  obs      inspect a metrics snapshot: `aj obs summary <metrics.json>`
           (per-rank staleness quantiles + ASCII timelines) or
           `aj obs csv <metrics.json>`
  serve    run the concurrent solve service (newline-delimited JSON over
           TCP) until a client sends a shutdown request

MATRIX SELECTORS (--matrix):
  fd40 | fd68 | fd272 | fd4624      the paper's FD Laplacians
  fe                                the paper's FE matrix (ρ(G) > 1)
  suite:NAME[:tiny|small|medium]    Table I analogue (e.g. suite:ecology2)
  mtx:PATH                          a Matrix Market file
  grid:NXxNY                        2-D FD Laplacian of given interior size

SOLVE OPTIONS:
  --backend  sync | gs | cg | async-threads | sim-async | sim-sync |
             dist-sync | dist-async | net[:ranks=N]    (default sync)
             (net runs one OS process per rank exchanging ghost puts
              over loopback TCP; always asynchronous, always stops via
              the termination-detection protocol)
  --threads N        workers for thread/sim backends   (default 4)
  --ranks N          ranks for distributed backends    (default 16;
                     net:ranks=N inline form overrides)
  --tol T            relative residual tolerance       (default 1e-6)
  --max-iters N      iteration cap                     (default 100000)
  --omega W          relaxation weight                 (default 1.0)
  --method M         relaxation method (default jacobi):
                       jacobi | richardson1[:omega=<w>|auto] |
                       richardson2[:omega=<w>|auto][:beta=<b>] |
                       rwr[:fraction=<f>]
                     (omega=auto estimates the preconditioned spectrum;
                      applies to Jacobi-family backends, not gs/cg)
  --format F         sweep storage format (default csr):
                       csr | sellc[:c=<2|4|8|16>] | rcm-blocked | auto
                     (non-csr formats apply to the asynchronous block
                      engines: async-threads, sim-async, dist-async;
                      auto measures the row statistics at plan time and
                      picks the cheapest bit-compatible layout)
  --outer O          wrap the backend in an outer solver that uses it for
                     inner smoothing sweeps (default: none — standalone):
                       vcycle[:levels=<L>][:smooth=METHOD][:steps=<K>]
                       fcg[:prec=METHOD][:inner=<K>]
                       fgmres[:prec=METHOD][:inner=<K>][:restart=<M>]
                     (vcycle = multigrid V-cycle, geometric on grid
                      matrices, aggregation AMG otherwise; fcg/fgmres =
                      flexible Krylov with K async sweeps as the
                      preconditioner. Rescues the ρ(G) > 1 divergent
                      cases: `--matrix suite:Dubcova2 --backend sim-async
                      --outer vcycle` converges where standalone async
                      Jacobi blows up)
  --control C        online controller closing the loop from the monitor
                     into the running solve (default off):
                       off | on[:window=<W>][:low=<R>][:high=<R>]
                            [:patience=<K>][:stall=<D>][:shed=<R>]
                            [:rescue=<on|off>]
                     (asynchronous engines only — async-threads,
                      sim-async, dist-async; adapts ω/β from observed
                      staleness-at-use, switches momentum off on stall,
                      sheds persistently slow workers past shed=R, and
                      escalates a stalled run to an outer V-cycle rescue.
                      Conflicts with --outer)
  --seed S           workload seed                     (default 2018)
  --detect           use the distributed termination-detection protocol
  --staleness T      presume a rank dead after T without a report
                     (default: never). T is simulated time units with
                     dist-async --detect, wall-clock SECONDS with net
  --pace U           net only: per-sweep pacing in microseconds
                     (default 150; keeps put latency under the sweep
                     period, the regime the paper's model covers)
  --history PATH     write the residual history CSV
  --obs MODE         record metrics: off | sampled[:N] | full (default off;
                     sampled records every Nth observation, default N=16)
  --metrics-out PATH write the metrics snapshot as JSON (implies
                     --obs sampled:16 unless --obs is given)

SERVE OPTIONS:
  --addr A:P         listen address            (default 127.0.0.1:4100)
  --workers N        solver worker threads     (default: CPU count)
  --queue-cap N      admission queue capacity  (default 64)
  --cache-cap N      plan cache capacity       (default 8)
  --store DIR        durable job log: every lifecycle transition is
                     appended (checksummed, fsynced) to DIR before it is
                     acknowledged; on startup the log is replayed and
                     unfinished jobs re-run. Enables idempotent
                     resubmission via \"idempotency_key\" in solve
                     requests. (default: in-memory only)
  --obs MODE         per-solve engine metrics, merged into the service
                     snapshot (off | sampled[:N] | full, default off)
  --metrics-out PATH write the final service snapshot as JSON on shutdown
                     (implies --obs sampled:16 unless --obs is given)

FAULT INJECTION (dist-async; net supports --crash only):
  --crash R@T[+REC]  crash rank R at time T; +REC recovers it REC later.
                     With net: T is milliseconds after the solve starts,
                     the process is killed, and no +REC is possible —
                     pair with --staleness so detection excludes the
                     dead rank (exit code 3, rank listed as excluded)
  --stall R@T+D      stall rank R's sweeps at time T for duration D
                     (both accept comma-separated lists)
  --drop P           drop each put with probability P on every link
  --dup P            duplicate each put with probability P
  --reorder P        delay (reorder) each put with probability P
  --lat-factor F     multiply every link's latency by F
  --fault-seed S     fault RNG seed            (default: --seed)

COMMON:
  --help             this text
  Options also accept the inline form --key=value.

EXIT CODES:
  0  success (for solve: the tolerance was met)
  1  runtime failure (bad input file, solver error, I/O error)
  2  usage error (unparseable command line, unknown command)
  3  solve finished but did NOT meet the tolerance (report still printed)
  4  request rejected (shed) by a solve service instead of executed
     (used by client tooling such as serve_load)
";

fn main() {
    let args = match Args::parse(std::env::args().skip(1), BOOLEAN_FLAGS) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(commands::EXIT_USAGE);
        }
    };
    if args.has_flag("help") || args.command.is_none() {
        print!("{HELP}");
        return;
    }
    let result = match args.command.as_deref().unwrap() {
        "info" => commands::info(&args),
        "solve" => commands::solve(&args),
        "trace" => commands::trace(&args),
        "obs" => commands::obs(&args),
        "serve" => commands::serve(&args),
        // Hidden: the net backend's child entrypoint. The parent process
        // spawns `aj _rank --parent ADDR --rank R`; not user-facing, so
        // not in HELP.
        "_rank" => commands::rank_child(&args),
        other => {
            eprintln!("error: unknown command: {other}\n\n{HELP}");
            std::process::exit(commands::EXIT_USAGE);
        }
    };
    match result {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(commands::EXIT_RUNTIME);
        }
    }
}
