//! Hermetic (thread-mode) integration tests for the multi-process backend:
//! convergence to the true fixed point, obs shard merging, and
//! reconnect-and-resync after a dropped transport.

use aj_linalg::vecops::{self, Norm};
use aj_matrices::fd;
use aj_net::{run_net, ChildMode, NetConfig, NetHooks};
use aj_obs::ObsConfig;
use aj_partition::{block_partition, CommPlan};

fn solve_setup(n: usize, ranks: usize) -> (aj_linalg::CsrMatrix, Vec<f64>, Vec<f64>, CommPlan) {
    let a = fd::laplacian_1d(n);
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.37).sin()).collect();
    let x0 = vec![0.0; n];
    let plan = CommPlan::build(&a, &block_partition(n, ranks));
    (a, b, x0, plan)
}

fn thread_cfg(ranks: usize) -> NetConfig {
    let mut cfg = NetConfig::new(ranks);
    cfg.mode = ChildMode::Thread;
    cfg.tol = 1e-8;
    cfg.pace_us = 20; // fast tests: light pacing still exercises staleness
    cfg.deadline = std::time::Duration::from_secs(60);
    cfg
}

#[test]
fn two_ranks_converge_to_the_fixed_point() {
    let (a, b, x0, plan) = solve_setup(64, 2);
    let mut cfg = thread_cfg(2);
    cfg.obs = ObsConfig::sampled(4);
    let out = run_net(&a, &b, &x0, &plan, &cfg).expect("net solve");

    let r = a.residual(&out.x, &b);
    let rel = vecops::norm(&r, Norm::L1) / vecops::norm(&b, Norm::L1);
    assert!(
        rel < 1e-7,
        "relative residual {rel:e} not converged (history: {:?})",
        out.history.last()
    );
    assert!(
        out.termination.detected_at.is_some(),
        "detection never fired"
    );
    assert!(out.termination.excluded_ranks.is_empty());
    assert!(out.iterations > 0);
    assert!(out.comm.puts > 0, "no puts routed");

    // Obs shards from both ranks merged under per-rank keys.
    let obs = out.obs.expect("obs snapshot");
    assert_eq!(obs.per_rank("staleness").len(), 2);
    assert!(obs.family_total("staleness").count() > 0);
    assert!(obs.family_total("sweep_period").count() > 0);
    assert!(obs.counters.get("relaxations").copied().unwrap_or(0) > 0);
    assert_eq!(obs.counters["ranks"], 2);
}

#[test]
fn four_ranks_all_methods_converge() {
    use aj_linalg::ResolvedMethod;
    for method in [
        ResolvedMethod::Jacobi,
        ResolvedMethod::Richardson1 { omega: 0.9 },
        ResolvedMethod::Richardson2 {
            omega: 0.9,
            beta: 0.2,
        },
        ResolvedMethod::RandomizedResidual {
            fraction: 0.75,
            seed: 7,
        },
    ] {
        let (a, b, x0, plan) = solve_setup(48, 4);
        let mut cfg = thread_cfg(4);
        cfg.tol = 1e-6;
        // Light pacing keeps put latency under the sweep period — the
        // regime the termination protocol's inconsistent-read safety
        // factor is calibrated for (see termination.rs module docs).
        cfg.pace_us = 20;
        cfg.method = method;
        let out =
            run_net(&a, &b, &x0, &plan, &cfg).unwrap_or_else(|e| panic!("{}: {e}", method.name()));
        let r = a.residual(&out.x, &b);
        let rel = vecops::norm(&r, Norm::L1) / vecops::norm(&b, Norm::L1);
        assert!(rel < 1e-5, "{}: residual {rel:e}", method.name());
    }
}

#[test]
fn dropped_socket_reconnects_and_still_converges() {
    let (a, b, x0, plan) = solve_setup(64, 2);
    let mut cfg = thread_cfg(2);
    cfg.tol = 1e-8;
    cfg.pace_us = 100; // long enough that the drop lands mid-solve
    cfg.hooks = NetHooks {
        kills: vec![],
        drops: vec![(1, 80)],
    };
    let out = run_net(&a, &b, &x0, &plan, &cfg).expect("net solve with drop");
    assert!(
        out.reconnects >= 1,
        "drop hook should force at least one reconnect (saw {})",
        out.reconnects
    );
    let r = a.residual(&out.x, &b);
    let rel = vecops::norm(&r, Norm::L1) / vecops::norm(&b, Norm::L1);
    assert!(rel < 1e-7, "post-reconnect residual {rel:e}");
}

#[test]
fn kill_hooks_rejected_in_thread_mode() {
    let (a, b, x0, plan) = solve_setup(32, 2);
    let mut cfg = thread_cfg(2);
    cfg.hooks.kills = vec![(1, 10)];
    let err = run_net(&a, &b, &x0, &plan, &cfg).unwrap_err();
    assert!(err.contains("kill hooks"), "unexpected error: {err}");
}
