//! Regression guard for the put-routing staleness regime.
//!
//! The parent routes every one-sided put through a single coordinator fed
//! by a bounded event queue. Before the coordinator coalesced superseded
//! puts, a backed-up queue turned directly into ghost staleness (~75 sweep
//! periods observed on this exact problem): every rank converged locally
//! against frozen boundaries, all reported tiny norms at once, and the
//! termination protocol fired a FALSE global decision at ~1e-3 true
//! residual. This test runs the same tight-tolerance solve hermetically
//! (thread mode, no child binary) and pins both the outcome and the
//! regime: ghosts must be at most a handful of sweeps old.

use aj_net::{run_net, ChildMode, NetConfig};
use aj_partition::{block_partition, CommPlan};

#[test]
fn tight_tolerance_stays_in_the_modeled_staleness_regime() {
    let p = aj_core::spec::load_problem("fd68", 2018).unwrap();
    let plan = CommPlan::build(&p.a, &block_partition(p.n(), 4));
    let mut cfg = NetConfig::new(4);
    cfg.obs = aj_core::obs::ObsConfig::sampled(4);
    cfg.mode = ChildMode::Thread;
    cfg.tol = 1e-11;
    cfg.staleness_timeout = 30.0;
    cfg.deadline = std::time::Duration::from_secs(60);
    let out = run_net(&p.a, &p.b, &p.x0, &plan, &cfg).expect("net solve");

    // A false decision leaves whole subdomains frozen at ~1e-3; a true one
    // lands at or below tol against the recomputed global residual.
    let r = p.relative_residual(&out.x, aj_core::linalg::vecops::Norm::L1);
    assert!(
        r < 1e-10,
        "false termination: recomputed rel residual {r:e}"
    );
    assert!(
        out.termination.detected_at.is_some(),
        "detection never fired"
    );
    assert!(
        out.termination.excluded_ranks.is_empty(),
        "no rank died, none may be excluded: {:?}",
        out.termination.excluded_ranks
    );

    // Regime pin: mean ghost age at use within a handful of sweep periods
    // (the broken router measured ~75). Generous bound — this guards the
    // regime, not the scheduler's mood on a loaded host.
    let snap = out.obs.as_ref().expect("obs snapshot");
    let stale = snap
        .family_total("staleness")
        .mean()
        .expect("staleness samples");
    let period = snap
        .family_total("sweep_period")
        .mean()
        .expect("sweep-period samples");
    let norm_stale = stale / period;
    assert!(
        norm_stale < 10.0,
        "ghosts are {norm_stale:.1} sweeps old on average — the router is \
         queueing puts instead of coalescing them"
    );
}
