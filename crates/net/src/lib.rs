//! # aj-net
//!
//! A **real multi-process distributed backend** for the asynchronous
//! Jacobi solver: one OS process per rank, one-sided ghost puts over
//! NDJSON/TCP, and the same termination protocol the discrete-event
//! simulator uses.
//!
//! The paper's headline results come from real MPI runs with
//! passive-target RMA windows; until now this repository's distributed
//! engine was simulator-only (DESIGN.md §2). This crate closes that gap
//! with no new dependencies:
//!
//! * [`wire`] — versioned NDJSON protocol: hello/welcome handshake with
//!   codec negotiation (`hexf64` bit-lossless, `decf64` fallback), job
//!   shipment, one-sided puts, residual reports, heartbeats, stop, done.
//! * [`child`] — the per-rank worker: an atomic-u64 ghost window (element
//!   atomicity ≈ an RMA window), the dmsim method arms over real sockets,
//!   reconnect-and-resync when the transport breaks.
//! * [`parent`] — the coordinator: spawns/supervises workers, routes and
//!   caches boundary puts, feeds the shared
//!   [`RootAggregator`](aj_dmsim::termination::RootAggregator) (staleness
//!   timeout included, so a killed rank can never deadlock detection),
//!   merges per-rank obs shards through the lossless histogram merge.
//!
//! The backend's acceptance experiment is *cross-validation*: the same
//! seeded problem solved by dmsim and by real processes must agree on the
//! fixed point to tight tolerance and produce staleness-at-use
//! distributions whose normalized means (staleness ÷ sweep period, a
//! dimensionless ratio that cancels ticks vs µs) sit in a pinned band —
//! see DESIGN.md §15 and EXPERIMENTS.md.

pub mod child;
pub mod parent;
pub mod wire;

pub use child::run as run_child;
pub use parent::{run_net, ChildMode, NetConfig, NetHooks, NetOutcome};
pub use wire::{Codec, PROTO_VERSION};
