//! The per-rank worker process (or thread).
//!
//! A child dials the parent, handshakes ([`crate::wire`]), receives its
//! local system as a `job` message, and on `start` enters the racy
//! asynchronous sweep loop of the paper's §V implementation:
//!
//! * **Window** — ghost values live in a `Vec<AtomicU64>` of f64 bit
//!   patterns. The reader thread lands incoming puts element-atomically
//!   while the sweep thread reads, exactly the torn-vector-free /
//!   element-race-allowed semantics of an MPI-3 passive-target window
//!   (DESIGN.md §2). No lock couples communication to compute.
//! * **Generation table** — alongside each ghost slot the sender's
//!   µs-since-start send stamp, so staleness-at-use is measured with the
//!   simulator's definition: age from *generation*, not arrival.
//! * **Pacing** — an optional per-sweep sleep keeps sweep duration in the
//!   same ratio to put latency as the simulator's cost model, so measured
//!   staleness distributions are comparable (DESIGN.md §15).
//! * **Reconnect** — a broken transport is re-dialed with `resume=1`; the
//!   parent replays each neighbour's last committed boundary into our
//!   window and we re-put ours, restoring exactly the state a recovering
//!   MPI rank would re-expose.
//!
//! The loop ends on `stop` (termination detection decided at the parent)
//! or the local sweep cap; either way the child sends `done` carrying its
//! owned block and obs shards, then exits cleanly.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use aj_linalg::method::{select_residual_weighted, selection_seed};
use aj_linalg::{CooMatrix, CsrMatrix, StorageFormat, SweepKernel};
use aj_obs::{Histogram, Sampler, Snapshot, SpanKind, Timeline};

use crate::wire::{self, Codec, DoneMsg, JobMsg, Msg};

/// How long the child keeps re-dialing the parent at startup.
const DIAL_RETRY: Duration = Duration::from_millis(50);
const DIAL_ATTEMPTS: u32 = 100;
/// Handshake read timeout (a parent that accepts but never welcomes).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);
/// Total time budget for one reconnect-and-resync before giving up.
const RECONNECT_BUDGET: Duration = Duration::from_secs(4);

/// Method arm resolved from the wire (parameters already concrete —
/// `omega=auto` is resolved by the parent, never in a child).
enum ChildMethod {
    Jacobi,
    Richardson1 { omega: f64 },
    Richardson2 { omega: f64, beta: f64 },
    Rwr { fraction: f64, seed: u64 },
}

impl ChildMethod {
    fn from_wire(m: &wire::MethodMsg) -> Result<ChildMethod, String> {
        match m.name.as_str() {
            "jacobi" => Ok(ChildMethod::Jacobi),
            "richardson1" => Ok(ChildMethod::Richardson1 { omega: m.omega }),
            "richardson2" => Ok(ChildMethod::Richardson2 {
                omega: m.omega,
                beta: m.beta,
            }),
            "rwr" => Ok(ChildMethod::Rwr {
                fraction: m.fraction,
                seed: m.seed,
            }),
            other => Err(format!("unknown method '{other}' in job")),
        }
    }
}

/// State shared between the sweep thread and the reader thread(s).
struct Shared {
    /// Ghost window: f64 bit patterns, one atomic per slot (≈ RMA window).
    window: Vec<AtomicU64>,
    /// Per-slot generation stamp (sender µs at send; 0 = initial value).
    gens: Vec<AtomicU64>,
    /// `stop` received (or locally decided): finish and send `done`.
    stop: AtomicBool,
    /// The transport died mid-run; the sweep thread must reconnect.
    /// Tagged with the connection epoch so a stale reader can't re-break
    /// a fresh connection.
    broken_epoch: AtomicU64,
    /// Current connection epoch (bumped by every successful reconnect).
    conn_epoch: AtomicU64,
    /// Ghost slots written by each in-neighbour, in that link's put order.
    slots_of: HashMap<usize, Vec<usize>>,
    /// Receive-side observability (recorded on the reader thread).
    recv_obs: Mutex<RecvObs>,
}

struct RecvObs {
    put_latency: Histogram,
    put_sampler: Sampler,
}

impl Shared {
    fn broken(&self) -> bool {
        self.broken_epoch.load(Ordering::Acquire) == self.conn_epoch.load(Ordering::Acquire)
    }
}

/// Dials `parent` and performs the hello/welcome handshake. Returns the
/// connection (read half still attached) and the negotiated codec.
fn dial(parent: &str, rank: usize, resume: bool) -> Result<(BufReader<TcpStream>, Codec), String> {
    let mut last_err = String::from("no attempt");
    for _ in 0..DIAL_ATTEMPTS {
        match TcpStream::connect(parent) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return handshake(stream, rank, resume);
            }
            Err(e) => {
                last_err = e.to_string();
                std::thread::sleep(DIAL_RETRY);
            }
        }
    }
    Err(format!(
        "rank {rank}: cannot reach parent {parent}: {last_err}"
    ))
}

fn handshake(
    stream: TcpStream,
    rank: usize,
    resume: bool,
) -> Result<(BufReader<TcpStream>, Codec), String> {
    stream
        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let hello = Msg::Hello {
        rank,
        proto: wire::PROTO_VERSION,
        codecs: Codec::PREFERENCE
            .iter()
            .map(|c| c.name().to_string())
            .collect(),
        resume,
    };
    let mut w = stream.try_clone().map_err(|e| e.to_string())?;
    send_line(&mut w, &hello, Codec::DecF64)?;
    let mut reader = BufReader::new(stream);
    match read_msg(&mut reader)? {
        Msg::Welcome { proto, codec, .. } => {
            if proto != wire::PROTO_VERSION {
                return Err(format!(
                    "rank {rank}: parent speaks protocol {proto}, we speak {}",
                    wire::PROTO_VERSION
                ));
            }
            let codec = Codec::from_name(&codec)
                .ok_or_else(|| format!("rank {rank}: parent chose unknown codec '{codec}'"))?;
            // Steady state: reads block until data or disconnect.
            reader
                .get_ref()
                .set_read_timeout(None)
                .map_err(|e| e.to_string())?;
            Ok((reader, codec))
        }
        Msg::Reject { error } => Err(format!("rank {rank}: rejected by parent: {error}")),
        other => Err(format!("rank {rank}: expected welcome, got {other:?}")),
    }
}

fn send_line(w: &mut TcpStream, msg: &Msg, codec: Codec) -> Result<(), String> {
    let mut line = wire::render(msg, codec);
    line.push('\n');
    w.write_all(line.as_bytes()).map_err(|e| e.to_string())
}

fn read_msg(reader: &mut BufReader<TcpStream>) -> Result<Msg, String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
    if n == 0 {
        return Err("connection closed".into());
    }
    wire::parse(&line)
}

/// Spawns the reader thread for one (re)connected transport. It owns the
/// read half: lands puts into the window, honours `stop`, and flags the
/// epoch broken on EOF or error.
fn spawn_reader(mut reader: BufReader<TcpStream>, shared: Arc<Shared>, t0: Instant, epoch: u64) {
    std::thread::spawn(move || {
        loop {
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let msg = match read_msg(&mut reader) {
                Ok(m) => m,
                Err(_) => {
                    // Only break the epoch we belong to: after a reconnect
                    // this thread's socket is dead by design.
                    if shared.conn_epoch.load(Ordering::Acquire) == epoch {
                        shared.broken_epoch.store(epoch, Ordering::Release);
                    }
                    return;
                }
            };
            match msg {
                Msg::Put {
                    from,
                    sent_us,
                    vals,
                    ..
                } => {
                    let Some(slots) = shared.slots_of.get(&from) else {
                        continue; // not an in-neighbour; ignore
                    };
                    // Element-atomic landing: each slot flips in one store,
                    // concurrent sweeps may see a mix of old and new values
                    // but never a torn f64 — the RMA window contract.
                    for (&slot, &v) in slots.iter().zip(vals.iter()) {
                        shared.window[slot].store(v.to_bits(), Ordering::Release);
                        shared.gens[slot].store(sent_us, Ordering::Release);
                    }
                    let now_us = t0.elapsed().as_micros() as u64;
                    let mut obs = shared.recv_obs.lock().unwrap();
                    if obs.put_sampler.hit() {
                        let latency = now_us.saturating_sub(sent_us);
                        obs.put_latency.record(latency);
                    }
                }
                Msg::Stop => {
                    shared.stop.store(true, Ordering::Release);
                    return;
                }
                // Anything else mid-run (a replayed welcome line, say) is
                // ignorable; the protocol is one-directional here.
                _ => {}
            }
        }
    });
}

/// Runs one rank to completion against `parent` (a `host:port` address).
///
/// This is the body of the hidden `aj _rank` entrypoint, and is also called
/// directly on a thread by the parent's hermetic test mode.
///
/// # Errors
/// Propagates handshake failures, malformed jobs, and a transport that
/// cannot be re-established within the reconnect budget.
pub fn run(parent: &str, rank: usize) -> Result<(), String> {
    let (mut reader, codec) = dial(parent, rank, false)?;
    let mut writer = reader.get_ref().try_clone().map_err(|e| e.to_string())?;

    // Job then start arrive sequentially before any concurrency begins.
    let job = match read_msg(&mut reader)? {
        Msg::Job(j) => *j,
        other => return Err(format!("rank {rank}: expected job, got {other:?}")),
    };
    match read_msg(&mut reader)? {
        Msg::Start => {}
        Msg::Stop => return Ok(()), // parent aborted before starting
        other => return Err(format!("rank {rank}: expected start, got {other:?}")),
    }
    let t0 = Instant::now();

    let state = build_state(rank, &job)?;
    let shared = Arc::new(Shared {
        window: job.x[job.n_owned..]
            .iter()
            .map(|v| AtomicU64::new(v.to_bits()))
            .collect(),
        gens: (0..job.n_ghost).map(|_| AtomicU64::new(0)).collect(),
        stop: AtomicBool::new(false),
        broken_epoch: AtomicU64::new(u64::MAX),
        conn_epoch: AtomicU64::new(0),
        slots_of: job.recvs.iter().cloned().collect(),
        recv_obs: Mutex::new(RecvObs {
            put_latency: Histogram::new(),
            put_sampler: Sampler::new(job.obs_stride),
        }),
    });
    spawn_reader(reader, Arc::clone(&shared), t0, 0);

    sweep_loop(rank, &job, state, &shared, &mut writer, codec, parent, t0)
}

/// Immutable per-rank solver state built once from the job.
struct RankState {
    matrix: CsrMatrix,
    diag_inv: Vec<f64>,
    kernel: SweepKernel,
    method: ChildMethod,
    format_omega: f64,
}

fn build_state(rank: usize, job: &JobMsg) -> Result<RankState, String> {
    let n_owned = job.n_owned;
    let width = n_owned + job.n_ghost;
    if job.x.len() != width || job.b.len() != n_owned || job.indptr.len() != n_owned + 1 {
        return Err(format!("rank {rank}: inconsistent job dimensions"));
    }
    // COO assembly tolerates unsorted rows and re-validates bounds.
    let mut coo = CooMatrix::new(n_owned, width);
    let mut diag = vec![0.0f64; n_owned];
    for (row, d) in diag.iter_mut().enumerate() {
        let (start, end) = (job.indptr[row] as usize, job.indptr[row + 1] as usize);
        if end > job.cols.len() || end > job.vals.len() || start > end {
            return Err(format!("rank {rank}: corrupt indptr in job"));
        }
        for k in start..end {
            let col = job.cols[k] as usize;
            if col >= width {
                return Err(format!("rank {rank}: column {col} out of range in job"));
            }
            coo.push(row, col, job.vals[k]);
            if col == row {
                *d = job.vals[k];
            }
        }
    }
    if diag.contains(&0.0) {
        return Err(format!("rank {rank}: zero/missing diagonal in job"));
    }
    let matrix = coo.to_csr();
    let format = match job.format.as_str() {
        "csr" => StorageFormat::Csr,
        "sellc" => StorageFormat::SellC { c: job.sell_c },
        "rcm-blocked" => StorageFormat::RcmBlocked,
        other => return Err(format!("rank {rank}: unknown storage format '{other}'")),
    };
    let kernel = SweepKernel::build(&matrix, 0..n_owned, format).map_err(|e| e.to_string())?;
    Ok(RankState {
        matrix,
        diag_inv: diag.into_iter().map(|d| 1.0 / d).collect(),
        kernel,
        method: ChildMethod::from_wire(&job.method)?,
        format_omega: job.omega,
    })
}

#[allow(clippy::too_many_arguments)]
fn sweep_loop(
    rank: usize,
    job: &JobMsg,
    mut state: RankState,
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    mut codec: Codec,
    parent: &str,
    t0: Instant,
) -> Result<(), String> {
    let n_owned = job.n_owned;
    let width = n_owned + job.n_ghost;
    let mut x = job.x.clone();
    // Momentum state over the owned block (richardson2 only).
    let mut x_prev: Vec<f64> = if matches!(state.method, ChildMethod::Richardson2 { .. }) {
        x[..n_owned].to_vec()
    } else {
        Vec::new()
    };
    let mut residuals = vec![0.0f64; n_owned];
    let mut weights: Vec<f64> = Vec::new();

    // Send-side obs shards (merged into one snapshot at the end).
    let mut staleness = Histogram::new();
    let mut sweep_period = Histogram::new();
    let mut timeline = Timeline::new(if job.obs_stride > 0 { 512 } else { 0 });
    let mut sweep_sampler = Sampler::new(job.obs_stride);
    let mut put_sampler = Sampler::new(job.obs_stride);
    let mut last_sweep_end: Option<u64> = None;

    let mut iterations: u64 = 0;
    let mut relaxations: u64 = 0;
    let mut puts_sent: u64 = 0;
    let mut put_values: u64 = 0;
    let mut reports: u64 = 0;
    let mut reconnects: u64 = 0;
    let mut last_hb = Instant::now();

    'outer: while !shared.stop.load(Ordering::Acquire) && iterations < job.max_iterations {
        if shared.broken() {
            match reconnect(rank, parent, shared, t0) {
                Ok((w, c)) => {
                    *writer = w;
                    codec = c;
                    reconnects += 1;
                    // Resync: re-expose our current boundary so neighbours
                    // recover our last committed state, mirroring what a
                    // restarted RMA window would show after re-attach.
                    let now_us = t0.elapsed().as_micros() as u64;
                    for (to, idxs) in &job.sends {
                        let vals: Vec<f64> = idxs.iter().map(|&l| x[l]).collect();
                        put_values += vals.len() as u64;
                        puts_sent += 1;
                        let msg = Msg::Put {
                            from: rank,
                            to: *to,
                            sent_us: now_us,
                            vals,
                        };
                        if send_line(writer, &msg, codec).is_err() {
                            continue 'outer; // broken again; retry loop
                        }
                    }
                }
                Err(e) => {
                    // Give up only if the parent also told us to stop.
                    if shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    return Err(e);
                }
            }
        }

        // Gather the freshest window contents into the ghost tail.
        for g in 0..job.n_ghost {
            x[n_owned + g] = f64::from_bits(shared.window[g].load(Ordering::Acquire));
        }
        let now_us = t0.elapsed().as_micros() as u64;
        if sweep_sampler.hit() {
            for g in 0..job.n_ghost {
                let age = now_us.saturating_sub(shared.gens[g].load(Ordering::Acquire));
                staleness.record(age);
            }
            if let Some(prev) = last_sweep_end {
                sweep_period.record(now_us.saturating_sub(prev));
            }
            timeline.push(now_us, SpanKind::SweepEnd);
        }
        last_sweep_end = Some(now_us);

        // Relax the owned block (the dmsim arms, verbatim semantics).
        debug_assert_eq!(x.len(), width);
        let swept = match state.method {
            ChildMethod::Jacobi | ChildMethod::Richardson1 { .. } => {
                let omega = match state.method {
                    ChildMethod::Richardson1 { omega } => omega,
                    _ => state.format_omega,
                };
                state
                    .kernel
                    .residuals_into(&state.matrix, &x, &job.b, &mut residuals);
                for row in 0..n_owned {
                    x[row] += omega * state.diag_inv[row] * residuals[row];
                }
                n_owned
            }
            ChildMethod::Richardson2 { omega, beta } => {
                state
                    .kernel
                    .residuals_into(&state.matrix, &x, &job.b, &mut residuals);
                for row in 0..n_owned {
                    let next = x[row]
                        + omega * state.diag_inv[row] * residuals[row]
                        + beta * (x[row] - x_prev[row]);
                    x_prev[row] = x[row];
                    x[row] = next;
                }
                n_owned
            }
            ChildMethod::Rwr { fraction, seed } => {
                state
                    .kernel
                    .residuals_into(&state.matrix, &x, &job.b, &mut residuals);
                weights.clear();
                weights.extend(residuals.iter().map(|v| v.abs()));
                let k = ((fraction * n_owned as f64).ceil() as usize).max(1);
                // Stream rank+1 keeps per-rank draws independent (stream 0
                // belongs to the synchronous reference engine).
                let chosen = select_residual_weighted(
                    &weights,
                    k,
                    selection_seed(seed, rank as u64 + 1, iterations),
                );
                let swept = chosen.len();
                for l in chosen {
                    x[l] += state.diag_inv[l] * residuals[l];
                }
                swept
            }
        };
        iterations += 1;
        relaxations += swept as u64;

        // One-sided puts toward every out-neighbour.
        let now_us = t0.elapsed().as_micros() as u64;
        for (to, idxs) in &job.sends {
            let vals: Vec<f64> = idxs.iter().map(|&l| x[l]).collect();
            put_values += vals.len() as u64;
            puts_sent += 1;
            if put_sampler.hit() {
                timeline.push(now_us, SpanKind::PutSend);
            }
            let msg = Msg::Put {
                from: rank,
                to: *to,
                sent_us: now_us,
                vals,
            };
            if send_line(writer, &msg, codec).is_err() {
                continue 'outer; // transport died; reconnect path handles it
            }
        }

        // Residual report toward the root's aggregator.
        if iterations.is_multiple_of(job.check_interval.max(1)) {
            state
                .kernel
                .residuals_into(&state.matrix, &x, &job.b, &mut residuals);
            let norm: f64 = residuals.iter().map(|v| v.abs()).sum();
            reports += 1;
            let msg = Msg::Report {
                rank,
                norm,
                iter: iterations,
            };
            if send_line(writer, &msg, codec).is_err() {
                continue 'outer;
            }
        }

        // Liveness beacon.
        if last_hb.elapsed() >= Duration::from_millis(job.hb_ms.max(1)) {
            last_hb = Instant::now();
            let msg = Msg::Hb {
                rank,
                iter: iterations,
            };
            if send_line(writer, &msg, codec).is_err() {
                continue 'outer;
            }
        }

        if job.pace_us > 0 {
            std::thread::sleep(Duration::from_micros(job.pace_us));
        }
    }

    // Final answer. One reconnect attempt if the transport is down — the
    // parent can reconstruct our boundary from cached puts regardless.
    let obs = (job.obs_stride > 0).then(|| {
        let mut snap = Snapshot::new();
        if staleness.count() > 0 {
            snap.merge_histogram(&format!("staleness/rank{rank}"), &staleness);
        }
        if sweep_period.count() > 0 {
            snap.merge_histogram(&format!("sweep_period/rank{rank}"), &sweep_period);
        }
        {
            let robs = shared.recv_obs.lock().unwrap();
            if robs.put_latency.count() > 0 {
                snap.merge_histogram(&format!("put_latency/rank{rank}"), &robs.put_latency);
            }
        }
        snap.set_counter("relaxations", relaxations);
        snap.set_counter("puts_sent", puts_sent);
        snap.set_counter("put_values", put_values);
        if reports > 0 {
            snap.set_counter("term_reports", reports);
        }
        if reconnects > 0 {
            snap.set_counter("reconnects", reconnects);
        }
        if !timeline.is_empty() {
            snap.push_timeline(rank, &timeline);
        }
        snap.to_json()
    });
    let done = Msg::Done(Box::new(DoneMsg {
        rank,
        iters: iterations,
        reports,
        reconnects,
        x: x[..n_owned].to_vec(),
        obs,
    }));
    if send_line(writer, &done, codec).is_err() && !shared.stop.load(Ordering::Acquire) {
        if let Ok((w, c)) = reconnect(rank, parent, shared, t0) {
            *writer = w;
            send_line(writer, &done, c)?;
        }
    }
    Ok(())
}

/// Re-dials with `resume=1`, installs a fresh reader thread, and bumps the
/// connection epoch. The parent replays neighbours' cached boundary puts to
/// the new connection; the caller re-puts ours.
fn reconnect(
    rank: usize,
    parent: &str,
    shared: &Arc<Shared>,
    t0: Instant,
) -> Result<(TcpStream, Codec), String> {
    let deadline = Instant::now() + RECONNECT_BUDGET;
    let mut last_err = String::new();
    while Instant::now() < deadline {
        if shared.stop.load(Ordering::Acquire) {
            return Err(format!("rank {rank}: stopped while reconnecting"));
        }
        match dial_once(parent, rank) {
            Ok((reader, codec)) => {
                let writer = reader.get_ref().try_clone().map_err(|e| e.to_string())?;
                let epoch = shared.conn_epoch.load(Ordering::Acquire) + 1;
                shared.conn_epoch.store(epoch, Ordering::Release);
                spawn_reader(reader, Arc::clone(shared), t0, epoch);
                return Ok((writer, codec));
            }
            Err(e) => {
                last_err = e;
                std::thread::sleep(DIAL_RETRY);
            }
        }
    }
    Err(format!("rank {rank}: reconnect failed: {last_err}"))
}

fn dial_once(parent: &str, rank: usize) -> Result<(BufReader<TcpStream>, Codec), String> {
    let stream = TcpStream::connect(parent).map_err(|e| e.to_string())?;
    stream.set_nodelay(true).ok();
    handshake(stream, rank, true)
}
