//! The aj-net wire protocol: newline-delimited JSON messages over TCP.
//!
//! The framing is the same dependency-free NDJSON the serve layer uses —
//! one JSON object per line, hand-rendered and parsed through
//! [`aj_obs::json`] (the vendored `serde` is an inert stub). Every message
//! carries a `"t"` tag.
//!
//! ## Handshake and codec negotiation
//!
//! A child opens with `hello` carrying the protocol version
//! ([`PROTO_VERSION`]), its rank, and the value codecs it speaks, newest
//! first. The parent answers `welcome` with the negotiated codec (the first
//! entry of [`Codec::PREFERENCE`] both sides speak) or `reject` with a
//! reason. Version mismatches are rejected outright — the protocol is
//! versioned precisely so a future rolling upgrade can add a compatibility
//! shim here instead of corrupting windows silently.
//!
//! ## Value codecs
//!
//! * `hexf64` (preferred): each f64 as its 16-digit lowercase-hex IEEE-754
//!   bit pattern, quoted. Bit-lossless — the fixed point a child hands back
//!   is exactly what its sweeps produced, and cross-validation against the
//!   simulator never chases decimal round-trip noise.
//! * `decf64`: plain JSON numbers (shortest round-trip decimal). Kept as
//!   the negotiation fallback and for eyeball-debugging captures.
//!
//! Scalar floats outside bulk value arrays (norms, ω) are always decimal;
//! they are thresholds and labels, not window contents.

use aj_obs::json::{self, Value};

/// Protocol version spoken by this build. A peer announcing any other
/// version is rejected during the handshake.
pub const PROTO_VERSION: u64 = 1;

/// Bulk f64 encoding negotiated at handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// 16-hex-digit IEEE-754 bit patterns (lossless).
    HexF64,
    /// Plain JSON numbers (shortest round-trip decimal).
    DecF64,
}

impl Codec {
    /// Negotiation preference, best first.
    pub const PREFERENCE: &'static [Codec] = &[Codec::HexF64, Codec::DecF64];

    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Codec::HexF64 => "hexf64",
            Codec::DecF64 => "decf64",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Codec> {
        match s {
            "hexf64" => Some(Codec::HexF64),
            "decf64" => Some(Codec::DecF64),
            _ => None,
        }
    }

    /// Picks the best codec offered by a peer, in our preference order.
    pub fn negotiate(offered: &[String]) -> Option<Codec> {
        Codec::PREFERENCE
            .iter()
            .copied()
            .find(|c| offered.iter().any(|o| o == c.name()))
    }
}

/// The relaxation method a child runs, with every parameter already
/// resolved by the parent (`omega=auto` never runs Lanczos in a child).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodMsg {
    /// `jacobi` | `richardson1` | `richardson2` | `rwr`.
    pub name: String,
    /// Relaxation weight (richardson1/2).
    pub omega: f64,
    /// Momentum coefficient (richardson2).
    pub beta: f64,
    /// Row fraction per sweep (rwr).
    pub fraction: f64,
    /// Selection-stream base seed (rwr).
    pub seed: u64,
}

/// Everything a child needs to iterate: its subdomain in local indexing
/// plus the communication schedule and solver knobs. Shipping the local
/// system over the wire (instead of a matrix selector) keeps children free
/// of problem assembly and guarantees parent and children agree on the
/// partition bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMsg {
    /// Owned unknowns.
    pub n_owned: usize,
    /// Ghost-layer width.
    pub n_ghost: usize,
    /// Local CSR row pointers (`n_owned + 1` entries).
    pub indptr: Vec<u64>,
    /// Local CSR column indices (owned `0..n_owned`, then ghosts).
    pub cols: Vec<u64>,
    /// Local CSR values.
    pub vals: Vec<f64>,
    /// Local right-hand side (`n_owned`).
    pub b: Vec<f64>,
    /// Initial iterate, owned then ghost (`n_owned + n_ghost`).
    pub x: Vec<f64>,
    /// Per out-neighbour boundary: `(to, local owned indices to send)`.
    pub sends: Vec<(usize, Vec<usize>)>,
    /// Per in-neighbour ghost map: `(from, ghost slots written, in the
    /// sender's send order)`.
    pub recvs: Vec<(usize, Vec<usize>)>,
    /// Resolved relaxation method.
    pub method: MethodMsg,
    /// Storage format name (`csr` | `sellc` | `rcm-blocked`).
    pub format: String,
    /// SELL lane count (when `format == "sellc"`).
    pub sell_c: usize,
    /// Relaxation weight for the plain-Jacobi arm.
    pub omega: f64,
    /// Workload seed (rwr streams).
    pub seed: u64,
    /// Per-rank sweep cap.
    pub max_iterations: u64,
    /// Sweeps between residual reports to the root.
    pub check_interval: u64,
    /// Sleep per sweep (µs) pacing compute against put latency so the
    /// staleness regime matches the simulator's cost model.
    pub pace_us: u64,
    /// Heartbeat cadence (ms).
    pub hb_ms: u64,
    /// Obs stride: 0 = off, 1 = full, N = sampled 1-in-N.
    pub obs_stride: u64,
}

/// A child's final answer: its owned block of the iterate plus counters and
/// an optional [`aj_obs::Snapshot`] JSON document for the parent to merge.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneMsg {
    /// Sender rank.
    pub rank: usize,
    /// Sweeps performed.
    pub iters: u64,
    /// Residual reports sent.
    pub reports: u64,
    /// Times the child re-dialed the parent.
    pub reconnects: u64,
    /// Final owned values (`n_owned`, in owned order).
    pub x: Vec<f64>,
    /// Serialized obs snapshot, when recording was on.
    pub obs: Option<String>,
}

/// One protocol message (the `"t"` tag on the wire).
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Child → parent opening: version, rank, codecs (best first),
    /// `resume` on a reconnect after a broken transport.
    Hello {
        /// Announcing rank.
        rank: usize,
        /// Protocol version.
        proto: u64,
        /// Codec names the child speaks, best first.
        codecs: Vec<String>,
        /// True on reconnect (state kept; no new `job`/`start`).
        resume: bool,
    },
    /// Parent → child handshake acceptance.
    Welcome {
        /// Protocol version.
        proto: u64,
        /// Negotiated codec name.
        codec: String,
        /// Total rank count.
        ranks: usize,
    },
    /// Parent → child handshake refusal (version/codec/rank problems).
    Reject {
        /// Human-readable reason.
        error: String,
    },
    /// Parent → child problem shipment (once, after the first `welcome`).
    Job(Box<JobMsg>),
    /// Parent → all children: clocks start now; begin sweeping.
    Start,
    /// One-sided boundary put, routed through the parent. `sent_us` is the
    /// sender's µs-since-start stamp — the receiver's staleness-at-use and
    /// put-latency measurements both derive from it, mirroring the
    /// simulator's generation ticks.
    Put {
        /// Sending rank.
        from: usize,
        /// Window-owning rank.
        to: usize,
        /// Sender clock at send (µs since `start`).
        sent_us: u64,
        /// Boundary values, in the link's agreed order.
        vals: Vec<f64>,
    },
    /// Child → parent: owned-residual L1 norm for termination detection.
    Report {
        /// Reporting rank.
        rank: usize,
        /// `Σ |b_i − (Ax)_i|` over owned rows.
        norm: f64,
        /// Sweep count at the report.
        iter: u64,
    },
    /// Child → parent liveness beacon.
    Hb {
        /// Beating rank.
        rank: usize,
        /// Sweep count.
        iter: u64,
    },
    /// Parent → children: detection fired (or the run is being torn down);
    /// finish the in-flight sweep and send `done`.
    Stop,
    /// Child → parent final answer.
    Done(Box<DoneMsg>),
}

fn push_f64(out: &mut String, v: f64) {
    // Non-finite norms (a diverging run) must stay parseable; saturate
    // instead of emitting JSON null.
    if v.is_finite() {
        json::write_f64(out, v);
    } else if v > 0.0 {
        out.push_str("1e308");
    } else {
        out.push_str("-1e308");
    }
}

fn push_f64_arr(out: &mut String, vals: &[f64], codec: Codec) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match codec {
            Codec::HexF64 => {
                out.push('"');
                out.push_str(&format!("{:016x}", v.to_bits()));
                out.push('"');
            }
            Codec::DecF64 => push_f64(out, *v),
        }
    }
    out.push(']');
}

fn push_u64_arr(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_links(out: &mut String, links: &[(usize, Vec<usize>)]) {
    out.push('[');
    for (i, (peer, idxs)) in links.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{peer},"));
        let as_u64: Vec<u64> = idxs.iter().map(|&v| v as u64).collect();
        push_u64_arr(out, &as_u64);
        out.push(']');
    }
    out.push(']');
}

/// Renders one message as a single JSON line (no trailing newline). Bulk
/// f64 arrays use `codec`; everything else is codec-independent.
pub fn render(msg: &Msg, codec: Codec) -> String {
    let mut o = String::new();
    match msg {
        Msg::Hello {
            rank,
            proto,
            codecs,
            resume,
        } => {
            o.push_str(&format!(
                "{{\"t\":\"hello\",\"proto\":{proto},\"rank\":{rank},\"resume\":{},\"codecs\":[",
                u64::from(*resume)
            ));
            for (i, c) in codecs.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                json::write_escaped(&mut o, c);
            }
            o.push_str("]}");
        }
        Msg::Welcome {
            proto,
            codec,
            ranks,
        } => {
            o.push_str(&format!("{{\"t\":\"welcome\",\"proto\":{proto},\"codec\":"));
            json::write_escaped(&mut o, codec);
            o.push_str(&format!(",\"ranks\":{ranks}}}"));
        }
        Msg::Reject { error } => {
            o.push_str("{\"t\":\"reject\",\"error\":");
            json::write_escaped(&mut o, error);
            o.push('}');
        }
        Msg::Job(j) => {
            o.push_str(&format!(
                "{{\"t\":\"job\",\"n_owned\":{},\"n_ghost\":{},",
                j.n_owned, j.n_ghost
            ));
            o.push_str("\"indptr\":");
            push_u64_arr(&mut o, &j.indptr);
            o.push_str(",\"cols\":");
            push_u64_arr(&mut o, &j.cols);
            o.push_str(",\"vals\":");
            push_f64_arr(&mut o, &j.vals, codec);
            o.push_str(",\"b\":");
            push_f64_arr(&mut o, &j.b, codec);
            o.push_str(",\"x\":");
            push_f64_arr(&mut o, &j.x, codec);
            o.push_str(",\"sends\":");
            push_links(&mut o, &j.sends);
            o.push_str(",\"recvs\":");
            push_links(&mut o, &j.recvs);
            o.push_str(",\"method\":{\"name\":");
            json::write_escaped(&mut o, &j.method.name);
            o.push_str(",\"omega\":");
            push_f64(&mut o, j.method.omega);
            o.push_str(",\"beta\":");
            push_f64(&mut o, j.method.beta);
            o.push_str(",\"fraction\":");
            push_f64(&mut o, j.method.fraction);
            o.push_str(&format!(",\"seed\":{}}}", j.method.seed));
            o.push_str(",\"format\":");
            json::write_escaped(&mut o, &j.format);
            o.push_str(&format!(",\"sell_c\":{},\"omega\":", j.sell_c));
            push_f64(&mut o, j.omega);
            o.push_str(&format!(
                ",\"seed\":{},\"max_iterations\":{},\"check_interval\":{},\
                 \"pace_us\":{},\"hb_ms\":{},\"obs_stride\":{}}}",
                j.seed, j.max_iterations, j.check_interval, j.pace_us, j.hb_ms, j.obs_stride
            ));
        }
        Msg::Start => o.push_str("{\"t\":\"start\"}"),
        Msg::Put {
            from,
            to,
            sent_us,
            vals,
        } => {
            o.push_str(&format!(
                "{{\"t\":\"put\",\"from\":{from},\"to\":{to},\"sent_us\":{sent_us},\"vals\":"
            ));
            push_f64_arr(&mut o, vals, codec);
            o.push('}');
        }
        Msg::Report { rank, norm, iter } => {
            o.push_str(&format!(
                "{{\"t\":\"report\",\"rank\":{rank},\"iter\":{iter},\"norm\":"
            ));
            push_f64(&mut o, *norm);
            o.push('}');
        }
        Msg::Hb { rank, iter } => {
            o.push_str(&format!("{{\"t\":\"hb\",\"rank\":{rank},\"iter\":{iter}}}"));
        }
        Msg::Stop => o.push_str("{\"t\":\"stop\"}"),
        Msg::Done(d) => {
            o.push_str(&format!(
                "{{\"t\":\"done\",\"rank\":{},\"iters\":{},\"reports\":{},\"reconnects\":{},\"x\":",
                d.rank, d.iters, d.reports, d.reconnects
            ));
            push_f64_arr(&mut o, &d.x, codec);
            match &d.obs {
                Some(snap) => {
                    o.push_str(",\"obs\":");
                    json::write_escaped(&mut o, snap);
                    o.push('}');
                }
                None => o.push_str(",\"obs\":null}"),
            }
        }
    }
    o
}

fn want<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    want(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not a non-negative integer"))
}

fn get_usize(v: &Value, key: &str) -> Result<usize, String> {
    Ok(get_u64(v, key)? as usize)
}

fn get_f64(v: &Value, key: &str) -> Result<f64, String> {
    want(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    want(v, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))
}

/// Decodes one f64 in either codec (hex string or number).
fn f64_elem(e: &Value) -> Result<f64, String> {
    if let Some(s) = e.as_str() {
        return u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("bad hexf64 value '{s}'"));
    }
    e.as_f64().ok_or_else(|| "bad f64 element".to_string())
}

fn get_f64_arr(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    want(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field '{key}' is not an array"))?
        .iter()
        .map(f64_elem)
        .collect()
}

fn get_u64_arr(v: &Value, key: &str) -> Result<Vec<u64>, String> {
    want(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field '{key}' is not an array"))?
        .iter()
        .map(|e| e.as_u64().ok_or_else(|| "bad u64 element".to_string()))
        .collect()
}

fn get_links(v: &Value, key: &str) -> Result<Vec<(usize, Vec<usize>)>, String> {
    want(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field '{key}' is not an array"))?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().ok_or("bad link entry")?;
            if pair.len() != 2 {
                return Err("bad link entry".to_string());
            }
            let peer = pair[0].as_u64().ok_or("bad link peer")? as usize;
            let idxs = pair[1]
                .as_arr()
                .ok_or("bad link index list")?
                .iter()
                .map(|e| {
                    e.as_u64()
                        .map(|u| u as usize)
                        .ok_or_else(|| "bad link index".to_string())
                })
                .collect::<Result<Vec<usize>, String>>()?;
            Ok((peer, idxs))
        })
        .collect()
}

/// Parses one wire line into a [`Msg`]. Accepts both codecs regardless of
/// what was negotiated (a resumed connection may replay lines rendered for
/// the other side of a renegotiation).
pub fn parse(line: &str) -> Result<Msg, String> {
    let v = json::parse(line.trim())?;
    let t = get_str(&v, "t")?;
    match t {
        "hello" => Ok(Msg::Hello {
            rank: get_usize(&v, "rank")?,
            proto: get_u64(&v, "proto")?,
            resume: get_u64(&v, "resume")? != 0,
            codecs: want(&v, "codecs")?
                .as_arr()
                .ok_or("field 'codecs' is not an array")?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "bad codec".to_string())
                })
                .collect::<Result<Vec<String>, String>>()?,
        }),
        "welcome" => Ok(Msg::Welcome {
            proto: get_u64(&v, "proto")?,
            codec: get_str(&v, "codec")?.to_string(),
            ranks: get_usize(&v, "ranks")?,
        }),
        "reject" => Ok(Msg::Reject {
            error: get_str(&v, "error")?.to_string(),
        }),
        "job" => Ok(Msg::Job(Box::new(JobMsg {
            n_owned: get_usize(&v, "n_owned")?,
            n_ghost: get_usize(&v, "n_ghost")?,
            indptr: get_u64_arr(&v, "indptr")?,
            cols: get_u64_arr(&v, "cols")?,
            vals: get_f64_arr(&v, "vals")?,
            b: get_f64_arr(&v, "b")?,
            x: get_f64_arr(&v, "x")?,
            sends: get_links(&v, "sends")?,
            recvs: get_links(&v, "recvs")?,
            method: {
                let m = want(&v, "method")?;
                MethodMsg {
                    name: get_str(m, "name")?.to_string(),
                    omega: get_f64(m, "omega")?,
                    beta: get_f64(m, "beta")?,
                    fraction: get_f64(m, "fraction")?,
                    seed: get_u64(m, "seed")?,
                }
            },
            format: get_str(&v, "format")?.to_string(),
            sell_c: get_usize(&v, "sell_c")?,
            omega: get_f64(&v, "omega")?,
            seed: get_u64(&v, "seed")?,
            max_iterations: get_u64(&v, "max_iterations")?,
            check_interval: get_u64(&v, "check_interval")?,
            pace_us: get_u64(&v, "pace_us")?,
            hb_ms: get_u64(&v, "hb_ms")?,
            obs_stride: get_u64(&v, "obs_stride")?,
        }))),
        "start" => Ok(Msg::Start),
        "put" => Ok(Msg::Put {
            from: get_usize(&v, "from")?,
            to: get_usize(&v, "to")?,
            sent_us: get_u64(&v, "sent_us")?,
            vals: get_f64_arr(&v, "vals")?,
        }),
        "report" => Ok(Msg::Report {
            rank: get_usize(&v, "rank")?,
            norm: get_f64(&v, "norm")?,
            iter: get_u64(&v, "iter")?,
        }),
        "hb" => Ok(Msg::Hb {
            rank: get_usize(&v, "rank")?,
            iter: get_u64(&v, "iter")?,
        }),
        "stop" => Ok(Msg::Stop),
        "done" => Ok(Msg::Done(Box::new(DoneMsg {
            rank: get_usize(&v, "rank")?,
            iters: get_u64(&v, "iters")?,
            reports: get_u64(&v, "reports")?,
            reconnects: get_u64(&v, "reconnects")?,
            x: get_f64_arr(&v, "x")?,
            obs: match want(&v, "obs")? {
                Value::Null => None,
                other => Some(
                    other
                        .as_str()
                        .ok_or("field 'obs' is not a string or null")?
                        .to_string(),
                ),
            },
        }))),
        other => Err(format!("unknown message tag '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Msg, codec: Codec) {
        let line = render(msg, codec);
        assert!(!line.contains('\n'), "one line per message: {line}");
        let back = parse(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(&back, msg, "codec {codec:?}");
    }

    fn sample_job() -> Msg {
        Msg::Job(Box::new(JobMsg {
            n_owned: 3,
            n_ghost: 2,
            indptr: vec![0, 2, 4, 6],
            cols: vec![0, 3, 1, 4, 2, 0],
            vals: vec![1.0, -0.25, 1.0, -0.25, 1.0, -0.25],
            b: vec![0.5, -0.5, 0.25],
            x: vec![0.0, 0.1, 0.2, 0.3, 0.4],
            sends: vec![(1, vec![0, 2])],
            recvs: vec![(1, vec![0, 1])],
            method: MethodMsg {
                name: "richardson2".into(),
                omega: 0.9,
                beta: 0.25,
                fraction: 0.0,
                seed: 7,
            },
            format: "sellc".into(),
            sell_c: 8,
            omega: 1.0,
            seed: 2018,
            max_iterations: 10_000,
            check_interval: 5,
            pace_us: 150,
            hb_ms: 50,
            obs_stride: 1,
        }))
    }

    #[test]
    fn every_message_roundtrips_in_both_codecs() {
        let msgs = [
            Msg::Hello {
                rank: 3,
                proto: PROTO_VERSION,
                codecs: vec!["hexf64".into(), "decf64".into()],
                resume: true,
            },
            Msg::Welcome {
                proto: PROTO_VERSION,
                codec: "hexf64".into(),
                ranks: 4,
            },
            Msg::Reject {
                error: "version 2 \"unsupported\"".into(),
            },
            sample_job(),
            Msg::Start,
            Msg::Put {
                from: 1,
                to: 2,
                sent_us: 123_456,
                vals: vec![1.5, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0],
            },
            Msg::Report {
                rank: 2,
                norm: 3.25e-7,
                iter: 40,
            },
            Msg::Hb { rank: 0, iter: 17 },
            Msg::Stop,
            Msg::Done(Box::new(DoneMsg {
                rank: 1,
                iters: 400,
                reports: 80,
                reconnects: 1,
                x: vec![0.1, 0.2, 1.0 / 7.0],
                obs: Some("{\"schema\":\"aj-obs/1\"}".into()),
            })),
            Msg::Done(Box::new(DoneMsg {
                rank: 0,
                iters: 1,
                reports: 0,
                reconnects: 0,
                x: vec![],
                obs: None,
            })),
        ];
        for msg in &msgs {
            for codec in [Codec::HexF64, Codec::DecF64] {
                roundtrip(msg, codec);
            }
        }
    }

    #[test]
    fn hex_codec_is_bit_lossless_for_awkward_values() {
        // 1/3 and the subnormal floor are classic decimal-roundtrip traps;
        // the hex codec must carry them bit-exactly.
        let vals = vec![
            1.0 / 3.0,
            f64::MIN_POSITIVE / 8.0,
            -0.0,
            1e300,
            2.0_f64.powi(-40),
        ];
        let msg = Msg::Put {
            from: 0,
            to: 1,
            sent_us: 9,
            vals: vals.clone(),
        };
        let Msg::Put { vals: back, .. } = parse(&render(&msg, Codec::HexF64)).unwrap() else {
            panic!("wrong tag");
        };
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn negotiation_prefers_hex_and_tolerates_unknowns() {
        let pick = |names: &[&str]| {
            Codec::negotiate(&names.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        assert_eq!(pick(&["hexf64", "decf64"]), Some(Codec::HexF64));
        assert_eq!(pick(&["decf64", "hexf64"]), Some(Codec::HexF64));
        assert_eq!(pick(&["decf64"]), Some(Codec::DecF64));
        assert_eq!(pick(&["zstd-frames", "decf64"]), Some(Codec::DecF64));
        assert_eq!(pick(&["zstd-frames"]), None);
        assert_eq!(pick(&[]), None);
    }

    #[test]
    fn non_finite_norms_stay_parseable() {
        let line = render(
            &Msg::Report {
                rank: 0,
                norm: f64::INFINITY,
                iter: 1,
            },
            Codec::HexF64,
        );
        let Msg::Report { norm, .. } = parse(&line).unwrap() else {
            panic!("wrong tag");
        };
        assert!(norm.is_finite() && norm > 1e307);
    }

    #[test]
    fn garbage_lines_error_without_panicking() {
        for bad in [
            "",
            "not json",
            "{}",
            "{\"t\":\"warp\"}",
            "{\"t\":\"put\",\"from\":0}",
            "{\"t\":\"put\",\"from\":0,\"to\":1,\"sent_us\":2,\"vals\":[\"zz\"]}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
