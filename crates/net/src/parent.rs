//! The coordinator process: spawns one worker per rank, routes one-sided
//! puts, runs termination detection, and assembles the global result.
//!
//! ## Topology
//!
//! Workers dial the parent's loopback listener (star topology). Puts are
//! routed through the parent rather than over an N² mesh — the routing hop
//! is part of the measured put latency, exactly like a switch would be, and
//! it gives the parent a natural place to:
//!
//! * account communication volume ([`aj_dmsim::monitor::CommVolume`]);
//! * cache each link's **last committed boundary** so a resumed connection
//!   can be resynced and a dead rank's final boundary state can still be
//!   stitched into the assembled iterate;
//! * feed residual reports into the *same* [`RootAggregator`] the simulator
//!   uses — the termination protocol, staleness-timeout fix included, is
//!   shared code, not a reimplementation.
//!
//! ## Failure semantics
//!
//! A rank that dies mid-solve simply stops reporting. The aggregator's
//! staleness timeout (here in wall-clock seconds) presumes it dead, the
//! surviving ranks converge to the frozen-subdomain limit (DESIGN.md §10),
//! and detection fires with [`TerminationStats::excluded_ranks`] populated
//! — the parent never hangs on a dead peer. Kill/drop hooks exist so tests
//! can inject exactly these failures deterministically.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use aj_dmsim::monitor::CommVolume;
use aj_dmsim::termination::RootAggregator;
use aj_dmsim::TerminationStats;
use aj_linalg::{CsrMatrix, ResolvedMethod, StorageFormat};
use aj_obs::{ObsConfig, Snapshot};
use aj_partition::CommPlan;

use crate::child;
use crate::wire::{self, Codec, JobMsg, MethodMsg, Msg};

/// How workers are launched.
#[derive(Debug, Clone)]
pub enum ChildMode {
    /// One OS process per rank: `<exe> _rank --parent <addr> --rank <r>`.
    /// `None` resolves the executable from `AJ_NET_CHILD` or falls back to
    /// `std::env::current_exe()` (correct inside the `aj` binary itself).
    Process(Option<PathBuf>),
    /// One thread per rank calling [`child::run`] in-process. Hermetic (no
    /// binary needed) — used by aj-net's own tests. Kill hooks are
    /// unavailable; drop hooks work.
    Thread,
}

/// Deterministic failure injection for tests (wall-clock, ms after start).
#[derive(Debug, Clone, Default)]
pub struct NetHooks {
    /// `(rank, at_ms)`: SIGKILL the rank's process (Process mode only).
    pub kills: Vec<(usize, u64)>,
    /// `(rank, at_ms)`: shut down the rank's socket, forcing a
    /// reconnect-and-resync.
    pub drops: Vec<(usize, u64)>,
}

/// Configuration of a multi-process run.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of worker ranks.
    pub ranks: usize,
    /// Relative residual tolerance (`‖r‖₁ < tol·‖b‖₁`).
    pub tol: f64,
    /// Per-rank sweep cap (safety net when detection never fires).
    pub max_iterations: u64,
    /// Relaxation weight for the plain-Jacobi arm.
    pub omega: f64,
    /// Resolved relaxation method (resolve `omega=auto` before this point).
    pub method: ResolvedMethod,
    /// Sweep-kernel storage format.
    pub format: StorageFormat,
    /// Workload seed (randomized method streams).
    pub seed: u64,
    /// Observability recording.
    pub obs: ObsConfig,
    /// Local sweeps between residual reports.
    pub check_interval: u64,
    /// Consecutive below-tolerance rounds required before stopping.
    pub confirmations: u32,
    /// Detection fires at `aggregate < safety_factor × tol`.
    pub safety_factor: f64,
    /// Wall-clock seconds without a report before a rank is presumed dead
    /// (`f64::INFINITY` = never).
    pub staleness_timeout: f64,
    /// Per-sweep pacing sleep in the children (µs); keeps the
    /// staleness-to-sweep-period ratio in the simulator's regime.
    pub pace_us: u64,
    /// Child heartbeat cadence (ms).
    pub hb_ms: u64,
    /// Hard wall-clock budget for the whole run.
    pub deadline: Duration,
    /// Worker launch mode.
    pub mode: ChildMode,
    /// Test-only failure injection.
    pub hooks: NetHooks,
}

impl NetConfig {
    /// Defaults for `ranks` workers: Jacobi over CSR, tol 1e-6, paced to
    /// the simulator's staleness regime, staleness timeout off.
    pub fn new(ranks: usize) -> Self {
        NetConfig {
            ranks,
            tol: 1e-6,
            max_iterations: 200_000,
            omega: 1.0,
            method: ResolvedMethod::Jacobi,
            format: StorageFormat::Csr,
            seed: 0,
            obs: ObsConfig::off(),
            check_interval: 5,
            confirmations: 1,
            safety_factor: 0.5,
            staleness_timeout: f64::INFINITY,
            pace_us: 150,
            hb_ms: 50,
            deadline: Duration::from_secs(120),
            mode: ChildMode::Process(None),
            hooks: NetHooks::default(),
        }
    }
}

/// Result of a multi-process run.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// Assembled global iterate (dead ranks contribute their last committed
    /// boundary over the initial interior).
    pub x: Vec<f64>,
    /// `(wall seconds, aggregate relative residual)` at each complete
    /// reporting round seen by the root.
    pub history: Vec<(f64, f64)>,
    /// Total sweeps across ranks (as self-reported in `done`).
    pub iterations: u64,
    /// Puts routed through the parent.
    pub comm: CommVolume,
    /// Termination-protocol observations (wall-clock seconds).
    pub termination: TerminationStats,
    /// Merged observability snapshot (µs units), when recording was on.
    pub obs: Option<Snapshot>,
    /// Wall-clock duration of the solve phase.
    pub wall_secs: f64,
    /// Total child reconnects.
    pub reconnects: u64,
}

enum Event {
    Joined { rank: usize, resume: bool },
    Wire { msg: Msg },
    Down { rank: usize },
}

struct WriterSlot {
    stream: TcpStream,
    codec: Codec,
}

type Writers = Arc<Mutex<HashMap<usize, WriterSlot>>>;

fn send_to(writers: &Writers, rank: usize, msg: &Msg) -> bool {
    let guard = writers.lock().unwrap();
    let Some(slot) = guard.get(&rank) else {
        return false;
    };
    let mut line = wire::render(msg, slot.codec);
    line.push('\n');
    (&slot.stream).write_all(line.as_bytes()).is_ok()
}

fn broadcast(writers: &Writers, ranks: usize, msg: &Msg) -> u64 {
    (0..ranks)
        .map(|r| u64::from(send_to(writers, r, msg)))
        .sum()
}

/// Builds rank `p`'s job message from the global problem and plan.
fn build_job(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    plan: &CommPlan,
    p: usize,
    cfg: &NetConfig,
) -> JobMsg {
    let sp = plan.plan(p);
    let ls = aj_partition::LocalSystem::build(a, sp);
    let local_owned = |g: usize| sp.owned.binary_search(&g).expect("send index not owned");
    let ghost_slot = |g: usize| sp.ghosts.binary_search(&g).expect("recv index not a ghost");
    let method = match cfg.method {
        ResolvedMethod::Jacobi => MethodMsg {
            name: "jacobi".into(),
            omega: 0.0,
            beta: 0.0,
            fraction: 0.0,
            seed: 0,
        },
        ResolvedMethod::Richardson1 { omega } => MethodMsg {
            name: "richardson1".into(),
            omega,
            beta: 0.0,
            fraction: 0.0,
            seed: 0,
        },
        ResolvedMethod::Richardson2 { omega, beta } => MethodMsg {
            name: "richardson2".into(),
            omega,
            beta,
            fraction: 0.0,
            seed: 0,
        },
        ResolvedMethod::RandomizedResidual { fraction, seed } => MethodMsg {
            name: "rwr".into(),
            omega: 0.0,
            beta: 0.0,
            fraction,
            seed,
        },
    };
    JobMsg {
        n_owned: ls.n_owned(),
        n_ghost: ls.n_ghost(),
        indptr: ls.matrix.indptr().iter().map(|&v| v as u64).collect(),
        cols: ls.matrix.indices().iter().map(|&v| v as u64).collect(),
        vals: ls.matrix.values().to_vec(),
        b: sp.owned.iter().map(|&g| b[g]).collect(),
        x: sp
            .owned
            .iter()
            .chain(sp.ghosts.iter())
            .map(|&g| x0[g])
            .collect(),
        sends: sp
            .send_to
            .iter()
            .map(|(q, globals)| (*q, globals.iter().map(|&g| local_owned(g)).collect()))
            .collect(),
        recvs: sp
            .recv_from
            .iter()
            .map(|(q, globals)| (*q, globals.iter().map(|&g| ghost_slot(g)).collect()))
            .collect(),
        method,
        format: cfg.format.name().to_string(),
        sell_c: match cfg.format {
            StorageFormat::SellC { c } => c,
            _ => 0,
        },
        omega: cfg.omega,
        seed: cfg.seed,
        max_iterations: cfg.max_iterations,
        check_interval: cfg.check_interval.max(1),
        pace_us: cfg.pace_us,
        hb_ms: cfg.hb_ms,
        obs_stride: cfg.obs.stride(),
    }
}

/// Per-connection handler: handshake, registration, then the read loop
/// that turns wire lines into coordinator events.
fn handle_conn(
    stream: TcpStream,
    ranks: usize,
    jobs: Arc<Vec<JobMsg>>,
    writers: Writers,
    tx: SyncSender<Event>,
) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).unwrap_or(0) == 0 {
        return;
    }
    let reject = |why: String| {
        let mut out = wire::render(&Msg::Reject { error: why }, Codec::DecF64);
        out.push('\n');
        let _ = (&stream).write_all(out.as_bytes());
    };
    let (rank, resume, codec) = match wire::parse(&line) {
        Ok(Msg::Hello {
            rank,
            proto,
            codecs,
            resume,
        }) => {
            if proto != wire::PROTO_VERSION {
                return reject(format!(
                    "protocol version {proto} unsupported (parent speaks {})",
                    wire::PROTO_VERSION
                ));
            }
            if rank >= ranks {
                return reject(format!("rank {rank} out of range (ranks={ranks})"));
            }
            match Codec::negotiate(&codecs) {
                Some(c) => (rank, resume, c),
                None => return reject(format!("no common codec in {codecs:?}")),
            }
        }
        Ok(_) | Err(_) => return reject("expected hello".into()),
    };
    let welcome = Msg::Welcome {
        proto: wire::PROTO_VERSION,
        codec: codec.name().to_string(),
        ranks,
    };
    let mut out = wire::render(&welcome, codec);
    out.push('\n');
    if !resume {
        // Ship the job in the same flush; `start` comes from the
        // coordinator once every rank is in.
        out.push_str(&wire::render(
            &Msg::Job(Box::new(jobs[rank].clone())),
            codec,
        ));
        out.push('\n');
    }
    if (&stream).write_all(out.as_bytes()).is_err() {
        return;
    }
    stream.set_read_timeout(None).ok();
    writers
        .lock()
        .unwrap()
        .insert(rank, WriterSlot { stream, codec });
    if tx.send(Event::Joined { rank, resume }).is_err() {
        return;
    }
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => {
                let _ = tx.send(Event::Down { rank });
                return;
            }
            Ok(_) => {
                if let Ok(msg) = wire::parse(&line) {
                    if tx.send(Event::Wire { msg }).is_err() {
                        return;
                    }
                }
            }
        }
    }
}

enum ChildHandle {
    Process(std::process::Child),
    Thread(std::thread::JoinHandle<Result<(), String>>),
}

fn spawn_children(addr: &str, cfg: &NetConfig) -> Result<Vec<ChildHandle>, String> {
    match &cfg.mode {
        ChildMode::Process(exe) => {
            let exe: PathBuf = match exe {
                Some(p) => p.clone(),
                None => match std::env::var_os("AJ_NET_CHILD") {
                    Some(p) => PathBuf::from(p),
                    None => std::env::current_exe().map_err(|e| e.to_string())?,
                },
            };
            (0..cfg.ranks)
                .map(|r| {
                    std::process::Command::new(&exe)
                        .arg("_rank")
                        .arg("--parent")
                        .arg(addr)
                        .arg("--rank")
                        .arg(r.to_string())
                        .spawn()
                        .map(ChildHandle::Process)
                        .map_err(|e| format!("spawn rank {r} ({}): {e}", exe.display()))
                })
                .collect()
        }
        ChildMode::Thread => {
            if !cfg.hooks.kills.is_empty() {
                return Err("kill hooks require ChildMode::Process".into());
            }
            Ok((0..cfg.ranks)
                .map(|r| {
                    let addr = addr.to_string();
                    ChildHandle::Thread(std::thread::spawn(move || child::run(&addr, r)))
                })
                .collect())
        }
    }
}

/// Runs the multi-process solve. `plan` must have `cfg.ranks` parts.
///
/// # Errors
/// Fails when workers cannot be spawned or joined, when the wall-clock
/// deadline expires, or on listener setup problems. A *converged-or-not*
/// outcome (including dead-rank exclusion) is `Ok` — convergence is judged
/// by the caller from the assembled iterate, as with the simulator.
pub fn run_net(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    plan: &CommPlan,
    cfg: &NetConfig,
) -> Result<NetOutcome, String> {
    let ranks = cfg.ranks;
    assert_eq!(plan.nparts(), ranks, "plan/ranks mismatch");
    assert_eq!(a.nrows(), b.len(), "b length mismatch");
    assert_eq!(a.nrows(), x0.len(), "x0 length mismatch");

    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;

    let jobs = Arc::new(
        (0..ranks)
            .map(|p| build_job(a, b, x0, plan, p, cfg))
            .collect::<Vec<_>>(),
    );
    let writers: Writers = Arc::new(Mutex::new(HashMap::new()));
    // Bounded: when the coordinator falls behind, handler threads block,
    // their sockets stop being drained, and the kernel's TCP buffers push
    // back on the children's put writes — the same flow control a real
    // interconnect applies to a rank that sweeps faster than the network
    // can carry. Queue depth must NOT become ghost staleness, though: the
    // coordinator drains in batches and coalesces superseded puts (below),
    // so a full queue costs one batch of routing work, not 4096 forwards.
    const EVENT_QUEUE_CAP: usize = 4096;
    let (tx, rx) = mpsc::sync_channel::<Event>(EVENT_QUEUE_CAP);

    // Accept loop: polls until told to stop, handing each connection to a
    // handler thread (initial joins and reconnects look identical here).
    let accept_stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let accept_stop = Arc::clone(&accept_stop);
        let jobs = Arc::clone(&jobs);
        let writers = Arc::clone(&writers);
        let tx = tx.clone();
        std::thread::spawn(move || {
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let jobs = Arc::clone(&jobs);
                        let writers = Arc::clone(&writers);
                        let tx = tx.clone();
                        std::thread::spawn(move || handle_conn(stream, ranks, jobs, writers, tx));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })
    };

    let mut children = spawn_children(&addr, cfg)?;
    let t_spawn = Instant::now();

    let norm_b = aj_linalg::vecops::norm(b, aj_linalg::vecops::Norm::L1);
    let mut agg = RootAggregator::new(
        ranks,
        cfg.tol * cfg.safety_factor,
        norm_b,
        cfg.confirmations,
        cfg.staleness_timeout,
    );
    let mut term = TerminationStats::default();
    let mut comm = CommVolume::default();
    let mut history: Vec<(f64, f64)> = Vec::new();
    let mut latest: Vec<Option<f64>> = vec![None; ranks];
    // Last committed boundary per directed link, for resync replay and
    // dead-rank assembly.
    let mut link_cache: HashMap<(usize, usize), (u64, Vec<f64>)> = HashMap::new();
    let mut joined: HashSet<usize> = HashSet::new();
    let mut down: HashSet<usize> = HashSet::new();
    let mut dones: HashMap<usize, wire::DoneMsg> = HashMap::new();
    let mut reconnect_total: u64 = 0;
    let mut started_at: Option<Instant> = None;
    let mut stop_broadcast_at: Option<Instant> = None;
    let mut kills = cfg.hooks.kills.clone();
    let mut drops = cfg.hooks.drops.clone();
    let mut failure: Option<String> = None;
    let mut coalesced: u64 = 0;
    let mut batch: Vec<Event> = Vec::with_capacity(EVENT_QUEUE_CAP);
    let mut newest_put: HashMap<(usize, usize), usize> = HashMap::new();

    loop {
        let now = Instant::now();
        if now.duration_since(t_spawn) > cfg.deadline {
            failure = Some(format!(
                "net backend deadline ({:?}) expired with {}/{} ranks done",
                cfg.deadline,
                dones.len(),
                ranks
            ));
            break;
        }
        if started_at.is_none() && now.duration_since(t_spawn) > Duration::from_secs(30) {
            failure = Some(format!(
                "only {}/{} ranks joined within 30s",
                joined.len(),
                ranks
            ));
            break;
        }
        // Fire due failure hooks (measured from start; before start they
        // wait).
        if let Some(t0) = started_at {
            let ms = now.duration_since(t0).as_millis() as u64;
            kills.retain(|&(r, at)| {
                if ms < at {
                    return true;
                }
                if let Some(ChildHandle::Process(child)) = children.get_mut(r) {
                    let _ = child.kill();
                }
                false
            });
            drops.retain(|&(r, at)| {
                if ms < at {
                    return true;
                }
                if let Some(slot) = writers.lock().unwrap().remove(&r) {
                    let _ = slot.stream.shutdown(Shutdown::Both);
                }
                false
            });
        }
        // Exit: every rank accounted for (done, or stop sent and the rank's
        // transport is gone — a killed rank never sends `done`).
        if dones.len() == ranks {
            break;
        }
        if let Some(t_stop) = stop_broadcast_at {
            let all_accounted = (0..ranks).all(|r| dones.contains_key(&r) || down.contains(&r));
            if all_accounted || now.duration_since(t_stop) > Duration::from_secs(5) {
                break;
            }
        }

        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(e) => e,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        // Drain everything queued behind the first event and coalesce puts
        // per directed link: with element-atomic last-writer-wins windows, a
        // put that a newer put on the same link has already superseded would
        // never be read by the receiver, so forwarding it only adds queueing
        // delay for every event behind it. Without this, a backed-up queue
        // turns directly into ghost staleness (queue depth × per-forward
        // cost) and the backend silently leaves the modeled regime where a
        // ghost is a fraction of a sweep old — stale-enough ghosts let every
        // rank converge locally against frozen boundaries and trick the
        // termination protocol into a false global decision.
        batch.clear();
        batch.push(first);
        while batch.len() < EVENT_QUEUE_CAP {
            match rx.try_recv() {
                Ok(e) => batch.push(e),
                Err(_) => break,
            }
        }
        newest_put.clear();
        for (i, e) in batch.iter().enumerate() {
            if let Event::Wire {
                msg: Msg::Put { from, to, .. },
            } = e
            {
                newest_put.insert((*from, *to), i);
            }
        }
        for (i, event) in batch.drain(..).enumerate() {
            match event {
                Event::Joined { rank, resume } => {
                    joined.insert(rank);
                    down.remove(&rank);
                    if resume {
                        reconnect_total += 1;
                        // Resync the resumed rank's window from each
                        // in-neighbour's last committed boundary.
                        for (&(from, to), (sent_us, vals)) in &link_cache {
                            if to == rank {
                                send_to(
                                    &writers,
                                    rank,
                                    &Msg::Put {
                                        from,
                                        to,
                                        sent_us: *sent_us,
                                        vals: vals.clone(),
                                    },
                                );
                            }
                        }
                        if agg.decided() {
                            send_to(&writers, rank, &Msg::Stop);
                        }
                    } else if joined.len() == ranks && started_at.is_none() {
                        started_at = Some(Instant::now());
                        broadcast(&writers, ranks, &Msg::Start);
                    }
                }
                Event::Wire { msg } => match msg {
                    Msg::Put {
                        from,
                        to,
                        sent_us,
                        vals,
                    } => {
                        comm.puts += 1;
                        comm.values += vals.len() as u64;
                        if newest_put.get(&(from, to)) == Some(&i) {
                            let forwarded = send_to(
                                &writers,
                                to,
                                &Msg::Put {
                                    from,
                                    to,
                                    sent_us,
                                    vals: vals.clone(),
                                },
                            );
                            if !forwarded {
                                // Dead-window semantics: the put vanishes,
                                // exactly like an RMA put to a crashed rank's
                                // exposure epoch.
                                comm.drops += 1;
                            }
                        } else {
                            // Superseded within this batch — overwritten in the
                            // window before any read could see it.
                            coalesced += 1;
                        }
                        link_cache.insert((from, to), (sent_us, vals));
                    }
                    Msg::Report { rank, norm, .. } => {
                        term.reports_sent += 1;
                        latest[rank] = Some(norm);
                        let elapsed = started_at.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
                        if let Some(rel) = agg.ingest(rank, norm, elapsed) {
                            term.detected_at = Some(elapsed);
                            term.detected_residual = Some(rel);
                            term.excluded_ranks = agg.excluded_ranks().to_vec();
                            term.stops_sent = broadcast(&writers, ranks, &Msg::Stop);
                            stop_broadcast_at = Some(Instant::now());
                            history.push((elapsed, rel));
                        } else if rank == 0 && latest.iter().all(Option::is_some) {
                            // Sample history on rank 0's reporting cadence to
                            // keep the curve bounded on long runs.
                            let total: f64 = latest.iter().flatten().sum();
                            history.push((elapsed, total / norm_b));
                        }
                    }
                    Msg::Done(d) => {
                        dones.insert(d.rank, *d);
                    }
                    // Heartbeats are liveness only — the aggregator's staleness
                    // clock is driven by reports, as in the simulator.
                    Msg::Hb { .. } => {}
                    _ => {}
                },
                Event::Down { rank } => {
                    down.insert(rank);
                    writers.lock().unwrap().remove(&rank);
                }
            }
        }
    }
    let wall_secs = started_at.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);

    // Teardown: stop stragglers, reap children, halt the accept loop.
    if stop_broadcast_at.is_none() {
        term.stops_sent = broadcast(&writers, ranks, &Msg::Stop);
    }
    let reap_deadline = Instant::now() + Duration::from_secs(5);
    for (r, child) in children.iter_mut().enumerate() {
        match child {
            ChildHandle::Process(p) => loop {
                match p.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < reap_deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = p.kill();
                        let _ = p.wait();
                        break;
                    }
                }
            },
            ChildHandle::Thread(_) => {
                // Joined below; make sure its transport is dead first so a
                // blocked read wakes.
                if !dones.contains_key(&r) {
                    if let Some(slot) = writers.lock().unwrap().get(&r) {
                        let _ = slot.stream.shutdown(Shutdown::Both);
                    }
                }
            }
        }
    }
    accept_stop.store(true, Ordering::Release);
    for slot in writers.lock().unwrap().values() {
        let _ = slot.stream.shutdown(Shutdown::Both);
    }
    for child in children {
        if let ChildHandle::Thread(h) = child {
            let _ = h.join();
        }
    }
    let _ = accept_thread.join();

    if let Some(err) = failure {
        return Err(err);
    }

    // Assemble the global iterate.
    let mut x = x0.to_vec();
    for (r, d) in &dones {
        let owned = &plan.plan(*r).owned;
        for (l, &g) in owned.iter().enumerate() {
            if let Some(&v) = d.x.get(l) {
                x[g] = v;
            }
        }
    }
    for r in 0..ranks {
        if dones.contains_key(&r) {
            continue;
        }
        // Dead rank: its last committed boundary is still what the
        // neighbours saw — stitch it in from the link cache.
        for (to, globals) in &plan.plan(r).send_to {
            if let Some((_, vals)) = link_cache.get(&(r, *to)) {
                for (&g, &v) in globals.iter().zip(vals.iter()) {
                    x[g] = v;
                }
            }
        }
    }

    // Merge observability: child shards plus parent-side routing totals.
    let obs = cfg.obs.is_on().then(|| {
        let mut snap = Snapshot::new();
        let mut ranks_sorted: Vec<&wire::DoneMsg> = dones.values().collect();
        ranks_sorted.sort_by_key(|d| d.rank);
        for d in ranks_sorted {
            let Some(doc) = &d.obs else { continue };
            let Ok(child_snap) = Snapshot::from_json(doc) else {
                continue;
            };
            for (name, h) in &child_snap.histograms {
                snap.merge_histogram(name, h);
            }
            for (name, v) in &child_snap.counters {
                snap.add_counter(name, *v);
            }
            for tl in &child_snap.timelines {
                snap.timelines.push(tl.clone());
            }
        }
        snap.timelines.sort_by_key(|t| t.rank);
        snap.set_counter("ranks", ranks as u64);
        snap.set_counter("puts_routed", comm.puts);
        if coalesced > 0 {
            snap.set_counter("puts_coalesced", coalesced);
        }
        if reconnect_total > 0 {
            snap.set_counter("reconnects_seen", reconnect_total);
        }
        snap.set_gauge("wall_time_s", wall_secs);
        snap
    });

    let iterations = dones.values().map(|d| d.iters).sum();
    let reconnects = dones
        .values()
        .map(|d| d.reconnects)
        .sum::<u64>()
        .max(reconnect_total);
    Ok(NetOutcome {
        x,
        history,
        iterations,
        comm,
        termination: term,
        obs,
        wall_secs,
        reconnects,
    })
}
