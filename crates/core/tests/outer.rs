//! Pinned outer-solve experiments: the divergence rescue (the PR's
//! headline), cross-engine conformance of outer histories, multigrid grid
//! independence with an asynchronous smoother, and `format=auto` plan-time
//! selection.

use aj_core::spec::{load_problem, parse_outer};
use aj_core::{solve, Backend, SolveOptions};
use aj_linalg::vecops::Norm;
use aj_linalg::StorageFormat;
use aj_obs::ObsConfig;

const SIM_ASYNC: Backend = Backend::SimShared {
    workers: 8,
    asynchronous: true,
};
const DIST_ASYNC: Backend = Backend::SimDistributed {
    ranks: 4,
    asynchronous: true,
    detect: false,
};

fn outer_opts(selector: &str, tol: f64) -> SolveOptions {
    SolveOptions {
        tol,
        outer: Some(parse_outer(selector).unwrap()),
        ..Default::default()
    }
}

/// The paper's `ρ(G) > 1` Dubcova2 analogue: standalone asynchronous
/// Jacobi *diverges*, yet the very same class of asynchronous relaxation
/// converges to 1e-6 when demoted to a smoother inside a V-cycle or a
/// preconditioner inside FCG — the composition the paper points at.
#[test]
fn divergence_rescue_vcycle_and_fcg() {
    let p = load_problem("suite:Dubcova2:tiny", 2018).unwrap();
    // Standalone async Jacobi blows up (ρ(G) > 1).
    let standalone = solve(
        &p,
        SIM_ASYNC,
        &SolveOptions {
            tol: 1e-6,
            max_iterations: 300,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        !standalone.converged && standalone.final_residual > 1.0,
        "standalone async Jacobi should diverge on the ρ(G) > 1 analogue, got {}",
        standalone.final_residual
    );
    // The same asynchronous engine, same smoother selector, inside both
    // outer families: rescued.
    for selector in [
        "vcycle:smooth=richardson1:omega=auto",
        "fcg:prec=richardson1:omega=auto",
    ] {
        let r = solve(&p, SIM_ASYNC, &outer_opts(selector, 1e-6))
            .unwrap_or_else(|e| panic!("{selector}: {e}"));
        assert!(
            r.converged && r.final_residual < 1e-6,
            "{selector} failed to rescue: residual {} after {} outer iterations",
            r.final_residual,
            r.outer.as_ref().unwrap().iterations
        );
        let outer = r.outer.expect("outer report must surface");
        assert!(outer.inner_sweeps > 0);
        assert_eq!(outer.levels[0], (p.n(), p.a.nnz()));
    }
}

/// Outer residual histories agree across engines: the simulated
/// shared-memory and simulated distributed inner engines (plus the
/// sequential reference) converge the same V-cycle in a comparable number
/// of cycles on the geometric-hierarchy Laplacian.
#[test]
fn cross_engine_conformance_on_outer_histories() {
    let p = load_problem("grid:15x15", 7).unwrap();
    let opts = outer_opts("vcycle", 1e-8);
    let reference = solve(&p, Backend::Jacobi, &opts).unwrap();
    assert!(reference.converged);
    let ref_cycles = reference.outer.as_ref().unwrap().iterations;
    for backend in [SIM_ASYNC, DIST_ASYNC] {
        let r = solve(&p, backend, &opts).unwrap();
        assert!(r.converged, "{}: residual {}", r.backend, r.final_residual);
        let cycles = r.outer.as_ref().unwrap().iterations;
        assert!(
            cycles <= 2 * ref_cycles + 2 && ref_cycles <= 2 * cycles + 2,
            "{}: {cycles} cycles vs reference {ref_cycles}",
            r.backend
        );
        // Histories are per-cycle relative residuals with entry 0 = start.
        assert!((r.history[0].1 - reference.history[0].1).abs() < 1e-12);
    }
}

/// Multigrid's defining property, with the smoothing sweeps running on the
/// asynchronous simulated engine: V-cycle counts stay flat (±2) as the
/// grid refines 31² → 63² → 127², while standalone relaxation degrades
/// with the spectral gap.
#[test]
fn grid_independent_cycle_counts_with_async_smoother() {
    let mut counts = Vec::new();
    for grid in ["grid:31x31", "grid:63x63", "grid:127x127"] {
        let p = load_problem(grid, 11).unwrap();
        let r = solve(&p, SIM_ASYNC, &outer_opts("vcycle", 1e-8))
            .unwrap_or_else(|e| panic!("{grid}: {e}"));
        assert!(r.converged, "{grid}: residual {}", r.final_residual);
        let outer = r.outer.unwrap();
        assert!(outer.levels.len() >= 3, "{grid}: {:?}", outer.levels);
        counts.push(outer.iterations);
    }
    let (lo, hi) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
    assert!(
        hi - lo <= 2,
        "cycle counts not grid-independent: {counts:?}"
    );
}

/// `format=auto` resolves at plan time: identical arithmetic to the format
/// it picks, the choice recorded as an obs counter, and CSR-only backends
/// get CSR instead of an error.
#[test]
fn format_auto_resolves_and_records() {
    let p = load_problem("grid:16x16", 5).unwrap();
    let auto_opts = SolveOptions {
        tol: 1e-6,
        format: StorageFormat::Auto,
        obs: ObsConfig::sampled(8),
        ..Default::default()
    };
    let auto = solve(&p, SIM_ASYNC, &auto_opts).unwrap();
    assert!(auto.converged);
    let snap = auto.metrics.expect("obs snapshot");
    let key = snap
        .counters
        .keys()
        .find(|k| k.starts_with("format_auto_"))
        .expect("auto choice must be recorded");
    // The regular 5-point Laplacian pads well under the threshold, so auto
    // picks the SIMD layout — and the run is bit-identical to asking for
    // that format explicitly.
    assert_eq!(key, "format_auto_sellc:c=8");
    let explicit = solve(
        &p,
        SIM_ASYNC,
        &SolveOptions {
            tol: 1e-6,
            format: StorageFormat::SellC { c: 8 },
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(auto.x, explicit.x);
    // CSR-only backends adapt instead of erroring.
    let seq = solve(
        &p,
        Backend::Jacobi,
        &SolveOptions {
            tol: 1e-6,
            format: StorageFormat::Auto,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(seq.converged);
}

/// Inner staleness attribution: an outer solve with obs on surfaces the
/// merged inner-engine counters/histograms plus the outer totals.
#[test]
fn outer_obs_attributes_inner_work() {
    let p = load_problem("grid:15x15", 7).unwrap();
    let mut opts = outer_opts("vcycle", 1e-8);
    opts.obs = ObsConfig::sampled(4);
    let r = solve(&p, SIM_ASYNC, &opts).unwrap();
    let snap = r.metrics.expect("outer obs snapshot");
    let outer = r.outer.unwrap();
    assert_eq!(
        snap.counters.get("outer_iterations").copied(),
        Some(outer.iterations)
    );
    assert_eq!(
        snap.counters.get("outer_inner_sweeps").copied(),
        Some(outer.inner_sweeps)
    );
    assert!(snap.counters.get("relaxations").copied().unwrap_or(0) > 0);
    assert!(
        !snap.families().is_empty(),
        "inner histograms must merge into the outer snapshot"
    );
}

/// Outer-specific rejections: every incompatible combination errors with a
/// message instead of silently ignoring a knob.
#[test]
fn outer_rejections() {
    let p = load_problem("grid:15x15", 7).unwrap();
    let opts = outer_opts("vcycle", 1e-8);
    for backend in [Backend::GaussSeidel, Backend::ConjugateGradient] {
        assert!(solve(&p, backend, &opts).is_err(), "{backend:?}");
    }
    assert!(solve(
        &p,
        Backend::SimDistributed {
            ranks: 4,
            asynchronous: true,
            detect: true,
        },
        &opts
    )
    .is_err());
    // --method conflicts with --outer (the smoother is in the selector).
    let mut with_method = outer_opts("fcg", 1e-8);
    with_method.method = aj_core::spec::parse_method("richardson1:omega=0.5").unwrap();
    assert!(solve(&p, SIM_ASYNC, &with_method).is_err());
    // A hierarchy without outer=vcycle is a usage error.
    let h = aj_core::Hierarchy::build(&p.a, None).unwrap();
    let plan_no_outer = SolveOptions {
        outer_plan: Some(std::sync::Arc::new(h)),
        ..Default::default()
    };
    assert!(solve(&p, SIM_ASYNC, &plan_no_outer).is_err());
    // A hierarchy built for a different matrix is rejected.
    let other = load_problem("grid:31x31", 7).unwrap();
    let mut wrong = outer_opts("vcycle", 1e-8);
    wrong.outer_plan = Some(std::sync::Arc::new(
        aj_core::Hierarchy::build(&other.a, None).unwrap(),
    ));
    assert!(solve(&p, SIM_ASYNC, &wrong).is_err());
}

/// A precomputed hierarchy (the serve plan-cache path) changes nothing:
/// same outer history as the per-call build.
#[test]
fn precomputed_hierarchy_is_pure_derived_state() {
    let p = load_problem("grid:15x15", 7).unwrap();
    let fresh = solve(&p, SIM_ASYNC, &outer_opts("vcycle", 1e-8)).unwrap();
    let mut cached_opts = outer_opts("vcycle", 1e-8);
    cached_opts.outer_plan = Some(std::sync::Arc::new(
        aj_core::Hierarchy::build(&p.a, None).unwrap(),
    ));
    let cached = solve(&p, SIM_ASYNC, &cached_opts).unwrap();
    assert_eq!(fresh.x, cached.x);
    assert_eq!(fresh.history, cached.history);
}

/// FGMRES on the divergence analogue with the randomized smoother — the
/// third outer family and the `rwr` method exercised end to end.
#[test]
fn fgmres_with_randomized_preconditioner() {
    let p = load_problem("suite:Dubcova2:tiny", 2018).unwrap();
    let r = solve(
        &p,
        SIM_ASYNC,
        &outer_opts("fgmres:prec=richardson1:omega=auto:inner=3", 1e-6),
    )
    .unwrap();
    assert!(r.converged, "residual {}", r.final_residual);
    assert!(p.relative_residual(&r.x, Norm::L1) < 1e-6);
}
