//! String specs shared by every front end.
//!
//! The CLI, the solve service (`aj-serve`), and the load generator all name
//! problems and backends with the same small string grammar; this module is
//! its single home. A *problem spec* is a matrix selector (`fd68`,
//! `suite:ecology2:small`, `grid:64x64`, `mtx:PATH`) plus a seed — also the
//! key of the `aj-serve` plan cache, so equal specs must mean equal
//! assembled [`Problem`]s. A *backend spec* is one of the CLI's backend
//! names plus its worker/rank counts.

use crate::driver::Backend;
use crate::problem::Problem;
use aj_matrices::suite::Scale;

/// Builds a [`Problem`] from a selector string.
///
/// Selectors: the paper's `fd40|fd68|fd272|fd4624` and `fe` matrices,
/// `suite:NAME[:tiny|small|medium]` Table-I analogues, `mtx:PATH` Matrix
/// Market files, and `grid:NXxNY` 2-D FD Laplacians.
pub fn load_problem(selector: &str, seed: u64) -> Result<Problem, String> {
    if let Some(p) = Problem::paper_fd(selector, seed) {
        return Ok(p);
    }
    if selector == "fe" {
        return Ok(Problem::paper_fe(seed));
    }
    if let Some(rest) = selector.strip_prefix("suite:") {
        let mut parts = rest.split(':');
        let name = parts.next().unwrap_or_default();
        let scale = match parts.next() {
            None | Some("small") => Scale::Small,
            Some("tiny") => Scale::Tiny,
            Some("medium") => Scale::Medium,
            Some(other) => return Err(format!("unknown scale: {other}")),
        };
        return Problem::suite(name, scale, seed)
            .ok_or_else(|| format!("unknown suite problem: {name}"));
    }
    if let Some(path) = selector.strip_prefix("mtx:") {
        return Problem::from_matrix_market(std::path::Path::new(path), seed)
            .map_err(|e| format!("loading {path}: {e}"));
    }
    if let Some(dims) = selector.strip_prefix("grid:") {
        let (nx, ny) = dims
            .split_once('x')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .ok_or_else(|| format!("bad grid spec: {dims} (want e.g. grid:64x64)"))?;
        let a = aj_matrices::fd::laplacian_2d(nx, ny);
        return Problem::from_matrix(format!("grid-{nx}x{ny}"), a, seed).map_err(|e| e.to_string());
    }
    Err(format!("unknown matrix selector: {selector} (try --help)"))
}

/// Parses a backend name (`sync`, `gs`, `cg`, `async-threads`, `sim-async`,
/// `sim-sync`, `dist-async`, `dist-sync`) into a [`Backend`], filling in the
/// worker/rank counts the parallel backends need.
pub fn parse_backend(
    name: &str,
    threads: usize,
    ranks: usize,
    detect: bool,
) -> Result<Backend, String> {
    Ok(match name {
        "sync" => Backend::Jacobi,
        "gs" => Backend::GaussSeidel,
        "cg" => Backend::ConjugateGradient,
        "async-threads" => Backend::AsyncThreads { workers: threads },
        "sim-async" => Backend::SimShared {
            workers: threads,
            asynchronous: true,
        },
        "sim-sync" => Backend::SimShared {
            workers: threads,
            asynchronous: false,
        },
        "dist-async" => Backend::SimDistributed {
            ranks,
            asynchronous: true,
            detect,
        },
        "dist-sync" => Backend::SimDistributed {
            ranks,
            asynchronous: false,
            detect: false,
        },
        other => return Err(format!("unknown backend: {other} (try --help)")),
    })
}

/// Checks a backend's worker/rank counts against a problem size (every
/// parallel engine needs `1 ≤ count ≤ n`), returning a message suitable for
/// a CLI error or a service rejection.
pub fn validate_backend(backend: &Backend, n: usize) -> Result<(), String> {
    let check = |what: &str, count: usize| {
        if (1..=n).contains(&count) {
            Ok(())
        } else {
            Err(format!(
                "{what} must be in 1..={n} for this matrix (got {count})"
            ))
        }
    };
    match *backend {
        Backend::AsyncThreads { workers } | Backend::SimShared { workers, .. } => {
            check("workers", workers)
        }
        Backend::SimDistributed { ranks, .. } => check("ranks", ranks),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_resolve() {
        assert_eq!(load_problem("fd68", 1).unwrap().n(), 68);
        assert_eq!(load_problem("fe", 1).unwrap().n(), 3136);
        assert!(load_problem("suite:ecology2:tiny", 1).unwrap().n() > 1000);
        assert_eq!(load_problem("grid:5x7", 1).unwrap().n(), 35);
    }

    #[test]
    fn bad_selectors_error() {
        assert!(load_problem("nope", 1).is_err());
        assert!(load_problem("suite:nope", 1).is_err());
        assert!(load_problem("suite:ecology2:giant", 1).is_err());
        assert!(load_problem("grid:5by7", 1).is_err());
        assert!(load_problem("mtx:/does/not/exist.mtx", 1).is_err());
    }

    #[test]
    fn backends_parse_and_validate() {
        assert_eq!(
            parse_backend("sync", 4, 16, false).unwrap(),
            Backend::Jacobi
        );
        assert_eq!(
            parse_backend("dist-async", 4, 16, true).unwrap(),
            Backend::SimDistributed {
                ranks: 16,
                asynchronous: true,
                detect: true
            }
        );
        assert!(parse_backend("warp-drive", 4, 16, false).is_err());
        let b = parse_backend("dist-async", 4, 16, false).unwrap();
        assert!(validate_backend(&b, 68).is_ok());
        assert!(validate_backend(&b, 8).is_err());
        assert!(validate_backend(&Backend::Jacobi, 1).is_ok());
    }
}
