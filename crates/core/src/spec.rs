//! String specs shared by every front end.
//!
//! The CLI, the solve service (`aj-serve`), and the load generator all name
//! problems and backends with the same small string grammar; this module is
//! its single home. A *problem spec* is a matrix selector (`fd68`,
//! `suite:ecology2:small`, `grid:64x64`, `mtx:PATH`) plus a seed — also the
//! key of the `aj-serve` plan cache, so equal specs must mean equal
//! assembled [`Problem`]s. A *backend spec* is one of the CLI's backend
//! names plus its worker/rank counts.

use crate::driver::Backend;
use crate::problem::Problem;
use aj_linalg::method::{Method, OmegaSpec};
use aj_linalg::StorageFormat;
use aj_matrices::suite::Scale;
use aj_outer::{OuterKind, OuterSpec};

/// Builds a [`Problem`] from a selector string.
///
/// Selectors: the paper's `fd40|fd68|fd272|fd4624` and `fe` matrices,
/// `suite:NAME[:tiny|small|medium]` Table-I analogues, `mtx:PATH` Matrix
/// Market files, and `grid:NXxNY` 2-D FD Laplacians.
pub fn load_problem(selector: &str, seed: u64) -> Result<Problem, String> {
    if let Some(p) = Problem::paper_fd(selector, seed) {
        return Ok(p);
    }
    if selector == "fe" {
        return Ok(Problem::paper_fe(seed));
    }
    if let Some(rest) = selector.strip_prefix("suite:") {
        let mut parts = rest.split(':');
        let name = parts.next().unwrap_or_default();
        let scale = match parts.next() {
            None | Some("small") => Scale::Small,
            Some("tiny") => Scale::Tiny,
            Some("medium") => Scale::Medium,
            Some(other) => {
                return Err(format!(
                    "unknown scale '{other}' in selector '{selector}' (want tiny|small|medium)"
                ))
            }
        };
        if let Some(extra) = parts.next() {
            return Err(format!(
                "trailing part '{extra}' in selector '{selector}' \
                 (want suite:NAME[:tiny|small|medium])"
            ));
        }
        return Problem::suite(name, scale, seed)
            .ok_or_else(|| format!("unknown suite problem '{name}' in selector '{selector}'"));
    }
    if let Some(path) = selector.strip_prefix("mtx:") {
        return Problem::from_matrix_market(std::path::Path::new(path), seed)
            .map_err(|e| format!("loading {path}: {e}"));
    }
    if let Some(dims) = selector.strip_prefix("grid:") {
        let (nx, ny) = dims
            .split_once('x')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .ok_or_else(|| format!("bad grid spec: {dims} (want e.g. grid:64x64)"))?;
        let a = aj_matrices::fd::laplacian_2d(nx, ny);
        return Problem::from_matrix(format!("grid-{nx}x{ny}"), a, seed).map_err(|e| e.to_string());
    }
    Err(format!("unknown matrix selector: {selector} (try --help)"))
}

/// The accepted relaxation-method grammar, quoted in full by every
/// rejection so a user never has to guess which part of the selector was
/// wrong.
pub const METHOD_GRAMMAR: &str = "jacobi | richardson1[:omega=<w>|auto] \
     | richardson2[:omega=<w>|auto][:beta=<b>] | rwr[:fraction=<f>]";

fn method_err(selector: &str, what: &str) -> String {
    format!("bad method selector '{selector}': {what} (grammar: {METHOD_GRAMMAR})")
}

/// Parses a relaxation-method selector (`jacobi`,
/// `richardson1:omega=auto`, `richardson2:omega=auto:beta=0.3`,
/// `rwr:fraction=0.5`, …) into a [`Method`]. A leading `method=` is
/// accepted so full spec fragments can be passed through verbatim.
///
/// Every rejection reports the *full* selector string and the accepted
/// grammar, not just the offending key.
pub fn parse_method(selector: &str) -> Result<Method, String> {
    let spec = selector.strip_prefix("method=").unwrap_or(selector);
    if spec.is_empty() {
        return Err(method_err(selector, "empty method name"));
    }
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default();
    let mut kv: Vec<(&str, &str)> = Vec::new();
    for part in parts {
        let Some((k, v)) = part.split_once('=') else {
            return Err(method_err(
                selector,
                &format!("expected key=value, got '{part}'"),
            ));
        };
        if kv.iter().any(|&(seen, _)| seen == k) {
            return Err(method_err(selector, &format!("duplicate key '{k}'")));
        }
        kv.push((k, v));
    }
    let parse_f64 = |key: &str, v: &str| -> Result<f64, String> {
        v.parse::<f64>()
            .map_err(|_| method_err(selector, &format!("invalid value '{v}' for key '{key}'")))
    };
    let parse_omega = |v: &str| -> Result<OmegaSpec, String> {
        if v == "auto" {
            Ok(OmegaSpec::Auto)
        } else {
            Ok(OmegaSpec::Fixed(parse_f64("omega", v)?))
        }
    };
    let reject_unknown = |allowed: &[&str]| -> Result<(), String> {
        for &(k, _) in &kv {
            if !allowed.contains(&k) {
                return Err(method_err(
                    selector,
                    &format!(
                        "unknown key '{k}' for method '{name}' (allowed: {})",
                        if allowed.is_empty() {
                            "none".to_string()
                        } else {
                            allowed.join(", ")
                        }
                    ),
                ));
            }
        }
        Ok(())
    };
    let lookup = |key: &str| kv.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
    match name {
        "jacobi" => {
            reject_unknown(&[])?;
            Ok(Method::Jacobi)
        }
        "richardson1" => {
            reject_unknown(&["omega"])?;
            let omega = match lookup("omega") {
                Some(v) => parse_omega(v)?,
                None => OmegaSpec::Auto,
            };
            Ok(Method::Richardson1 { omega })
        }
        "richardson2" => {
            reject_unknown(&["omega", "beta"])?;
            let omega = match lookup("omega") {
                Some(v) => parse_omega(v)?,
                None => OmegaSpec::Auto,
            };
            let beta = match lookup("beta") {
                Some(v) => Some(parse_f64("beta", v)?),
                None => None,
            };
            if let Some(b) = beta {
                if !(0.0..1.0).contains(&b) {
                    return Err(method_err(
                        selector,
                        &format!("beta must lie in [0, 1), got {b}"),
                    ));
                }
            }
            Ok(Method::Richardson2 { omega, beta })
        }
        "rwr" | "randomized" => {
            reject_unknown(&["fraction"])?;
            let fraction = match lookup("fraction") {
                Some(v) => parse_f64("fraction", v)?,
                None => 0.5,
            };
            if !(fraction > 0.0 && fraction <= 1.0) {
                return Err(method_err(
                    selector,
                    &format!("fraction must lie in (0, 1], got {fraction}"),
                ));
            }
            Ok(Method::RandomizedResidual { fraction })
        }
        other => Err(method_err(selector, &format!("unknown method '{other}'"))),
    }
}

/// The accepted storage-format grammar, quoted in full by every rejection
/// (same contract as [`METHOD_GRAMMAR`]).
pub const FORMAT_GRAMMAR: &str = "csr | sellc[:c=<2|4|8|16>] | rcm-blocked | auto";

fn format_err(selector: &str, what: &str) -> String {
    format!("bad format selector '{selector}': {what} (grammar: {FORMAT_GRAMMAR})")
}

/// Parses a sweep storage-format selector (`csr`, `sellc`, `sellc:c=8`,
/// `rcm-blocked`) into a [`StorageFormat`]. A leading `format=` is accepted
/// so full spec fragments can be passed through verbatim.
///
/// Every rejection reports the *full* selector string and the accepted
/// grammar, not just the offending key.
pub fn parse_format(selector: &str) -> Result<StorageFormat, String> {
    let spec = selector.strip_prefix("format=").unwrap_or(selector);
    if spec.is_empty() {
        return Err(format_err(selector, "empty format name"));
    }
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default();
    let mut kv: Vec<(&str, &str)> = Vec::new();
    for part in parts {
        let Some((k, v)) = part.split_once('=') else {
            return Err(format_err(
                selector,
                &format!("expected key=value, got '{part}'"),
            ));
        };
        if kv.iter().any(|&(seen, _)| seen == k) {
            return Err(format_err(selector, &format!("duplicate key '{k}'")));
        }
        kv.push((k, v));
    }
    let reject_unknown = |allowed: &[&str]| -> Result<(), String> {
        for &(k, _) in &kv {
            if !allowed.contains(&k) {
                return Err(format_err(
                    selector,
                    &format!(
                        "unknown key '{k}' for format '{name}' (allowed: {})",
                        if allowed.is_empty() {
                            "none".to_string()
                        } else {
                            allowed.join(", ")
                        }
                    ),
                ));
            }
        }
        Ok(())
    };
    let lookup = |key: &str| kv.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
    match name {
        "csr" => {
            reject_unknown(&[])?;
            Ok(StorageFormat::Csr)
        }
        "sellc" => {
            reject_unknown(&["c"])?;
            let c = match lookup("c") {
                Some(v) => v.parse::<usize>().map_err(|_| {
                    format_err(selector, &format!("invalid value '{v}' for key 'c'"))
                })?,
                None => aj_linalg::kernel::DEFAULT_SELL_LANES,
            };
            if !aj_linalg::kernel::SELL_LANE_CHOICES.contains(&c) {
                return Err(format_err(
                    selector,
                    &format!("lane count c must be one of 2|4|8|16, got {c}"),
                ));
            }
            Ok(StorageFormat::SellC { c })
        }
        "rcm-blocked" => {
            reject_unknown(&[])?;
            Ok(StorageFormat::RcmBlocked)
        }
        "auto" => {
            reject_unknown(&[])?;
            Ok(StorageFormat::Auto)
        }
        other => Err(format_err(selector, &format!("unknown format '{other}'"))),
    }
}

/// The accepted controller grammar, quoted in full by every rejection
/// (same contract as [`METHOD_GRAMMAR`]). Staleness thresholds (`low`,
/// `high`, `shed`) are ratios in units of the fastest worker's sweep
/// period; `stall` is the minimum residual decades per observation the
/// stall detector demands over its window.
pub const CONTROL_GRAMMAR: &str = "off | on[:window=<W>][:low=<R>][:high=<R>]\
     [:patience=<K>][:stall=<D>][:shed=<R>][:rescue=<on|off>]";

fn control_err(selector: &str, what: &str) -> String {
    format!("bad control selector '{selector}': {what} (grammar: {CONTROL_GRAMMAR})")
}

/// Parses a closed-loop controller selector (`off`, `on`,
/// `on:window=12:high=24:rescue=off`, …) into an optional
/// [`aj_control::ControlConfig`] — `None` means the controller is off and
/// every engine stays bit-identical to its uncontrolled form. A leading
/// `control=` is accepted so full spec fragments pass through verbatim.
///
/// Every rejection reports the *full* selector string and the accepted
/// grammar, not just the offending key.
pub fn parse_control(selector: &str) -> Result<Option<aj_control::ControlConfig>, String> {
    let spec = selector.strip_prefix("control=").unwrap_or(selector);
    if spec.is_empty() {
        return Err(control_err(selector, "empty control selector"));
    }
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default();
    let mut kv: Vec<(&str, &str)> = Vec::new();
    for part in parts {
        let Some((k, v)) = part.split_once('=') else {
            return Err(control_err(
                selector,
                &format!("expected key=value, got '{part}'"),
            ));
        };
        if kv.iter().any(|&(seen, _)| seen == k) {
            return Err(control_err(selector, &format!("duplicate key '{k}'")));
        }
        kv.push((k, v));
    }
    match name {
        "off" => {
            if let Some(&(k, _)) = kv.first() {
                return Err(control_err(
                    selector,
                    &format!("'off' takes no keys, got '{k}'"),
                ));
            }
            return Ok(None);
        }
        "on" => {}
        other => Err(control_err(
            selector,
            &format!("unknown control mode '{other}'"),
        ))?,
    }
    const ALLOWED: [&str; 7] = [
        "window", "low", "high", "patience", "stall", "shed", "rescue",
    ];
    for &(k, _) in &kv {
        if !ALLOWED.contains(&k) {
            return Err(control_err(
                selector,
                &format!("unknown key '{k}' (allowed: {})", ALLOWED.join(", ")),
            ));
        }
    }
    let lookup = |key: &str| kv.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
    let parse_f64 = |key: &str, v: &str| -> Result<f64, String> {
        v.parse::<f64>()
            .map_err(|_| control_err(selector, &format!("invalid value '{v}' for key '{key}'")))
    };
    let mut cfg = aj_control::ControlConfig::default();
    if let Some(v) = lookup("window") {
        cfg.window = v
            .parse::<usize>()
            .map_err(|_| control_err(selector, &format!("invalid value '{v}' for key 'window'")))?;
        if cfg.window < 2 {
            return Err(control_err(
                selector,
                &format!("window must be at least 2, got {}", cfg.window),
            ));
        }
    }
    if let Some(v) = lookup("low") {
        cfg.low = parse_f64("low", v)?;
    }
    if let Some(v) = lookup("high") {
        cfg.high = parse_f64("high", v)?;
    }
    if !(cfg.low > 0.0 && cfg.high > cfg.low) {
        return Err(control_err(
            selector,
            &format!(
                "staleness regimes need 0 < low < high, got low={} high={}",
                cfg.low, cfg.high
            ),
        ));
    }
    if let Some(v) = lookup("patience") {
        let p = v.parse::<u32>().map_err(|_| {
            control_err(selector, &format!("invalid value '{v}' for key 'patience'"))
        })?;
        if p == 0 {
            return Err(control_err(selector, "patience must be at least 1"));
        }
        cfg.patience = p;
    }
    if let Some(v) = lookup("stall") {
        cfg.stall_decades = parse_f64("stall", v)?;
        if cfg.stall_decades.is_nan() || cfg.stall_decades < 0.0 {
            return Err(control_err(
                selector,
                &format!("stall decades must be ≥ 0, got {}", cfg.stall_decades),
            ));
        }
    }
    if let Some(v) = lookup("shed") {
        cfg.shed_after = parse_f64("shed", v)?;
        if cfg.shed_after.is_nan() || cfg.shed_after <= cfg.high {
            return Err(control_err(
                selector,
                &format!(
                    "shed threshold must exceed high ({}), got {}",
                    cfg.high, cfg.shed_after
                ),
            ));
        }
    }
    if let Some(v) = lookup("rescue") {
        cfg.rescue = match v {
            "on" => true,
            "off" => false,
            other => {
                return Err(control_err(
                    selector,
                    &format!("rescue must be on|off, got '{other}'"),
                ));
            }
        };
    }
    Ok(Some(cfg))
}

/// The accepted outer-solver grammar, quoted in full by every rejection
/// (same contract as [`METHOD_GRAMMAR`]). The `smooth=`/`prec=` value is a
/// full [`METHOD_GRAMMAR`] selector; its `omega`/`beta`/`fraction` keys
/// nest after it (e.g. `vcycle:smooth=richardson2:omega=auto:steps=2`).
pub const OUTER_GRAMMAR: &str = "vcycle[:levels=<L>][:smooth=METHOD][:steps=<K>] \
     | fcg[:prec=METHOD][:inner=<K>] | fgmres[:prec=METHOD][:inner=<K>][:restart=<M>]";

fn outer_err(selector: &str, what: &str) -> String {
    format!("bad outer selector '{selector}': {what} (grammar: {OUTER_GRAMMAR})")
}

/// Parses an outer-solver selector (`vcycle`, `vcycle:levels=4:steps=2`,
/// `fcg:prec=jacobi:inner=4`,
/// `fgmres:prec=richardson2:omega=auto:inner=3:restart=20`, …) into an
/// [`OuterSpec`]. A leading `outer=` is accepted so full spec fragments
/// can be passed through verbatim.
///
/// The `smooth=` (vcycle) / `prec=` (Krylov) key starts a nested method
/// selector: subsequent `omega=`/`beta=`/`fraction=` parts belong to the
/// method, everything else stays at the outer level. Absent, the smoother
/// defaults to `richardson1:omega=auto` — in smoothing position the auto
/// weight targets the oscillatory half-band, see
/// `aj_outer::smoothing_method`.
///
/// Every rejection reports the *full* selector string and the accepted
/// grammar, not just the offending key.
pub fn parse_outer(selector: &str) -> Result<OuterSpec, String> {
    let spec = selector.strip_prefix("outer=").unwrap_or(selector);
    if spec.is_empty() {
        return Err(outer_err(selector, "empty outer solver name"));
    }
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default();
    // Keys whose values belong to the nested method selector once a
    // smooth=/prec= part has opened it.
    const METHOD_KEYS: [&str; 3] = ["omega", "beta", "fraction"];
    let mut kv: Vec<(&str, &str)> = Vec::new();
    let mut method_key: Option<&str> = None;
    let mut method_sel: Option<String> = None;
    for part in parts {
        let Some((k, v)) = part.split_once('=') else {
            return Err(outer_err(
                selector,
                &format!("expected key=value, got '{part}'"),
            ));
        };
        if k == "smooth" || k == "prec" {
            if method_sel.is_some() {
                return Err(outer_err(selector, &format!("duplicate key '{k}'")));
            }
            method_key = Some(k);
            method_sel = Some(v.to_string());
            continue;
        }
        if METHOD_KEYS.contains(&k) {
            let Some(sel) = method_sel.as_mut() else {
                return Err(outer_err(
                    selector,
                    &format!("method key '{k}' before any smooth=/prec= part"),
                ));
            };
            sel.push(':');
            sel.push_str(part);
            continue;
        }
        if kv.iter().any(|&(seen, _)| seen == k) {
            return Err(outer_err(selector, &format!("duplicate key '{k}'")));
        }
        kv.push((k, v));
    }
    let reject_unknown = |allowed: &[&str], method: &str| -> Result<(), String> {
        for &(k, _) in &kv {
            if !allowed.contains(&k) {
                return Err(outer_err(
                    selector,
                    &format!(
                        "unknown key '{k}' for outer solver '{name}' (allowed: {}, {method}=METHOD)",
                        if allowed.is_empty() {
                            "none".to_string()
                        } else {
                            allowed.join(", ")
                        }
                    ),
                ));
            }
        }
        Ok(())
    };
    let lookup = |key: &str| kv.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
    let parse_count = |key: &str, v: &str, min: usize| -> Result<usize, String> {
        let n = v
            .parse::<usize>()
            .map_err(|_| outer_err(selector, &format!("invalid value '{v}' for key '{key}'")))?;
        if n < min {
            return Err(outer_err(
                selector,
                &format!("{key} must be ≥ {min}, got {n}"),
            ));
        }
        Ok(n)
    };
    let expect_method_key = |want: &str| -> Result<(), String> {
        match method_key {
            Some(k) if k != want => Err(outer_err(
                selector,
                &format!("outer solver '{name}' takes {want}=METHOD, not {k}="),
            )),
            _ => Ok(()),
        }
    };
    let smooth = match &method_sel {
        Some(sel) => {
            parse_method(sel).map_err(|e| outer_err(selector, &format!("nested method: {e}")))?
        }
        None => OuterSpec::default_smooth(),
    };
    let kind = match name {
        "vcycle" => {
            expect_method_key("smooth")?;
            reject_unknown(&["levels", "steps"], "smooth")?;
            let levels = match lookup("levels") {
                Some(v) => Some(parse_count("levels", v, 2)?),
                None => None,
            };
            let steps = match lookup("steps") {
                Some(v) => parse_count("steps", v, 1)?,
                None => OuterSpec::DEFAULT_STEPS,
            };
            OuterKind::VCycle { levels, steps }
        }
        "fcg" => {
            expect_method_key("prec")?;
            reject_unknown(&["inner"], "prec")?;
            let inner = match lookup("inner") {
                Some(v) => parse_count("inner", v, 1)?,
                None => OuterSpec::DEFAULT_INNER,
            };
            OuterKind::Fcg { inner }
        }
        "fgmres" => {
            expect_method_key("prec")?;
            reject_unknown(&["inner", "restart"], "prec")?;
            let inner = match lookup("inner") {
                Some(v) => parse_count("inner", v, 1)?,
                None => OuterSpec::DEFAULT_INNER,
            };
            let restart = match lookup("restart") {
                Some(v) => parse_count("restart", v, 1)?,
                None => OuterSpec::DEFAULT_RESTART,
            };
            OuterKind::Fgmres { inner, restart }
        }
        other => {
            return Err(outer_err(
                selector,
                &format!("unknown outer solver '{other}'"),
            ))
        }
    };
    Ok(OuterSpec { kind, smooth })
}

/// The accepted backend grammar, quoted in full by every rejection (same
/// contract as [`METHOD_GRAMMAR`]).
pub const BACKEND_GRAMMAR: &str = "sync | gs | cg | async-threads | sim-async \
     | sim-sync | dist-async | dist-sync | net[:ranks=<N>]";

fn backend_err(selector: &str, what: &str) -> String {
    format!("bad backend selector '{selector}': {what} (grammar: {BACKEND_GRAMMAR})")
}

/// Parses a backend name (`sync`, `gs`, `cg`, `async-threads`, `sim-async`,
/// `sim-sync`, `dist-async`, `dist-sync`, `net[:ranks=N]`) into a
/// [`Backend`], filling in the worker/rank counts the parallel backends
/// need. Only `net` takes `key=value` parameters; its `ranks=` overrides
/// the ambient `ranks` argument.
pub fn parse_backend(
    name: &str,
    threads: usize,
    ranks: usize,
    detect: bool,
) -> Result<Backend, String> {
    // Parameterized form: net[:ranks=<N>] — the only backend with a kv
    // suffix (the others take counts from --threads/--ranks).
    if let Some((base, rest)) = name.split_once(':') {
        if base != "net" {
            return Err(backend_err(
                name,
                &format!("backend '{base}' takes no ':key=value' parameters"),
            ));
        }
        let mut net_ranks = ranks;
        let mut seen: Vec<&str> = Vec::new();
        for part in rest.split(':') {
            let Some((k, v)) = part.split_once('=') else {
                return Err(backend_err(
                    name,
                    &format!("expected key=value, got '{part}'"),
                ));
            };
            if seen.contains(&k) {
                return Err(backend_err(name, &format!("duplicate key '{k}'")));
            }
            seen.push(k);
            match k {
                "ranks" => {
                    net_ranks = v.parse::<usize>().map_err(|_| {
                        backend_err(name, &format!("invalid value '{v}' for key 'ranks'"))
                    })?;
                }
                other => {
                    return Err(backend_err(
                        name,
                        &format!("unknown key '{other}' for backend 'net' (allowed: ranks)"),
                    ))
                }
            }
        }
        return Ok(Backend::Net { ranks: net_ranks });
    }
    Ok(match name {
        "sync" => Backend::Jacobi,
        "gs" => Backend::GaussSeidel,
        "cg" => Backend::ConjugateGradient,
        "async-threads" => Backend::AsyncThreads { workers: threads },
        "sim-async" => Backend::SimShared {
            workers: threads,
            asynchronous: true,
        },
        "sim-sync" => Backend::SimShared {
            workers: threads,
            asynchronous: false,
        },
        "dist-async" => Backend::SimDistributed {
            ranks,
            asynchronous: true,
            detect,
        },
        "dist-sync" => Backend::SimDistributed {
            ranks,
            asynchronous: false,
            detect: false,
        },
        "net" => Backend::Net { ranks },
        other => return Err(backend_err(name, &format!("unknown backend '{other}'"))),
    })
}

/// Checks a backend's worker/rank counts against a problem size (every
/// parallel engine needs `1 ≤ count ≤ n`), returning a message suitable for
/// a CLI error or a service rejection.
pub fn validate_backend(backend: &Backend, n: usize) -> Result<(), String> {
    let check = |what: &str, count: usize| {
        if (1..=n).contains(&count) {
            Ok(())
        } else {
            Err(format!(
                "{what} must be in 1..={n} for this matrix (got {count})"
            ))
        }
    };
    match *backend {
        Backend::AsyncThreads { workers } | Backend::SimShared { workers, .. } => {
            check("workers", workers)
        }
        Backend::SimDistributed { ranks, .. } | Backend::Net { ranks } => check("ranks", ranks),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_resolve() {
        assert_eq!(load_problem("fd68", 1).unwrap().n(), 68);
        assert_eq!(load_problem("fe", 1).unwrap().n(), 3136);
        assert!(load_problem("suite:ecology2:tiny", 1).unwrap().n() > 1000);
        assert_eq!(load_problem("grid:5x7", 1).unwrap().n(), 35);
    }

    #[test]
    fn bad_selectors_error() {
        assert!(load_problem("nope", 1).is_err());
        assert!(load_problem("suite:nope", 1).is_err());
        assert!(load_problem("suite:ecology2:giant", 1).is_err());
        assert!(load_problem("grid:5by7", 1).is_err());
        assert!(load_problem("mtx:/does/not/exist.mtx", 1).is_err());
    }

    #[test]
    fn selector_errors_quote_the_full_selector() {
        for bad in [
            "suite:ecology2:giant",
            "suite:nope",
            "suite:ecology2:tiny:junk",
        ] {
            let err = load_problem(bad, 1).unwrap_err();
            assert!(err.contains(bad), "error '{err}' must quote '{bad}'");
        }
    }

    #[test]
    fn methods_parse() {
        use aj_linalg::method::{Method, OmegaSpec};
        assert_eq!(parse_method("jacobi").unwrap(), Method::Jacobi);
        assert_eq!(parse_method("method=jacobi").unwrap(), Method::Jacobi);
        assert_eq!(
            parse_method("richardson1").unwrap(),
            Method::Richardson1 {
                omega: OmegaSpec::Auto
            }
        );
        assert_eq!(
            parse_method("richardson1:omega=0.8").unwrap(),
            Method::Richardson1 {
                omega: OmegaSpec::Fixed(0.8)
            }
        );
        assert_eq!(
            parse_method("method=richardson2:omega=auto").unwrap(),
            Method::Richardson2 {
                omega: OmegaSpec::Auto,
                beta: None
            }
        );
        assert_eq!(
            parse_method("richardson2:omega=0.9:beta=0.25").unwrap(),
            Method::Richardson2 {
                omega: OmegaSpec::Fixed(0.9),
                beta: Some(0.25)
            }
        );
        assert_eq!(
            parse_method("rwr").unwrap(),
            Method::RandomizedResidual { fraction: 0.5 }
        );
        assert_eq!(
            parse_method("randomized:fraction=0.25").unwrap(),
            Method::RandomizedResidual { fraction: 0.25 }
        );
    }

    #[test]
    fn method_rejections_quote_selector_and_grammar() {
        // One case per rejection path: empty name, unknown method, bare key
        // without '=', duplicate key, unknown key for the method, bad
        // numeric value, and out-of-range parameters.
        for bad in [
            "",
            "method=",
            "sor",
            "richardson1:omega",
            "richardson1:omega=0.8:omega=0.9",
            "jacobi:omega=0.5",
            "richardson1:beta=0.5",
            "richardson2:fraction=0.5",
            "rwr:omega=auto",
            "richardson1:omega=fast",
            "richardson2:beta=nope",
            "rwr:fraction=zero",
            "richardson2:beta=1.5",
            "rwr:fraction=0",
            "rwr:fraction=1.5",
        ] {
            let err = parse_method(bad).unwrap_err();
            assert!(err.contains(bad), "error '{err}' must quote '{bad}'");
            assert!(
                err.contains(METHOD_GRAMMAR),
                "error '{err}' must state the grammar"
            );
        }
    }

    #[test]
    fn resolved_method_spec_roundtrips_through_the_grammar() {
        use aj_linalg::method::Method;
        let p = load_problem("fd68", 1).unwrap();
        let m = parse_method("richardson2:omega=auto").unwrap();
        let resolved = m.resolve(&p.a, 1).unwrap();
        // A resolved method re-enters through its canonical selector with
        // the parameters already fixed — no second spectrum estimate.
        let reparsed = parse_method(&resolved.to_spec()).unwrap();
        assert!(matches!(
            reparsed,
            Method::Richardson2 { beta: Some(_), .. }
        ));
        assert_eq!(reparsed.resolve(&p.a, 1).unwrap(), resolved);
    }

    #[test]
    fn formats_parse() {
        assert_eq!(parse_format("csr").unwrap(), StorageFormat::Csr);
        assert_eq!(parse_format("format=csr").unwrap(), StorageFormat::Csr);
        assert_eq!(
            parse_format("sellc").unwrap(),
            StorageFormat::SellC {
                c: aj_linalg::kernel::DEFAULT_SELL_LANES
            }
        );
        for c in aj_linalg::kernel::SELL_LANE_CHOICES {
            assert_eq!(
                parse_format(&format!("sellc:c={c}")).unwrap(),
                StorageFormat::SellC { c }
            );
        }
        assert_eq!(
            parse_format("format=rcm-blocked").unwrap(),
            StorageFormat::RcmBlocked
        );
        assert_eq!(parse_format("auto").unwrap(), StorageFormat::Auto);
        assert_eq!(parse_format("format=auto").unwrap(), StorageFormat::Auto);
        assert!(parse_format("auto:c=8").is_err());
        // Canonical spec strings re-parse to the same format.
        for f in [
            StorageFormat::Csr,
            StorageFormat::SellC { c: 4 },
            StorageFormat::RcmBlocked,
            StorageFormat::Auto,
        ] {
            assert_eq!(parse_format(&f.to_spec()).unwrap(), f);
        }
    }

    #[test]
    fn outers_parse() {
        assert_eq!(
            parse_outer("vcycle").unwrap(),
            OuterSpec {
                kind: OuterKind::VCycle {
                    levels: None,
                    steps: OuterSpec::DEFAULT_STEPS
                },
                smooth: OuterSpec::default_smooth(),
            }
        );
        assert_eq!(
            parse_outer("outer=vcycle:levels=4:smooth=jacobi:steps=3").unwrap(),
            OuterSpec {
                kind: OuterKind::VCycle {
                    levels: Some(4),
                    steps: 3
                },
                smooth: Method::Jacobi,
            }
        );
        // Nested method keys attach to the preceding smooth=/prec= part,
        // in any interleaving with outer keys.
        assert_eq!(
            parse_outer("vcycle:smooth=richardson2:omega=auto:beta=0.3:steps=1").unwrap(),
            OuterSpec {
                kind: OuterKind::VCycle {
                    levels: None,
                    steps: 1
                },
                smooth: Method::Richardson2 {
                    omega: OmegaSpec::Auto,
                    beta: Some(0.3)
                },
            }
        );
        assert_eq!(
            parse_outer("fcg:prec=rwr:fraction=0.25:inner=6").unwrap(),
            OuterSpec {
                kind: OuterKind::Fcg { inner: 6 },
                smooth: Method::RandomizedResidual { fraction: 0.25 },
            }
        );
        assert_eq!(
            parse_outer("fgmres").unwrap(),
            OuterSpec {
                kind: OuterKind::Fgmres {
                    inner: OuterSpec::DEFAULT_INNER,
                    restart: OuterSpec::DEFAULT_RESTART
                },
                smooth: OuterSpec::default_smooth(),
            }
        );
        // Canonical spec strings re-parse to the same value.
        for sel in [
            "vcycle",
            "vcycle:levels=3:smooth=richardson1:omega=0.7:steps=2",
            "fcg:prec=jacobi:inner=2",
            "fgmres:prec=richardson2:omega=auto:inner=3:restart=10",
        ] {
            let spec = parse_outer(sel).unwrap();
            assert_eq!(parse_outer(&spec.to_spec()).unwrap(), spec);
        }
    }

    #[test]
    fn outer_rejections_quote_selector_and_grammar() {
        // One case per rejection path: empty name, unknown solver, bare key
        // without '=', duplicate keys (outer and nested-method starters),
        // method keys with no method, wrong method key for the family,
        // keys of the other family, bad numeric values, and a broken
        // nested method selector.
        for bad in [
            "",
            "outer=",
            "wcycle",
            "vcycle:steps",
            "vcycle:steps=2:steps=3",
            "vcycle:smooth=jacobi:smooth=jacobi",
            "vcycle:omega=0.5",
            "vcycle:prec=jacobi",
            "fcg:smooth=jacobi",
            "vcycle:inner=4",
            "fcg:steps=2",
            "fcg:levels=3",
            "fgmres:restart=0",
            "vcycle:levels=1",
            "vcycle:steps=0",
            "fcg:inner=0",
            "vcycle:levels=two",
            "vcycle:smooth=sor",
            "fcg:prec=rwr:fraction=1.5",
        ] {
            let err = parse_outer(bad).unwrap_err();
            assert!(err.contains(bad), "error '{err}' must quote '{bad}'");
            assert!(
                err.contains(OUTER_GRAMMAR),
                "error '{err}' must state the grammar"
            );
        }
    }

    #[test]
    fn format_rejections_quote_selector_and_grammar() {
        // One case per rejection path: empty name, unknown format, bare key
        // without '=', duplicate key, unknown key for the format, bad
        // numeric value, and an unsupported lane count.
        for bad in [
            "",
            "format=",
            "ellpack",
            "sellc:c",
            "sellc:c=4:c=8",
            "csr:c=8",
            "rcm-blocked:c=4",
            "sellc:lanes=8",
            "sellc:c=eight",
            "sellc:c=3",
            "sellc:c=0",
            "sellc:c=32",
        ] {
            let err = parse_format(bad).unwrap_err();
            assert!(err.contains(bad), "error '{err}' must quote '{bad}'");
            assert!(
                err.contains(FORMAT_GRAMMAR),
                "error '{err}' must state the grammar"
            );
        }
    }

    #[test]
    fn control_selectors_parse() {
        assert_eq!(parse_control("off").unwrap(), None);
        assert_eq!(parse_control("control=off").unwrap(), None);
        assert_eq!(
            parse_control("on").unwrap(),
            Some(aj_control::ControlConfig::default())
        );
        let cfg = parse_control(
            "control=on:window=12:low=2:high=24:patience=6:stall=0.05:shed=96:rescue=off",
        )
        .unwrap()
        .unwrap();
        assert_eq!(cfg.window, 12);
        assert_eq!(cfg.low, 2.0);
        assert_eq!(cfg.high, 24.0);
        assert_eq!(cfg.patience, 6);
        assert_eq!(cfg.stall_decades, 0.05);
        assert_eq!(cfg.shed_after, 96.0);
        assert!(!cfg.rescue);
    }

    #[test]
    fn control_rejections_quote_selector_and_grammar() {
        // One case per rejection path: empty selector, unknown mode, keys
        // on 'off', bare key without '=', duplicate key, unknown key, bad
        // numeric values, degenerate window/regimes/patience, shed below
        // the high threshold, and a non on|off rescue value.
        for bad in [
            "",
            "control=",
            "auto",
            "off:window=4",
            "on:window",
            "on:window=4:window=8",
            "on:gain=2",
            "on:window=two",
            "on:window=1",
            "on:low=0",
            "on:low=8:high=4",
            "on:patience=0",
            "on:stall=-1",
            "on:shed=8",
            "on:rescue=maybe",
        ] {
            let err = parse_control(bad).unwrap_err();
            assert!(err.contains(bad), "error '{err}' must quote '{bad}'");
            assert!(
                err.contains(CONTROL_GRAMMAR),
                "error '{err}' must state the grammar"
            );
        }
    }

    #[test]
    fn backends_parse_and_validate() {
        assert_eq!(
            parse_backend("sync", 4, 16, false).unwrap(),
            Backend::Jacobi
        );
        assert_eq!(
            parse_backend("dist-async", 4, 16, true).unwrap(),
            Backend::SimDistributed {
                ranks: 16,
                asynchronous: true,
                detect: true
            }
        );
        assert!(parse_backend("warp-drive", 4, 16, false).is_err());
        let b = parse_backend("dist-async", 4, 16, false).unwrap();
        assert!(validate_backend(&b, 68).is_ok());
        assert!(validate_backend(&b, 8).is_err());
        assert!(validate_backend(&Backend::Jacobi, 1).is_ok());
    }

    #[test]
    fn net_backend_parses_with_and_without_ranks() {
        assert_eq!(
            parse_backend("net", 4, 16, false).unwrap(),
            Backend::Net { ranks: 16 }
        );
        assert_eq!(
            parse_backend("net:ranks=4", 4, 16, false).unwrap(),
            Backend::Net { ranks: 4 }
        );
        let b = parse_backend("net:ranks=4", 4, 16, false).unwrap();
        assert!(validate_backend(&b, 68).is_ok());
        assert!(validate_backend(&b, 2).is_err());
    }

    #[test]
    fn backend_rejections_quote_selector_and_grammar() {
        // One case per rejection path: unknown backend, kv suffix on a
        // non-net backend, bare key without '=', duplicate key, unknown
        // key, and a bad numeric value.
        for bad in [
            "warp-drive",
            "dist-async:ranks=4",
            "net:ranks",
            "net:ranks=4:ranks=8",
            "net:workers=4",
            "net:ranks=many",
        ] {
            let err = parse_backend(bad, 4, 16, false).unwrap_err();
            assert!(err.contains(bad), "error '{err}' must quote '{bad}'");
            assert!(
                err.contains(BACKEND_GRAMMAR),
                "error '{err}' must state the grammar"
            );
        }
    }
}
