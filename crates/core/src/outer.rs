//! Outer-solve dispatch: runs `aj-outer`'s V-cycle and flexible Krylov
//! loops with the execution engines plugged in as inner smoothers.
//!
//! The composition inverts the usual driver flow: instead of an engine
//! owning the whole solve, the outer loop owns convergence and calls the
//! engine for `K` relaxation sweeps on a residual equation `A z = r` at a
//! time (`tol = 0`, `max_iterations = K`, start from zero). Inner sweeps
//! run as asynchronously as the chosen backend allows; the only
//! synchronization points are the coarse-grid transfers (V-cycle) and the
//! Krylov recurrence (FCG/FGMRES).

use crate::driver::{Backend, SolveOptions, SolveReport};
use crate::problem::Problem;
use aj_dmsim::shmem_sim::{run_shmem_async, run_shmem_sync, ShmemSimConfig};
use aj_dmsim::{run_dist_async_plan, run_dist_sync_plan, DistConfig};
use aj_linalg::method::{Method, ResolvedMethod};
use aj_linalg::vecops::Norm;
use aj_linalg::{CsrMatrix, StorageFormat};
use aj_obs::{ObsConfig, Snapshot};
use aj_outer::{flex, smoothing_method, vcycle, ReferenceSmoother, Smoother};
use aj_partition::{block_partition, CommPlan};
use std::sync::Arc;

pub use aj_outer::{Hierarchy, OuterKind, OuterSpec};

/// Outer-solve summary attached to [`SolveReport::outer`].
#[derive(Debug, Clone)]
pub struct OuterReport {
    /// Canonical outer selector that ran ([`OuterSpec::to_spec`]).
    pub spec: String,
    /// `(rows, nnz)` per hierarchy level, finest first. The Krylov kinds
    /// work on the fine grid only and report a single entry.
    pub levels: Vec<(usize, usize)>,
    /// Outer iterations executed (V-cycles or Krylov steps).
    pub iterations: u64,
    /// Total inner relaxation sweeps spent in the smoother, across all
    /// levels and outer iterations.
    pub inner_sweeps: u64,
}

/// Which engine executes the inner sweeps.
enum InnerEngine {
    /// Sequential dense-reference sweeps ([`ReferenceSmoother`]).
    Reference,
    /// Real `std::thread` asynchronous Jacobi.
    Threads { workers: usize },
    /// Simulated shared-memory threads.
    SimShared { workers: usize, asynchronous: bool },
    /// Simulated distributed ranks.
    SimDistributed { ranks: usize, asynchronous: bool },
}

/// Per-hierarchy-level memoized state: the resolved method (Lanczos ω
/// estimation runs once per level, not once per smoothing call) and, for
/// the distributed engine, the communication plan.
struct LevelState {
    method: ResolvedMethod,
    plan: Option<Arc<CommPlan>>,
}

/// [`Smoother`] adapter that runs one of the execution engines for `steps`
/// sweeps per call. `smoothing = true` (V-cycle position) re-targets
/// `omega=auto` to the oscillatory half-band via [`smoothing_method`];
/// `false` (Krylov preconditioner position) keeps the standalone rule.
struct EngineSmoother {
    engine: InnerEngine,
    method: Method,
    smoothing: bool,
    seed: u64,
    omega: f64,
    format: StorageFormat,
    norm: Norm,
    obs: ObsConfig,
    /// Fine-level plan passed down from [`SolveOptions::plan`] (serve's
    /// plan cache); reused at level 0 when its part count matches.
    fine_plan: Option<Arc<CommPlan>>,
    levels: Vec<Option<LevelState>>,
    reference: Option<ReferenceSmoother>,
    /// Merged counters/histograms from every inner run (timelines are
    /// dropped: each inner run restarts its clock, so lanes from different
    /// smoothing calls would interleave meaninglessly).
    snap: Snapshot,
}

impl EngineSmoother {
    fn new(
        engine: InnerEngine,
        smooth: Method,
        smoothing: bool,
        opts: &SolveOptions,
        format: StorageFormat,
    ) -> Self {
        let reference = match engine {
            InnerEngine::Reference => Some(ReferenceSmoother::new(smooth, opts.seed, smoothing)),
            _ => None,
        };
        EngineSmoother {
            engine,
            method: smooth,
            smoothing,
            seed: opts.seed,
            omega: opts.omega,
            format,
            norm: opts.norm,
            obs: opts.obs,
            fine_plan: opts.plan.clone(),
            levels: Vec::new(),
            reference,
            snap: Snapshot::new(),
        }
    }

    /// Resolves (once) and returns this level's method and, for the
    /// distributed engine, its communication plan.
    fn level_state(
        &mut self,
        level: usize,
        a: &CsrMatrix,
    ) -> Result<(ResolvedMethod, Option<Arc<CommPlan>>), String> {
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, || None);
        }
        if self.levels[level].is_none() {
            let method = if self.smoothing {
                smoothing_method(&self.method, a)
                    .map_err(|e| format!("level {level} smoother: {e}"))?
            } else {
                self.method
            };
            let resolved = method
                .resolve(a, self.seed)
                .map_err(|e| format!("level {level} smoother: {e}"))?;
            let plan = if let InnerEngine::SimDistributed { ranks, .. } = self.engine {
                let nparts = ranks.min(a.nrows()).max(1);
                let plan = match (&self.fine_plan, level) {
                    (Some(p), 0) if p.nparts() == nparts => Arc::clone(p),
                    (Some(p), 0) => {
                        return Err(format!(
                            "precomputed plan has {} parts but the inner backend wants \
                             {nparts} ranks",
                            p.nparts()
                        ));
                    }
                    _ => Arc::new(CommPlan::build(a, &block_partition(a.nrows(), nparts))),
                };
                Some(plan)
            } else {
                None
            };
            self.levels[level] = Some(LevelState {
                method: resolved,
                plan,
            });
        }
        let state = self.levels[level].as_ref().unwrap();
        Ok((state.method, state.plan.clone()))
    }

    /// Folds one inner run's observability into the outer aggregate.
    fn absorb(&mut self, obs: Option<Snapshot>) {
        let Some(s) = obs else { return };
        for (k, v) in &s.counters {
            self.snap.add_counter(k, *v);
        }
        for (k, h) in &s.histograms {
            self.snap.merge_histogram(k, h);
        }
    }

    fn into_snapshot(self) -> Option<Snapshot> {
        if self.obs.is_on() && !matches!(self.engine, InnerEngine::Reference) {
            Some(self.snap)
        } else {
            None
        }
    }
}

impl Smoother for EngineSmoother {
    fn smooth(
        &mut self,
        level: usize,
        a: &CsrMatrix,
        r: &[f64],
        steps: usize,
    ) -> Result<Vec<f64>, String> {
        if let Some(reference) = &mut self.reference {
            return reference.smooth(level, a, r, steps);
        }
        let (method, plan) = self.level_state(level, a)?;
        let n = a.nrows();
        let zeros = vec![0.0; n];
        match self.engine {
            InnerEngine::Reference => unreachable!("handled above"),
            InnerEngine::Threads { workers } => {
                let cfg = aj_shmem::ShmemConfig {
                    num_threads: workers.min(n).max(1),
                    tol: 0.0,
                    max_iterations: steps,
                    norm: self.norm,
                    mode: aj_shmem::Mode::Asynchronous,
                    omega: self.omega,
                    method,
                    format: self.format,
                    obs: self.obs,
                    ..Default::default()
                };
                let out = aj_shmem::solver::run(a, r, &zeros, &cfg);
                self.absorb(out.obs);
                Ok(out.x)
            }
            InnerEngine::SimShared {
                workers,
                asynchronous,
            } => {
                let mut cfg = ShmemSimConfig::new(workers.min(n).max(1), n, self.seed);
                cfg.tol = 0.0;
                cfg.max_iterations = steps as u64;
                cfg.norm = self.norm;
                cfg.omega = self.omega;
                cfg.method = method;
                cfg.format = self.format;
                cfg.obs = self.obs;
                let out = if asynchronous {
                    run_shmem_async(a, r, &zeros, &cfg)
                } else {
                    run_shmem_sync(a, r, &zeros, &cfg)
                };
                self.absorb(out.obs);
                Ok(out.x)
            }
            InnerEngine::SimDistributed { asynchronous, .. } => {
                let plan = plan.expect("distributed level state always carries a plan");
                let mut cfg = DistConfig::new(n, self.seed);
                cfg.tol = 0.0;
                cfg.max_iterations = steps as u64;
                cfg.norm = self.norm;
                cfg.omega = self.omega;
                cfg.method = method;
                cfg.format = self.format;
                cfg.obs = self.obs;
                let out = if asynchronous {
                    run_dist_async_plan(a, r, &zeros, &plan, &cfg)
                } else {
                    run_dist_sync_plan(a, r, &zeros, &plan, &cfg)
                };
                self.absorb(out.obs);
                Ok(out.x)
            }
        }
    }
}

/// Runs an outer solve (`opts.outer` is `Some`) with `backend` as the
/// inner smoothing engine. Called by [`crate::driver::solve`] after format
/// resolution; owns all outer-specific validation.
pub(crate) fn run_outer(
    p: &Problem,
    backend: Backend,
    opts: &SolveOptions,
    spec: &OuterSpec,
    format: StorageFormat,
) -> Result<SolveReport, String> {
    if !matches!(opts.method, Method::Jacobi) {
        return Err(format!(
            "--method {} conflicts with --outer: the inner relaxation is the outer \
             selector's smooth=/prec= method",
            opts.method.name()
        ));
    }
    if opts.faults.as_ref().is_some_and(|f| !f.is_empty()) {
        return Err(
            "fault injection is not supported under --outer (inner solves run \
                    a fixed sweep count; fault semantics belong to standalone runs)"
                .into(),
        );
    }
    let (engine, engine_label) = match backend {
        Backend::Jacobi => (InnerEngine::Reference, "sequential reference".to_string()),
        Backend::AsyncThreads { workers } => (
            InnerEngine::Threads { workers },
            format!("async threads ×{workers}"),
        ),
        Backend::SimShared {
            workers,
            asynchronous,
        } => (
            InnerEngine::SimShared {
                workers,
                asynchronous,
            },
            format!(
                "simulated {} threads ×{workers}",
                if asynchronous { "async" } else { "sync" }
            ),
        ),
        Backend::SimDistributed {
            ranks,
            asynchronous,
            detect,
        } => {
            if detect {
                return Err(
                    "termination detection does not apply under --outer (inner solves \
                     run a fixed sweep count; the outer loop owns convergence)"
                        .into(),
                );
            }
            (
                InnerEngine::SimDistributed {
                    ranks,
                    asynchronous,
                },
                format!(
                    "simulated {} ranks ×{ranks}",
                    if asynchronous { "async" } else { "sync" }
                ),
            )
        }
        Backend::GaussSeidel | Backend::ConjugateGradient => {
            return Err(format!(
                "outer={} needs a relaxation backend for its inner sweeps (jacobi, \
                 threads, or the simulators); Gauss–Seidel and CG are standalone solvers",
                spec.name()
            ));
        }
        Backend::Net { .. } => {
            return Err(
                "the net backend cannot serve as an inner smoother (it would spawn \
                 processes per smoothing call); use the simulators or real threads"
                    .into(),
            );
        }
    };
    let smoothing = matches!(spec.kind, OuterKind::VCycle { .. });
    if opts.outer_plan.is_some() && !smoothing {
        return Err(format!(
            "a precomputed hierarchy (outer_plan) requires outer=vcycle, not outer={}",
            spec.name()
        ));
    }
    let mut smoother = EngineSmoother::new(engine, spec.smooth, smoothing, opts, format);
    let (out, levels) = match spec.kind {
        OuterKind::VCycle { levels, steps } => {
            let h = match &opts.outer_plan {
                Some(h) if h.matrix(0).nrows() == p.n() && h.matrix(0).nnz() == p.a.nnz() => {
                    Arc::clone(h)
                }
                Some(h) => {
                    return Err(format!(
                        "precomputed hierarchy was built for a different matrix \
                         ({} rows / {} nonzeros, problem has {} / {})",
                        h.matrix(0).nrows(),
                        h.matrix(0).nnz(),
                        p.n(),
                        p.a.nnz()
                    ));
                }
                None => {
                    Arc::new(Hierarchy::build(&p.a, levels).map_err(|e| format!("hierarchy: {e}"))?)
                }
            };
            let out = vcycle::solve(
                &h,
                &mut smoother,
                steps,
                &p.b,
                &p.x0,
                opts.tol,
                opts.max_iterations,
                opts.norm,
            )?;
            (out, h.shape())
        }
        OuterKind::Fcg { inner } => {
            let out = flex::fcg(
                &p.a,
                &p.b,
                &p.x0,
                &mut smoother,
                inner,
                opts.tol,
                opts.max_iterations,
                opts.norm,
            )?;
            (out, vec![(p.n(), p.a.nnz())])
        }
        OuterKind::Fgmres { inner, restart } => {
            let out = flex::fgmres(
                &p.a,
                &p.b,
                &p.x0,
                &mut smoother,
                inner,
                restart,
                opts.tol,
                opts.max_iterations,
                opts.norm,
            )?;
            (out, vec![(p.n(), p.a.nnz())])
        }
    };
    let iterations = (out.history.len() - 1) as u64;
    let mut metrics = smoother.into_snapshot();
    if let Some(snap) = &mut metrics {
        snap.set_counter("outer_iterations", iterations);
        snap.set_counter("outer_inner_sweeps", out.inner_sweeps);
    }
    let final_residual = p.relative_residual(&out.x, opts.norm);
    let history = out
        .history
        .iter()
        .enumerate()
        .map(|(k, &r)| (k as f64, r))
        .collect();
    Ok(SolveReport {
        backend: format!("outer={} on {engine_label}", spec.to_spec()),
        converged: final_residual < opts.tol,
        x: out.x,
        history,
        final_residual,
        comm: None,
        termination: None,
        faults: None,
        metrics,
        control: None,
        outer: Some(OuterReport {
            spec: spec.to_spec(),
            levels,
            iterations,
            inner_sweeps: out.inner_sweeps,
        }),
    })
}
