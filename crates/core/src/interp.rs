//! Interpolation helpers for residual curves.
//!
//! §VII-C: "to measure wall-clock times for a specific residual norm, linear
//! interpolation on the log10 of the relative residual norm was used."

/// First `x` at which a monotone-sampled residual curve crosses below
/// `target`, linearly interpolating on `log10(residual)` between bracketing
/// samples. The curve need not be monotone overall; the first crossing is
/// used. Returns `None` when the curve never reaches the target or is empty.
pub fn crossing_log10(curve: &[(f64, f64)], target: f64) -> Option<f64> {
    if target <= 0.0 {
        return None;
    }
    let mut prev: Option<(f64, f64)> = None;
    let lt = target.log10();
    for &(x, r) in curve {
        if r <= target {
            return match prev {
                None => Some(x),
                Some((px, pr)) => {
                    if pr <= 0.0 || r <= 0.0 {
                        return Some(x);
                    }
                    let (l0, l1) = (pr.log10(), r.log10());
                    if (l1 - l0).abs() < 1e-300 {
                        Some(x)
                    } else {
                        Some(px + (lt - l0) / (l1 - l0) * (x - px))
                    }
                }
            };
        }
        prev = Some((x, r));
    }
    None
}

/// `x` at which the curve has decayed by `factor` relative to its first
/// sample (e.g. `0.1` = one order of magnitude, the Figure 8 metric).
pub fn time_to_reduction(curve: &[(f64, f64)], factor: f64) -> Option<f64> {
    let first = curve.first()?.1;
    crossing_log10(curve, first * factor)
}

/// Geometric mean of the per-`x` residual reduction rate over a curve
/// (a scalar summary of a convergence curve's slope).
pub fn mean_reduction_rate(curve: &[(f64, f64)]) -> Option<f64> {
    let (x0, r0) = *curve.first()?;
    let (x1, r1) = *curve.last()?;
    if x1 <= x0 || r0 <= 0.0 || r1 <= 0.0 {
        return None;
    }
    Some((r1 / r0).powf(1.0 / (x1 - x0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_interpolates_logarithmically() {
        let curve = [(0.0, 1.0), (10.0, 1e-2)];
        let x = crossing_log10(&curve, 1e-1).unwrap();
        assert!((x - 5.0).abs() < 1e-12);
        // Target hit exactly at a sample.
        assert_eq!(crossing_log10(&curve, 1e-2), Some(10.0));
        // Unreachable.
        assert_eq!(crossing_log10(&curve, 1e-3), None);
        // First sample already below.
        assert_eq!(crossing_log10(&curve, 2.0), Some(0.0));
    }

    #[test]
    fn reduction_uses_first_sample_as_reference() {
        let curve = [(0.0, 0.5), (4.0, 0.05), (8.0, 0.005)];
        let x = time_to_reduction(&curve, 0.1).unwrap();
        assert!((x - 4.0).abs() < 1e-12);
        assert!(time_to_reduction(&curve, 1e-6).is_none());
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(crossing_log10(&[], 0.5), None);
        assert_eq!(crossing_log10(&[(0.0, 1.0)], 0.0), None);
        assert_eq!(mean_reduction_rate(&[]), None);
    }

    #[test]
    fn mean_rate_of_geometric_decay() {
        let curve: Vec<(f64, f64)> = (0..=10).map(|k| (k as f64, 0.5f64.powi(k))).collect();
        let rate = mean_reduction_rate(&curve).unwrap();
        assert!((rate - 0.5).abs() < 1e-12);
    }
}
