//! # aj-core
//!
//! The public façade of the asynchronous Jacobi reproduction. Downstream
//! users interact with three ideas:
//!
//! * a [`Problem`] — matrix (unit-diagonal scaled, as the paper assumes),
//!   right-hand side, and initial iterate, constructed from the paper's
//!   generators, the Table I analogues, or a Matrix Market file;
//! * a solver run — pick a backend and call it:
//!   - [`aj_model`] for the §IV propagation-matrix model,
//!   - [`aj_shmem`] for real threads (§V),
//!   - [`aj_dmsim`] for simulated threads/ranks at paper scale (§V–§VI);
//! * a [`report::Series`] — a labelled `(x, y)` curve with text-table and
//!   CSV output, the common currency of every figure bench.
//!
//! ```
//! use aj_core::{Problem, report::Series};
//! use aj_linalg::vecops::Norm;
//!
//! // The paper's 68-row FD matrix, one worker per row, one slow worker:
//! let p = Problem::paper_fd("fd68", 42).unwrap();
//! let schedule = aj_model::DelaySchedule::single_slow_row(34, 20);
//! let run = aj_model::run_async_model(&p.a, &p.b, &p.x0, &schedule,
//!                                     1e-3, 100_000, Norm::L1).unwrap();
//! assert!(run.converged);
//! ```

pub mod driver;
pub mod interp;
pub mod outer;
pub mod problem;
pub mod report;
pub mod spec;

pub use driver::{prepare_dist_plan, solve, Backend, SolveOptions, SolveReport};
pub use outer::{Hierarchy, OuterKind, OuterReport, OuterSpec};
pub use problem::Problem;

// Re-export the sub-crates under their natural names so a single dependency
// on `aj-core` suffices.
pub use aj_dmsim as dmsim;
pub use aj_linalg as linalg;
pub use aj_matrices as matrices;
pub use aj_model as model;
pub use aj_net as net;
pub use aj_obs as obs;
pub use aj_partition as partition;
pub use aj_shmem as shmem;
pub use aj_trace as trace;
