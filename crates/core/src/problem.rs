//! Problem construction: matrix + right-hand side + initial iterate.

use aj_linalg::{CsrMatrix, LinalgError};
use aj_matrices::{fd, fe, mm, rhs, suite};
use std::path::Path;

/// A linear system in the paper's canonical form: symmetric `A` scaled to a
/// unit diagonal, random `b` and `x0` in `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Short name for reports.
    pub name: String,
    /// The system matrix (unit diagonal).
    pub a: CsrMatrix,
    /// Right-hand side.
    pub b: Vec<f64>,
    /// Initial iterate.
    pub x0: Vec<f64>,
}

impl Problem {
    /// Wraps an arbitrary matrix: scales it to unit diagonal and draws the
    /// paper's random `b`/`x0` with the given seed.
    pub fn from_matrix(
        name: impl Into<String>,
        a: CsrMatrix,
        seed: u64,
    ) -> Result<Problem, LinalgError> {
        let a = a.scale_to_unit_diagonal()?;
        let (b, x0) = rhs::paper_problem(a.nrows(), seed);
        Ok(Problem {
            name: name.into(),
            a,
            b,
            x0,
        })
    }

    /// One of the paper's FD matrices by name (`"fd40"`, `"fd68"`,
    /// `"fd272"`, `"fd4624"`).
    pub fn paper_fd(which: &str, seed: u64) -> Option<Problem> {
        let a = fd::paper_fd(which)?;
        Some(Self::from_matrix(which, a, seed).expect("FD matrices have positive diagonals"))
    }

    /// The paper's FE matrix (`ρ(G) > 1`; synchronous Jacobi diverges).
    pub fn paper_fe(seed: u64) -> Problem {
        let a = fe::paper_fe_matrix(); // already unit-diagonal
        let (b, x0) = rhs::paper_problem(a.nrows(), seed);
        Problem {
            name: "fe".into(),
            a,
            b,
            x0,
        }
    }

    /// A Table I analogue by SuiteSparse name.
    pub fn suite(name: &str, scale: suite::Scale, seed: u64) -> Option<Problem> {
        let p = suite::find_problem(name)?;
        let a = p.build(scale); // unit-diagonal by construction
        let (b, x0) = rhs::paper_problem(a.nrows(), seed);
        Some(Problem {
            name: p.name.into(),
            a,
            b,
            x0,
        })
    }

    /// Loads a Matrix Market file (e.g. a real SuiteSparse matrix) and puts
    /// it in canonical form.
    pub fn from_matrix_market(path: &Path, seed: u64) -> Result<Problem, LinalgError> {
        let a = mm::read_matrix_market_file(path)?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        Self::from_matrix(name, a, seed)
    }

    /// Problem size.
    pub fn n(&self) -> usize {
        self.a.nrows()
    }

    /// Relative residual of an iterate in the requested norm.
    pub fn relative_residual(&self, x: &[f64], norm: aj_linalg::vecops::Norm) -> f64 {
        self.a.relative_residual(x, &self.b, norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_linalg::vecops::Norm;

    #[test]
    fn paper_fd_problems_are_canonical() {
        let p = Problem::paper_fd("fd68", 1).unwrap();
        assert_eq!(p.n(), 68);
        assert!((p.a.get(0, 0) - 1.0).abs() < 1e-14);
        assert!(p.b.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert!(Problem::paper_fd("fd9999", 1).is_none());
    }

    #[test]
    fn fe_problem_has_rho_above_one() {
        let p = Problem::paper_fe(2);
        let rho = aj_linalg::eigen::jacobi_spectral_radius_unit_diag(&p.a, 120).unwrap();
        assert!(rho > 1.0);
    }

    #[test]
    fn suite_lookup_and_residual() {
        let p = Problem::suite("ecology2", aj_matrices::suite::Scale::Tiny, 3).unwrap();
        let r0 = p.relative_residual(&p.x0, Norm::L1);
        assert!(r0 > 0.1, "random start should not be converged, r0 = {r0}");
        assert!(Problem::suite("unknown", aj_matrices::suite::Scale::Tiny, 3).is_none());
    }

    #[test]
    fn from_matrix_scales_diagonal() {
        let a = aj_matrices::fd::laplacian_1d(5);
        let p = Problem::from_matrix("chain", a, 7).unwrap();
        for i in 0..5 {
            assert!((p.a.get(i, i) - 1.0).abs() < 1e-14);
        }
        assert_eq!(p.name, "chain");
    }

    #[test]
    fn seeds_change_data_not_matrix() {
        let p1 = Problem::paper_fd("fd40", 1).unwrap();
        let p2 = Problem::paper_fd("fd40", 2).unwrap();
        assert_eq!(p1.a, p2.a);
        assert_ne!(p1.b, p2.b);
    }
}
