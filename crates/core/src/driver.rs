//! One entry point over every solver backend.
//!
//! Library users who just want "solve this system (a)synchronously and give
//! me the history" can use [`solve`] instead of learning each sub-crate's
//! API. The figure benches drive the sub-crates directly for fine control.

use crate::outer::{run_outer, Hierarchy, OuterKind, OuterReport, OuterSpec};
use crate::problem::Problem;
use aj_control::{ControlConfig, ControlSpec, ControlStats};
use aj_dmsim::monitor::CommVolume;
use aj_dmsim::shmem_sim::{run_shmem_async, run_shmem_sync, ShmemSimConfig};
use aj_dmsim::{
    run_dist_async_plan, run_dist_sync_plan, DistConfig, FaultPlan, FaultStats,
    TerminationProtocol, TerminationStats,
};
use aj_linalg::method::{method_solve, Method, ResolvedMethod, SafeInterval};
use aj_linalg::vecops::Norm;
use aj_linalg::{krylov, sweeps, StorageFormat};
use aj_net::{run_net, NetConfig};
use aj_obs::{ObsConfig, Snapshot};
use aj_partition::{block_partition, CommPlan};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which solver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// Sequential synchronous Jacobi (the reference).
    Jacobi,
    /// Sequential Gauss–Seidel.
    GaussSeidel,
    /// Conjugate Gradients (SPD baseline).
    ConjugateGradient,
    /// Real `std::thread` asynchronous Jacobi with `workers` threads.
    AsyncThreads {
        /// Worker thread count.
        workers: usize,
    },
    /// Simulated shared-memory threads.
    SimShared {
        /// Simulated worker count.
        workers: usize,
        /// Barriered (synchronous) or racy (asynchronous).
        asynchronous: bool,
    },
    /// Simulated distributed ranks (one-sided puts).
    SimDistributed {
        /// Rank count.
        ranks: usize,
        /// Barriered (synchronous) or racy (asynchronous).
        asynchronous: bool,
        /// Stop through the termination-detection protocol rather than the
        /// omniscient monitor (asynchronous only).
        detect: bool,
    },
    /// Real distributed ranks: one OS process per rank exchanging
    /// element-atomic ghost puts over loopback TCP (`aj-net`). Always
    /// asynchronous and always stops through the termination-detection
    /// protocol (there is no omniscient monitor across processes).
    Net {
        /// Rank (child process) count.
        ranks: usize,
    },
}

/// Common solve options.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Relative residual tolerance.
    pub tol: f64,
    /// Iteration cap (per worker for parallel backends).
    pub max_iterations: u64,
    /// Residual norm.
    pub norm: Norm,
    /// Relaxation weight (ignored by CG).
    pub omega: f64,
    /// Relaxation method (see [`aj_linalg::method`] and
    /// [`crate::spec::parse_method`]). The default [`Method::Jacobi`] keeps
    /// every backend on its classic path; non-default methods are honoured
    /// by the Jacobi-family backends (sequential Jacobi, real threads, and
    /// both simulators) and rejected by Gauss–Seidel and CG. `omega=auto`
    /// variants estimate the preconditioned spectrum from the problem's
    /// matrix at solve time.
    pub method: Method,
    /// Sweep storage format (see [`aj_linalg::kernel`] and
    /// [`crate::spec::parse_format`]). The default [`StorageFormat::Csr`]
    /// keeps every backend on its classic scalar loop, bit-identically.
    /// Non-default formats are honoured by the asynchronous block engines
    /// (real threads and both simulators' async modes) and rejected
    /// elsewhere rather than silently ignored.
    pub format: StorageFormat,
    /// Seed for simulated-backend jitter.
    pub seed: u64,
    /// Fault injection for the asynchronous simulated distributed backend
    /// (crashes, stalls, lossy links) and — crashes only, no recovery —
    /// the real-process [`Backend::Net`], where a crash at time `at`
    /// kills the child process `at` milliseconds after the solve starts.
    /// Any other backend rejects a non-empty plan rather than silently
    /// ignoring it.
    pub faults: Option<FaultPlan>,
    /// Override for the termination protocol's report staleness timeout
    /// (`None` keeps the protocol default of "never presume a rank
    /// dead"). Units follow the backend's clock: simulated time units for
    /// [`Backend::SimDistributed`] with `detect`, wall-clock **seconds**
    /// for [`Backend::Net`].
    pub staleness_timeout: Option<f64>,
    /// Per-sweep pacing for [`Backend::Net`] in microseconds (`None`
    /// keeps the crate default). Pacing keeps put latency under the
    /// sweep period — the staleness regime the paper's model (and the
    /// termination protocol's inconsistent-read safety factor) covers.
    /// Any other backend rejects an explicit value rather than silently
    /// ignoring it.
    pub pace_us: Option<u64>,
    /// Observability recording (off by default; zero overhead when off).
    /// Honoured by the parallel backends — real threads and both simulators;
    /// the sequential reference sweeps have nothing useful to record and
    /// leave [`SolveReport::metrics`] as `None`.
    pub obs: ObsConfig,
    /// Prebuilt communication plan for [`Backend::SimDistributed`] and
    /// [`Backend::Net`]: the block partition and ghost/send lists derived
    /// from the problem's matrix. Must have been built for *this* problem's matrix with
    /// [`prepare_dist_plan`] (or equivalent) and a part count equal to the
    /// backend's `ranks` — mismatched part counts are rejected. `None`
    /// (the default) builds the plan per call; the `aj-serve` plan cache
    /// passes a cached one to skip the O(nnz) assembly on repeat solves.
    pub plan: Option<Arc<CommPlan>>,
    /// Outer solve (`None` = classic standalone run, bit-identical to the
    /// pre-outer build). When set, the backend becomes the *inner* engine:
    /// the outer V-cycle or flexible Krylov loop owns convergence and calls
    /// it for fixed sweep counts (see [`crate::outer`] and
    /// [`crate::spec::parse_outer`]).
    pub outer: Option<OuterSpec>,
    /// Prebuilt multigrid hierarchy for `outer=vcycle`, mirroring `plan`:
    /// must have been built from *this* problem's matrix (row and nonzero
    /// counts are checked). `None` builds it per call; the `aj-serve` plan
    /// cache passes a cached one to skip the O(levels·nnz) coarsening on
    /// repeat solves.
    pub outer_plan: Option<Arc<Hierarchy>>,
    /// Closed-loop controller (see [`aj_control`] and
    /// [`crate::spec::parse_control`]): adapts ω/β toward the delay-safe
    /// window from observed staleness, switches a stalled momentum method
    /// to first-order, sheds persistently stale workers, and can request an
    /// outer rescue that [`solve`] honours by re-running under the default
    /// V-cycle. Honoured by the asynchronous engines (real threads and both
    /// simulators' async modes) and rejected elsewhere. `None` — the
    /// default — keeps every backend bit-identical to its uncontrolled
    /// form.
    pub control: Option<ControlConfig>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tol: 1e-6,
            max_iterations: 100_000,
            norm: Norm::L1,
            omega: 1.0,
            method: Method::Jacobi,
            format: StorageFormat::Csr,
            seed: 2018,
            faults: None,
            staleness_timeout: None,
            pace_us: None,
            obs: ObsConfig::off(),
            plan: None,
            outer: None,
            outer_plan: None,
            control: None,
        }
    }
}

/// Builds the communication plan [`solve`] would build internally for
/// `Backend::SimDistributed { ranks, .. }` or `Backend::Net { ranks }` on
/// this problem: the block partition plus per-rank ghost/send lists. Callers that solve the same
/// problem repeatedly cache the result and pass it via
/// [`SolveOptions::plan`].
pub fn prepare_dist_plan(p: &Problem, ranks: usize) -> CommPlan {
    CommPlan::build(&p.a, &block_partition(p.n(), ranks))
}

/// What a solve produced.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Human-readable backend description.
    pub backend: String,
    /// Final iterate.
    pub x: Vec<f64>,
    /// `(x-axis, relative residual)` curve. The x-axis is iterations for
    /// sequential backends, wall-clock seconds for real threads, and
    /// simulated ticks for simulated backends.
    pub history: Vec<(f64, f64)>,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// True final relative residual (recomputed).
    pub final_residual: f64,
    /// Communication volume incl. drop/duplicate/reorder counts
    /// (simulated distributed backends only).
    pub comm: Option<CommVolume>,
    /// Termination-detection statistics (distributed `detect` runs only).
    pub termination: Option<TerminationStats>,
    /// Fault-injection statistics (faulted distributed runs only).
    pub faults: Option<FaultStats>,
    /// Observability snapshot (counters, staleness/latency histograms,
    /// per-rank timelines) when [`SolveOptions::obs`] enabled recording and
    /// the backend supports it.
    pub metrics: Option<Snapshot>,
    /// Outer-solve summary (hierarchy shape, outer iterations, inner sweep
    /// total) when [`SolveOptions::outer`] was set; `None` on standalone
    /// runs.
    pub outer: Option<OuterReport>,
    /// Controller decision record (decisions, final parameters, shed
    /// workers) when [`SolveOptions::control`] was set; `None` on
    /// uncontrolled runs.
    pub control: Option<ControlStats>,
}

/// Solves `p` with the chosen backend.
///
/// # Errors
/// Returns a message for solver-level failures (e.g. CG breakdown).
pub fn solve(p: &Problem, backend: Backend, opts: &SolveOptions) -> Result<SolveReport, String> {
    if opts.faults.as_ref().is_some_and(|f| !f.is_empty())
        && !matches!(
            backend,
            Backend::SimDistributed {
                asynchronous: true,
                ..
            } | Backend::Net { .. }
        )
    {
        return Err(
            "fault injection requires the asynchronous simulated distributed backend \
             or the real-process net backend"
                .into(),
        );
    }
    if opts.pace_us.is_some() && !matches!(backend, Backend::Net { .. }) {
        return Err("sweep pacing (--pace) applies to the net backend only".into());
    }
    if opts.control.is_some() {
        if opts.outer.is_some() {
            return Err(
                "--control conflicts with --outer: inner solves run fixed sweep counts, \
                 so there is no convergence loop for the controller to observe \
                 (a controller-requested rescue escalates to --outer by itself)"
                    .into(),
            );
        }
        if !matches!(
            backend,
            Backend::AsyncThreads { .. }
                | Backend::SimShared {
                    asynchronous: true,
                    ..
                }
                | Backend::SimDistributed {
                    asynchronous: true,
                    ..
                }
        ) {
            return Err(
                "the controller (--control) applies to the asynchronous engines only \
                 (real threads and the simulators' async modes)"
                    .into(),
            );
        }
    }
    // Plan-time storage-format auto-selection: `format=auto` measures the
    // matrix's row-length statistics and picks the cheapest bit-compatible
    // layout for the asynchronous block engines (SELL-8 when the padding it
    // would add stays under [`aj_linalg::kernel::AUTO_PADDING_MAX`], CSR
    // otherwise). Backends that only run CSR get CSR — auto adapts to the
    // engine rather than erroring like an explicit selector would.
    let format_engines = matches!(
        backend,
        Backend::AsyncThreads { .. }
            | Backend::SimShared {
                asynchronous: true,
                ..
            }
            | Backend::SimDistributed {
                asynchronous: true,
                ..
            }
            | Backend::Net { .. }
    );
    let (format, auto_picked) = match opts.format {
        StorageFormat::Auto => {
            let picked = if format_engines {
                aj_linalg::kernel::auto_select(&p.a)
            } else {
                StorageFormat::Csr
            };
            (picked, true)
        }
        f => (f, false),
    };
    // Record which concrete format auto picked so runs are auditable from
    // their metrics alone (only when the backend produced a snapshot).
    let stamp_auto = |mut rep: SolveReport| {
        if auto_picked {
            if let Some(snap) = &mut rep.metrics {
                snap.set_counter(&format!("format_auto_{format}"), 1);
            }
        }
        rep
    };
    // Outer solves invert control: the V-cycle / flexible Krylov loop owns
    // convergence and uses the backend as its inner smoothing engine.
    if let Some(spec) = &opts.outer {
        return run_outer(p, backend, opts, spec, format).map(stamp_auto);
    }
    if opts.outer_plan.is_some() {
        return Err("a precomputed hierarchy (outer_plan) requires outer=vcycle".into());
    }
    // Resolve the method once against this problem's matrix (free for the
    // default; `omega=auto` runs the Lanczos spectrum estimate here). The
    // resolution also records the SPD-safe (ω, β) interval the estimate
    // implies, which the controller clamps against.
    let resolution = opts
        .method
        .resolve_full(&p.a, opts.seed)
        .map_err(|e| format!("method {}: {e}", opts.method.name()))?;
    let method = resolution.method;
    // The controller needs the safe interval even when the method resolved
    // without a spectrum estimate (fixed parameters, plain Jacobi): run the
    // estimate at plan time so the in-loop controller never does.
    let control_spec = match &opts.control {
        Some(cfg) => {
            let interval = match resolution.interval {
                Some(iv) => iv,
                None => SafeInterval::estimate(&p.a)
                    .map_err(|e| format!("control interval estimate: {e}"))?,
            };
            Some(ControlSpec {
                cfg: *cfg,
                interval,
            })
        }
        None => None,
    };
    if !matches!(method, ResolvedMethod::Jacobi)
        && matches!(backend, Backend::GaussSeidel | Backend::ConjugateGradient)
    {
        return Err(format!(
            "method {} applies to the Jacobi-family backends only",
            method.label()
        ));
    }
    // Tag non-default methods onto the backend label so reports and logs
    // say which update rule actually ran.
    let method_tag = if matches!(method, ResolvedMethod::Jacobi) {
        String::new()
    } else {
        format!(" [{}]", method.label())
    };
    // Non-default storage formats change how the asynchronous block engines
    // lay out their sweep kernels; the sequential and synchronous reference
    // paths stay on the classic CSR loops, so reject rather than silently
    // ignore the selector there.
    if format != StorageFormat::Csr && !format_engines {
        return Err(format!(
            "format {format} applies to the asynchronous block engines only \
             (sequential and synchronous backends are csr-only)"
        ));
    }
    let format_tag = if format == StorageFormat::Csr {
        String::new()
    } else {
        format!(" [{format}]")
    };
    let report = |label: String, x: Vec<f64>, history: Vec<(f64, f64)>| {
        let final_residual = p.relative_residual(&x, opts.norm);
        SolveReport {
            backend: label,
            converged: final_residual < opts.tol,
            x,
            history,
            final_residual,
            comm: None,
            termination: None,
            faults: None,
            metrics: None,
            outer: None,
            control: None,
        }
    };
    let rep: Result<SolveReport, String> = match backend {
        Backend::Jacobi => {
            if !matches!(method, ResolvedMethod::Jacobi) {
                let out = method_solve(
                    &p.a,
                    &p.b,
                    &p.x0,
                    &method,
                    opts.tol,
                    opts.max_iterations as usize,
                    opts.norm,
                )
                .map_err(|e| e.to_string())?;
                let curve = out
                    .history
                    .iter()
                    .enumerate()
                    .map(|(k, &r)| (k as f64, r))
                    .collect();
                Ok(report(format!("sequential{method_tag}"), out.x, curve))
            } else if opts.omega == 1.0 {
                let (x, hist) = sweeps::jacobi_solve(
                    &p.a,
                    &p.b,
                    &p.x0,
                    opts.tol,
                    opts.max_iterations as usize,
                    opts.norm,
                )
                .map_err(|e| e.to_string())?;
                let curve = hist
                    .iter()
                    .enumerate()
                    .map(|(k, &r)| (k as f64, r))
                    .collect();
                Ok(report("Jacobi".into(), x, curve))
            } else {
                let diag_inv: Vec<f64> = p.a.diagonal().iter().map(|d| 1.0 / d).collect();
                let mut x = p.x0.clone();
                let mut x_next = vec![0.0; p.n()];
                let mut curve = vec![(0.0, p.relative_residual(&x, opts.norm))];
                for k in 1..=opts.max_iterations {
                    sweeps::weighted_jacobi_iteration(
                        &p.a,
                        &p.b,
                        &diag_inv,
                        opts.omega,
                        &x,
                        &mut x_next,
                    );
                    std::mem::swap(&mut x, &mut x_next);
                    let r = p.relative_residual(&x, opts.norm);
                    curve.push((k as f64, r));
                    if r < opts.tol {
                        break;
                    }
                }
                Ok(report(
                    format!("damped Jacobi (ω={})", opts.omega),
                    x,
                    curve,
                ))
            }
        }
        Backend::GaussSeidel => {
            let (x, hist) = sweeps::gauss_seidel_solve(
                &p.a,
                &p.b,
                &p.x0,
                opts.tol,
                opts.max_iterations as usize,
                opts.norm,
            )
            .map_err(|e| e.to_string())?;
            let curve = hist
                .iter()
                .enumerate()
                .map(|(k, &r)| (k as f64, r))
                .collect();
            Ok(report("Gauss–Seidel".into(), x, curve))
        }
        Backend::ConjugateGradient => {
            let r = krylov::conjugate_gradient(
                &p.a,
                &p.b,
                &p.x0,
                opts.tol,
                opts.max_iterations as usize,
                opts.norm,
            )
            .map_err(|e| e.to_string())?;
            let curve = r
                .history
                .iter()
                .enumerate()
                .map(|(k, &v)| (k as f64, v))
                .collect();
            Ok(report("Conjugate Gradients".into(), r.x, curve))
        }
        Backend::AsyncThreads { workers } => {
            let cfg = aj_shmem::ShmemConfig {
                num_threads: workers,
                tol: opts.tol,
                max_iterations: opts.max_iterations as usize,
                norm: opts.norm,
                mode: aj_shmem::Mode::Asynchronous,
                omega: opts.omega,
                method,
                format,
                obs: opts.obs,
                control: control_spec,
                ..Default::default()
            };
            let out = aj_shmem::solver::run(&p.a, &p.b, &p.x0, &cfg);
            let mut rep = report(
                format!("async threads ×{workers}{method_tag}{format_tag}"),
                out.x,
                out.residual_history,
            );
            rep.metrics = out.obs;
            rep.control = out.control;
            Ok(rep)
        }
        Backend::SimShared {
            workers,
            asynchronous,
        } => {
            let mut cfg = ShmemSimConfig::new(workers, p.n(), opts.seed);
            cfg.tol = opts.tol;
            cfg.max_iterations = opts.max_iterations;
            cfg.norm = opts.norm;
            cfg.omega = opts.omega;
            cfg.method = method;
            cfg.format = format;
            cfg.obs = opts.obs;
            cfg.control = control_spec;
            let out = if asynchronous {
                run_shmem_async(&p.a, &p.b, &p.x0, &cfg)
            } else {
                run_shmem_sync(&p.a, &p.b, &p.x0, &cfg)
            };
            let curve = out.samples.iter().map(|s| (s.time, s.residual)).collect();
            let kind = if asynchronous { "async" } else { "sync" };
            let mut rep = report(
                format!("simulated {kind} threads ×{workers}{method_tag}{format_tag}"),
                out.x,
                curve,
            );
            rep.metrics = out.obs;
            rep.control = out.control;
            Ok(rep)
        }
        Backend::SimDistributed {
            ranks,
            asynchronous,
            detect,
        } => {
            let plan = match &opts.plan {
                Some(plan) if plan.nparts() == ranks => Arc::clone(plan),
                Some(plan) => {
                    return Err(format!(
                        "precomputed plan has {} parts but the backend wants {ranks} ranks",
                        plan.nparts()
                    ));
                }
                None => Arc::new(prepare_dist_plan(p, ranks)),
            };
            let mut cfg = DistConfig::new(p.n(), opts.seed);
            cfg.tol = opts.tol;
            cfg.max_iterations = opts.max_iterations;
            cfg.norm = opts.norm;
            cfg.omega = opts.omega;
            cfg.method = method;
            cfg.format = format;
            cfg.obs = opts.obs;
            if detect && asynchronous {
                let mut proto = TerminationProtocol::default();
                if let Some(timeout) = opts.staleness_timeout {
                    proto.staleness_timeout = timeout;
                }
                cfg.termination = Some(proto);
            }
            if asynchronous {
                cfg.faults = opts.faults.clone();
                cfg.control = control_spec;
            }
            let out = if asynchronous {
                run_dist_async_plan(&p.a, &p.b, &p.x0, &plan, &cfg)
            } else {
                run_dist_sync_plan(&p.a, &p.b, &p.x0, &plan, &cfg)
            };
            let curve = out.samples.iter().map(|s| (s.time, s.residual)).collect();
            let kind = if asynchronous { "async" } else { "sync" };
            let mut rep = report(
                format!("simulated {kind} ranks ×{ranks}{method_tag}{format_tag}"),
                out.x,
                curve,
            );
            rep.comm = Some(out.comm);
            rep.termination = out.termination;
            rep.faults = out.faults;
            rep.metrics = out.obs;
            rep.control = out.control;
            Ok(rep)
        }
        Backend::Net { ranks } => {
            let plan = match &opts.plan {
                Some(plan) if plan.nparts() == ranks => Arc::clone(plan),
                Some(plan) => {
                    return Err(format!(
                        "precomputed plan has {} parts but the backend wants {ranks} ranks",
                        plan.nparts()
                    ));
                }
                None => Arc::new(prepare_dist_plan(p, ranks)),
            };
            let mut cfg = NetConfig::new(ranks);
            cfg.tol = opts.tol;
            cfg.max_iterations = opts.max_iterations;
            cfg.omega = opts.omega;
            cfg.method = method;
            cfg.format = format;
            cfg.seed = opts.seed;
            cfg.obs = opts.obs;
            if let Some(timeout) = opts.staleness_timeout {
                // Wall-clock seconds for real processes (the simulator's
                // timeout is in simulated ticks).
                cfg.staleness_timeout = timeout;
            }
            if let Some(pace) = opts.pace_us {
                cfg.pace_us = pace;
            }
            if let Some(faults) = &opts.faults {
                // Real processes can only die: a crash kills the child
                // `at` milliseconds after the solve starts. Recovery,
                // stalls, and link rules are simulator-only affordances.
                if !faults.stalls.is_empty() || !faults.links.is_empty() {
                    return Err(
                        "the net backend supports crash faults only (no stalls or link rules)"
                            .into(),
                    );
                }
                for crash in &faults.crashes {
                    if crash.recover_after.is_some() {
                        return Err(format!(
                            "the net backend cannot recover a killed process \
                             (crash of rank {} specifies a recovery)",
                            crash.rank
                        ));
                    }
                    cfg.hooks.kills.push((crash.rank, crash.at as u64));
                }
            }
            let out = run_net(&p.a, &p.b, &p.x0, &plan, &cfg)?;
            let mut rep = report(
                format!("net processes ×{ranks}{method_tag}{format_tag}"),
                out.x,
                out.history,
            );
            rep.comm = Some(out.comm);
            rep.termination = Some(out.termination);
            rep.metrics = out.obs;
            Ok(rep)
        }
    };
    let rep = stamp_auto(rep?);
    // Controller-requested rescue: the stalled standalone run is abandoned
    // and the solve escalates to the default V-cycle outer around the same
    // backend (control off — the outer loop owns convergence from here).
    // The stalled run's decision record is kept on the rescued report so
    // callers see why the escalation happened.
    if let Some(stats) = &rep.control {
        if stats.rescue_requested && !rep.converged {
            if opts.faults.as_ref().is_some_and(|f| !f.is_empty()) {
                // Outer solves reject fault plans; surface the stalled run
                // and its decision record rather than silently dropping
                // the faults for the rescue.
                return Ok(rep);
            }
            let mut rescue_opts = opts.clone();
            rescue_opts.control = None;
            // The stalled method is abandoned; the V-cycle's smoother is
            // the outer selector's own (spectrum-damped Richardson).
            rescue_opts.method = Method::Jacobi;
            rescue_opts.outer = Some(OuterSpec {
                kind: OuterKind::VCycle {
                    levels: None,
                    steps: OuterSpec::DEFAULT_STEPS,
                },
                smooth: OuterSpec::default_smooth(),
            });
            let mut rescued = solve(p, backend, &rescue_opts)?;
            rescued.backend = format!("{} → rescue: {}", rep.backend, rescued.backend);
            rescued.control = rep.control;
            return Ok(rescued);
        }
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> Problem {
        let a = aj_matrices::fd::laplacian_2d(10, 10);
        Problem::from_matrix("fd-10x10", a, 7).unwrap()
    }

    #[test]
    fn every_backend_solves_the_poisson_problem() {
        let p = problem();
        let opts = SolveOptions {
            tol: 1e-6,
            ..Default::default()
        };
        for backend in [
            Backend::Jacobi,
            Backend::GaussSeidel,
            Backend::ConjugateGradient,
            Backend::AsyncThreads { workers: 3 },
            Backend::SimShared {
                workers: 10,
                asynchronous: true,
            },
            Backend::SimShared {
                workers: 10,
                asynchronous: false,
            },
            Backend::SimDistributed {
                ranks: 5,
                asynchronous: true,
                detect: false,
            },
            Backend::SimDistributed {
                ranks: 5,
                asynchronous: true,
                detect: true,
            },
            Backend::SimDistributed {
                ranks: 5,
                asynchronous: false,
                detect: false,
            },
        ] {
            let r = solve(&p, backend, &opts).unwrap_or_else(|e| panic!("{backend:?}: {e}"));
            assert!(
                r.converged,
                "{} failed: residual {}",
                r.backend, r.final_residual
            );
            assert!(!r.history.is_empty());
        }
    }

    #[test]
    fn faulted_distributed_solve_surfaces_fault_accounting() {
        let p = problem();
        let opts = SolveOptions {
            tol: 1e-4,
            faults: Some(
                FaultPlan::new(1)
                    .with_crash(2, 5_000.0, Some(4_000.0))
                    .with_link(aj_dmsim::LinkFault {
                        drop: 0.05,
                        ..aj_dmsim::LinkFault::everywhere()
                    }),
            ),
            ..Default::default()
        };
        let backend = Backend::SimDistributed {
            ranks: 5,
            asynchronous: true,
            detect: false,
        };
        let r = solve(&p, backend, &opts).unwrap();
        let faults = r.faults.expect("fault stats must surface");
        assert_eq!(faults.crash_times.len(), 1);
        assert_eq!(faults.recovery_times.len(), 1);
        assert!(r.comm.expect("comm stats must surface").drops > 0);
        // Every other backend rejects a non-empty plan instead of silently
        // ignoring it.
        assert!(solve(&p, Backend::Jacobi, &opts).is_err());
        let sync_dist = Backend::SimDistributed {
            ranks: 5,
            asynchronous: false,
            detect: false,
        };
        assert!(solve(&p, sync_dist, &opts).is_err());
    }

    #[test]
    fn net_backend_rejects_simulator_only_faults() {
        // These rejections fire before any process is spawned, so the test
        // is hermetic. (End-to-end net solves live in the aj-cli and
        // aj-net test suites, which can point AJ_NET_CHILD at a binary
        // with the `_rank` entrypoint.)
        let p = problem();
        let net = Backend::Net { ranks: 4 };
        let with_faults = |f: FaultPlan| SolveOptions {
            faults: Some(f),
            ..Default::default()
        };
        let err = solve(
            &p,
            net,
            &with_faults(FaultPlan::new(1).with_stall(1, 100.0, 50.0)),
        )
        .unwrap_err();
        assert!(err.contains("crash faults only"), "{err}");
        let err = solve(
            &p,
            net,
            &with_faults(FaultPlan::new(1).with_link(aj_dmsim::LinkFault::everywhere())),
        )
        .unwrap_err();
        assert!(err.contains("crash faults only"), "{err}");
        let err = solve(
            &p,
            net,
            &with_faults(FaultPlan::new(1).with_crash(2, 100.0, Some(50.0))),
        )
        .unwrap_err();
        assert!(err.contains("cannot recover"), "{err}");
        // A mismatched precomputed plan is caught before spawning too.
        let opts = SolveOptions {
            plan: Some(Arc::new(prepare_dist_plan(&p, 5))),
            ..Default::default()
        };
        assert!(solve(&p, net, &opts).is_err());
    }

    #[test]
    fn obs_flows_through_every_parallel_backend() {
        let p = problem();
        let opts = SolveOptions {
            tol: 1e-4,
            obs: ObsConfig::sampled(4),
            ..Default::default()
        };
        for backend in [
            Backend::AsyncThreads { workers: 2 },
            Backend::SimShared {
                workers: 4,
                asynchronous: true,
            },
            Backend::SimDistributed {
                ranks: 4,
                asynchronous: true,
                detect: false,
            },
        ] {
            let r = solve(&p, backend, &opts).unwrap();
            let snap = r
                .metrics
                .unwrap_or_else(|| panic!("{backend:?} dropped the obs snapshot"));
            assert!(
                snap.counters.get("relaxations").copied().unwrap_or(0) > 0,
                "{backend:?} recorded no relaxations"
            );
        }
        // Sequential backends have nothing to record; obs is silently off.
        let r = solve(&p, Backend::Jacobi, &opts).unwrap();
        assert!(r.metrics.is_none());
        // And the default (off) records nothing on parallel backends either.
        let r = solve(
            &p,
            Backend::SimDistributed {
                ranks: 4,
                asynchronous: true,
                detect: false,
            },
            &SolveOptions {
                tol: 1e-4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.metrics.is_none());
    }

    #[test]
    fn precomputed_plan_matches_per_call_build_and_rejects_mismatch() {
        let p = problem();
        let backend = Backend::SimDistributed {
            ranks: 5,
            asynchronous: true,
            detect: false,
        };
        let fresh = solve(&p, backend, &SolveOptions::default()).unwrap();
        let opts = SolveOptions {
            plan: Some(Arc::new(prepare_dist_plan(&p, 5))),
            ..Default::default()
        };
        let cached = solve(&p, backend, &opts).unwrap();
        // The plan is pure derived state: reusing it must not change a bit.
        assert_eq!(fresh.x, cached.x);
        assert_eq!(fresh.history, cached.history);
        let wrong = SolveOptions {
            plan: Some(Arc::new(prepare_dist_plan(&p, 4))),
            ..Default::default()
        };
        assert!(solve(&p, backend, &wrong).is_err());
    }

    #[test]
    fn methods_flow_through_every_jacobi_family_backend() {
        let p = problem();
        for selector in [
            "richardson1:omega=0.9",
            "richardson2:omega=1.0:beta=0.3",
            "rwr:fraction=0.5",
        ] {
            let opts = SolveOptions {
                tol: 1e-5,
                method: crate::spec::parse_method(selector).unwrap(),
                ..Default::default()
            };
            for backend in [
                Backend::Jacobi,
                Backend::AsyncThreads { workers: 2 },
                Backend::SimShared {
                    workers: 4,
                    asynchronous: true,
                },
                Backend::SimShared {
                    workers: 4,
                    asynchronous: false,
                },
                Backend::SimDistributed {
                    ranks: 4,
                    asynchronous: true,
                    detect: false,
                },
                Backend::SimDistributed {
                    ranks: 4,
                    asynchronous: false,
                    detect: false,
                },
            ] {
                let r = solve(&p, backend, &opts)
                    .unwrap_or_else(|e| panic!("{selector} on {backend:?}: {e}"));
                assert!(
                    r.converged,
                    "{selector} on {} failed: {}",
                    r.backend, r.final_residual
                );
                let name = opts.method.name();
                assert!(
                    r.backend.contains(name),
                    "label '{}' must name the method {name}",
                    r.backend
                );
            }
            // Non-Jacobi-family backends reject the method instead of
            // silently running their own iteration.
            assert!(solve(&p, Backend::GaussSeidel, &opts).is_err());
            assert!(solve(&p, Backend::ConjugateGradient, &opts).is_err());
        }
    }

    #[test]
    fn omega_auto_momentum_beats_plain_jacobi_in_iterations() {
        let p = problem();
        let opts = SolveOptions {
            method: crate::spec::parse_method("richardson2:omega=auto").unwrap(),
            ..Default::default()
        };
        let r2 = solve(&p, Backend::Jacobi, &opts).unwrap();
        let j = solve(&p, Backend::Jacobi, &SolveOptions::default()).unwrap();
        assert!(r2.converged && j.converged);
        assert!(
            r2.history.len() * 2 < j.history.len(),
            "momentum {} vs jacobi {} iterations",
            r2.history.len(),
            j.history.len()
        );
    }

    #[test]
    fn cg_is_the_fastest_in_iterations() {
        let p = problem();
        let opts = SolveOptions::default();
        let cg = solve(&p, Backend::ConjugateGradient, &opts).unwrap();
        let j = solve(&p, Backend::Jacobi, &opts).unwrap();
        assert!(cg.history.len() < j.history.len() / 5);
    }

    #[test]
    fn damped_backend_label_and_behaviour() {
        let p = problem();
        let opts = SolveOptions {
            omega: 0.8,
            tol: 1e-5,
            ..Default::default()
        };
        let r = solve(&p, Backend::Jacobi, &opts).unwrap();
        assert!(r.backend.contains("ω=0.8"));
        assert!(r.converged);
    }

    #[test]
    fn cg_breakdown_is_reported_as_error() {
        let a = aj_linalg::CsrMatrix::from_diagonal(&[1.0, 1.0]);
        // Make it indefinite *after* unit scaling is impossible; build the
        // problem manually with an indefinite matrix instead.
        let _ = a;
        let indefinite = {
            let mut coo = aj_linalg::CooMatrix::new(2, 2);
            coo.push(0, 0, 1.0);
            coo.push(1, 1, 1.0);
            coo.push_sym(0, 1, 2.0); // eigenvalues −1 and 3
            coo.to_csr()
        };
        // b = [1, −1] is the eigenvector with eigenvalue −1, so the very
        // first pᵀAp is negative.
        let p = Problem {
            name: "indef".into(),
            a: indefinite,
            b: vec![1.0, -1.0],
            x0: vec![0.0, 0.0],
        };
        let r = solve(&p, Backend::ConjugateGradient, &SolveOptions::default());
        assert!(r.is_err());
    }
}
