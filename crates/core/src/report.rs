//! Figure/table output: labelled series, aligned text tables, CSV files.
//!
//! Every bench binary produces [`Series`] values, prints them with
//! [`print_table`], and persists them with [`write_csv`] so the paper's
//! figures can be re-plotted from `results/*.csv`.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One labelled curve `(x, y)` — a line in a paper figure.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"async, 128 nodes"`.
    pub label: String,
    /// Samples in `x` order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Final `y` value (NaN when empty).
    pub fn final_y(&self) -> f64 {
        self.points.last().map_or(f64::NAN, |p| p.1)
    }

    /// Minimum `y` value (NaN when empty).
    pub fn min_y(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(f64::NAN, f64::min)
    }
}

/// Prints series as an aligned text table: one `x` column (union of all
/// sample positions is *not* computed — series are printed side by side row
/// by row, which is what the figure benches need since their series share x
/// grids; ragged series are padded with blanks).
pub fn print_table(title: &str, x_name: &str, series: &[Series]) {
    println!("== {title} ==");
    let mut header = format!("{x_name:>14}");
    for s in series {
        header.push_str(&format!("  {:>18}", truncate(&s.label, 18)));
    }
    println!("{header}");
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for r in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(r).map(|p| p.0))
            .unwrap_or(f64::NAN);
        let mut line = format!("{x:>14.6}");
        for s in series {
            match s.points.get(r) {
                Some(&(_, y)) => line.push_str(&format!("  {y:>18.6e}")),
                None => line.push_str(&format!("  {:>18}", "")),
            }
        }
        println!("{line}");
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n.saturating_sub(1)).collect::<String>() + "…"
    }
}

/// Prints each series as its own two-column block — use when series do
/// not share an `x` grid (e.g. different thread-count sweeps).
pub fn print_series_blocks(title: &str, x_name: &str, series: &[Series]) {
    println!("== {title} ==");
    for s in series {
        println!("-- {} --", s.label);
        println!("{x_name:>14}  {:>18}", "value");
        for &(x, y) in &s.points {
            println!("{x:>14.6}  {y:>18.6e}");
        }
    }
}

/// Writes series to CSV: `label,x,y` rows with a header. Parent directories
/// are created.
pub fn write_csv(path: &Path, series: &[Series]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "label,x,y")?;
    for s in series {
        for &(x, y) in &s.points {
            writeln!(f, "{},{x},{y}", csv_escape(&s.label))?;
        }
    }
    f.flush()
}

/// Reads series back from a CSV produced by [`write_csv`].
pub fn read_csv(path: &Path) -> std::io::Result<Vec<Series>> {
    let text = std::fs::read_to_string(path)?;
    let mut out: Vec<Series> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if ln == 0 || line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.rsplitn(3, ',').collect();
        if parts.len() != 3 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad CSV line {}: {line}", ln + 1),
            ));
        }
        let (y, x, label) = (parts[0], parts[1], csv_unescape(parts[2]));
        let x: f64 = x.parse().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad x at line {}: {e}", ln + 1),
            )
        })?;
        let y: f64 = y.parse().map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad y at line {}: {e}", ln + 1),
            )
        })?;
        match out.last_mut() {
            Some(s) if s.label == label => s.points.push((x, y)),
            _ => out.push(Series::new(label, vec![(x, y)])),
        }
    }
    Ok(out)
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn csv_unescape(s: &str) -> String {
    let t = s.trim();
    if t.starts_with('"') && t.ends_with('"') && t.len() >= 2 {
        t[1..t.len() - 1].replace("\"\"", "\"")
    } else {
        t.to_string()
    }
}

/// Standard location for figure CSVs: `results/<name>.csv` under the
/// workspace root (or the current directory when run elsewhere).
pub fn results_path(name: &str) -> std::path::PathBuf {
    let base = std::env::var("AJ_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    Path::new(&base).join(format!("{name}.csv"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accessors() {
        let s = Series::new("a", vec![(0.0, 3.0), (1.0, 2.0)]);
        assert_eq!(s.final_y(), 2.0);
        assert_eq!(s.min_y(), 2.0);
        assert!(Series::new("e", vec![]).final_y().is_nan());
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("aj-core-test-csv");
        let path = dir.join("fig.csv");
        let series = vec![
            Series::new("sync", vec![(0.0, 1.0), (1.0, 0.5)]),
            Series::new("async, 128", vec![(0.0, 1.0), (1.0, 0.25)]),
        ];
        write_csv(&path, &series).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(series, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_escaping_of_labels_with_commas() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_unescape("\"a,b\""), "a,b");
        assert_eq!(
            csv_unescape(csv_escape("say \"hi\"").as_str()),
            "say \"hi\""
        );
    }

    #[test]
    fn print_table_smoke() {
        // Just exercise the formatting paths (ragged series + truncation).
        let series = vec![
            Series::new("a-very-long-label-indeed", vec![(0.0, 1.0), (1.0, 0.1)]),
            Series::new("short", vec![(0.0, 2.0)]),
        ];
        print_table("demo", "x", &series);
    }

    #[test]
    fn print_series_blocks_smoke() {
        let series = vec![
            Series::new("cpu sweep", vec![(5.0, 0.9), (10.0, 0.95)]),
            Series::new("phi sweep", vec![(17.0, 0.8)]),
        ];
        print_series_blocks("demo", "threads", &series);
    }

    #[test]
    fn read_csv_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join("aj-core-test-badcsv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "label,x,y\nonlyonefield\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::write(&path, "label,x,y\na,notanumber,1\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn results_path_honours_env() {
        std::env::set_var("AJ_RESULTS_DIR", "/tmp/aj-results-test");
        let p = results_path("fig1");
        assert_eq!(p, Path::new("/tmp/aj-results-test/fig1.csv"));
        std::env::remove_var("AJ_RESULTS_DIR");
    }
}
