//! The §V shared-memory solvers.

use crate::shared_vec::SharedVec;
use aj_control::{ControlSpec, ControlStats, Controller, Decision, Observation};
use aj_linalg::method::{self, ResolvedMethod};
use aj_linalg::vecops::{self, Norm};
use aj_linalg::{CsrMatrix, StorageFormat, SweepKernel};
use aj_obs::{Histogram, ObsConfig, Snapshot, SpanKind, Timeline};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Synchronous (barrier) or asynchronous (racy) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Barriers after the residual computation and the convergence check.
    Synchronous,
    /// No barriers; threads use whatever values are in shared memory.
    Asynchronous,
}

/// Artificially slows one thread, emulating the paper's hardware-fault
/// scenario (the thread sleeps `duration` every iteration).
#[derive(Debug, Clone, Copy)]
pub struct DelayInjection {
    /// Which thread to slow down.
    pub thread: usize,
    /// Sleep inserted per iteration.
    pub duration: Duration,
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct ShmemConfig {
    /// Number of worker threads; rows are split into contiguous blocks.
    pub num_threads: usize,
    /// Relative-residual tolerance (`‖r‖/‖b‖` in `norm`).
    pub tol: f64,
    /// Per-thread iteration cap; a thread flags convergence at the cap even
    /// if the tolerance was not met.
    pub max_iterations: usize,
    /// Norm used for the convergence test (the paper reports the 1-norm).
    pub norm: Norm,
    /// Execution mode.
    pub mode: Mode,
    /// Optional per-iteration delay of one thread.
    pub delay: Option<DelayInjection>,
    /// Convergence test source: `false` (default) evaluates `‖b − Ax‖` from
    /// the shared `x`; `true` uses the paper's shared-residual-array norm,
    /// which is only reliable when every thread has its own core.
    pub residual_from_shared_r: bool,
    /// Relaxation weight ω (1.0 = plain Jacobi).
    pub omega: f64,
    /// Relaxation method (see [`aj_linalg::method`]). The default
    /// [`ResolvedMethod::Jacobi`] keeps the classic two-step program; the
    /// other methods replace step 2's correction rule per thread (momentum
    /// state and row selection are thread-private over the thread's rows).
    pub method: ResolvedMethod,
    /// Sweep storage format for step 1's residual computation (see
    /// [`aj_linalg::kernel`]). The default [`StorageFormat::Csr`] keeps the
    /// classic racy per-row loop over the shared array. Non-default formats
    /// run a per-thread [`SweepKernel`]: each iteration first *prefetches*
    /// every column the block touches (owned rows and ghosts) from the
    /// shared array into a dense thread-local vector, then sweeps that
    /// snapshot — one sequential gather pass instead of scattered atomic
    /// loads inside the kernel's vectorized inner loops.
    pub format: StorageFormat,
    /// Observability recording (off by default). When on, each thread owns
    /// a private iteration-duration histogram and timeline shard — no
    /// cross-thread synchronization on the hot path — merged into
    /// [`ShmemRun::obs`] after the threads join.
    pub obs: ObsConfig,
    /// Optional online controller (off by default). Thread 0 drives the
    /// decision kernel from its per-iteration residual samples; the adapted
    /// ω/β are published through atomic cells the workers read each sweep.
    /// Real threads have no deterministic clock, so staleness is measured as
    /// sweep-count lag behind the fastest thread — a documented
    /// simplification relative to the simulators' delay-tick measurement —
    /// and a [`Decision::Switch`] is realised by driving β to zero (momentum
    /// off) rather than swapping the per-thread state machines mid-flight.
    pub control: Option<ControlSpec>,
}

impl Default for ShmemConfig {
    fn default() -> Self {
        ShmemConfig {
            num_threads: 2,
            tol: 1e-3,
            max_iterations: 10_000,
            norm: Norm::L1,
            mode: Mode::Asynchronous,
            delay: None,
            residual_from_shared_r: false,
            omega: 1.0,
            method: ResolvedMethod::Jacobi,
            format: StorageFormat::Csr,
            obs: ObsConfig::off(),
            control: None,
        }
    }
}

/// Result of a shared-memory run.
#[derive(Debug, Clone)]
pub struct ShmemRun {
    /// Final iterate (snapshot of the shared array).
    pub x: Vec<f64>,
    /// Wall-clock duration of the parallel region.
    pub wall_time: Duration,
    /// Iterations each thread performed.
    pub iterations: Vec<usize>,
    /// `(seconds, relative residual)` samples recorded by thread 0.
    pub residual_history: Vec<(f64, f64)>,
    /// True when the *true* final residual meets the tolerance.
    pub converged: bool,
    /// True relative residual of `x` (recomputed exactly at the end).
    pub final_residual: f64,
    /// Merged observability snapshot (per-thread iteration-duration
    /// histograms in ns, timelines), when [`ShmemConfig::obs`] enabled
    /// recording.
    pub obs: Option<Snapshot>,
    /// Controller decision record, when [`ShmemConfig::control`] was set.
    pub control: Option<ControlStats>,
}

/// Runs shared-memory Jacobi per the paper's program structure:
///
/// ```text
/// loop {
///     r[mine] = b[mine] − (A x)[mine]     // reads shared x
///     [barrier if synchronous]
///     x[mine] += D⁻¹ r[mine]
///     check convergence (‖r‖/‖b‖ from the shared residual array)
///     [barrier if synchronous]
/// }
/// ```
///
/// Termination follows the §V flag protocol: a thread that has met the
/// tolerance (or its iteration cap) raises its flag but keeps relaxing until
/// every flag is up.
///
/// # Panics
/// Panics if `config.num_threads` is 0 or exceeds the number of rows, or if
/// a delayed-thread index is out of range.
pub fn run(a: &CsrMatrix, b: &[f64], x0: &[f64], config: &ShmemConfig) -> ShmemRun {
    let n = a.nrows();
    let t = config.num_threads;
    assert!(t > 0 && t <= n, "need 1 ≤ threads ≤ rows");
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    if let Some(d) = config.delay {
        assert!(d.thread < t, "delayed thread {} out of range", d.thread);
    }
    let diag_inv: Vec<f64> = a
        .diagonal()
        .iter()
        .map(|d| {
            assert!(*d != 0.0, "zero diagonal");
            1.0 / d
        })
        .collect();

    let ranges = aj_linalg::util::even_ranges(n, t);

    let x = SharedVec::from_slice(x0);
    let r = SharedVec::zeros(n);
    let flags: Vec<AtomicBool> = (0..t).map(|_| AtomicBool::new(false)).collect();
    let iter_counts: Vec<AtomicU64> = (0..t).map(|_| AtomicU64::new(0)).collect();
    let barrier = Barrier::new(t);
    let nb = vecops::norm(b, config.norm).max(f64::MIN_POSITIVE);
    let history = parking_lot::Mutex::new(Vec::<(f64, f64)>::new());

    // Controller plumbing: thread 0 publishes the adapted ω/β through these
    // cells; workers load them at the top of each correction sweep. With the
    // controller off the cells are never read and the classic code path is
    // untouched.
    let ctrl_on = config.control.is_some();
    let base_omega = match config.method {
        ResolvedMethod::Richardson1 { omega } => omega,
        ResolvedMethod::Richardson2 { omega, .. } => omega,
        _ => config.omega,
    };
    let base_beta = match config.method {
        ResolvedMethod::Richardson2 { beta, .. } => beta,
        _ => 0.0,
    };
    let omega_cell = AtomicU64::new(base_omega.to_bits());
    let beta_cell = AtomicU64::new(base_beta.to_bits());
    let ctrl_abort = AtomicBool::new(false);

    let start = Instant::now();
    // Per-thread observability shards, returned through the join handles:
    // each thread records into private state (no hot-path sharing) and the
    // merge happens once, after the parallel region.
    let mut shards: Vec<Option<(Histogram, Timeline)>> = Vec::new();
    let mut control_stats: Option<ControlStats> = None;
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tid in 0..t {
            let range = ranges[tid].clone();
            let x = &x;
            let r = &r;
            let flags = &flags;
            let iter_counts = &iter_counts;
            let barrier = &barrier;
            let history = &history;
            let diag_inv = &diag_inv;
            let omega_cell = &omega_cell;
            let beta_cell = &beta_cell;
            let ctrl_abort = &ctrl_abort;
            handles.push(scope.spawn(move |_| {
                let mut iters = 0usize;
                // Momentum state over my rows only (thread-private; no other
                // thread writes my rows, so this is exact, not racy).
                let mut x_prev: Vec<f64> = if config.method.needs_previous_iterate() {
                    x0[range.clone()].to_vec()
                } else {
                    Vec::new()
                };
                // Residual-weight scratch for randomized row selection.
                let mut weights: Vec<f64> = Vec::new();
                // Non-CSR formats sweep a thread-local snapshot: `touched`
                // lists every column my rows reference (owned + ghosts),
                // gathered from the shared array once per iteration.
                let mut kernel = (config.format != StorageFormat::Csr).then(|| {
                    let k = SweepKernel::build(a, range.clone(), config.format)
                        .expect("storage format rejected for this matrix");
                    let mut touched: Vec<usize> = range
                        .clone()
                        .flat_map(|i| a.row_indices(i).iter().copied())
                        .collect();
                    touched.sort_unstable();
                    touched.dedup();
                    (k, touched, vec![0.0; n], vec![0.0; range.len()])
                });
                let mut shard = if config.obs.is_on() {
                    Some((
                        Histogram::new(),
                        Timeline::new(config.obs.timeline_capacity),
                        config.obs.sampler(),
                    ))
                } else {
                    None
                };
                // Thread 0 doubles as the controller host: it already
                // evaluates the global residual every iteration, which is the
                // natural analogue of the simulators' monitor grid.
                let mut ctrl = if tid == 0 {
                    config.control.map(|spec| {
                        Controller::new(spec.cfg, config.method, base_omega, spec.interval)
                    })
                } else {
                    None
                };
                loop {
                    // Sampled iteration timing: two clock reads per sampled
                    // iteration, nothing otherwise.
                    let iter_start = if let Some((_, _, sampler)) = shard.as_mut() {
                        sampler.hit().then(Instant::now)
                    } else {
                        None
                    };
                    // Optional fault-injection delay.
                    if let Some(d) = config.delay {
                        if d.thread == tid && !d.duration.is_zero() {
                            std::thread::sleep(d.duration);
                        }
                    }
                    // Step 1: residual for my rows (racy reads of shared x).
                    if let Some((k, touched, x_local, res)) = kernel.as_mut() {
                        // Prefetch the ghost (and owned) entries my block
                        // reads into a dense snapshot, then run the kernel
                        // on it. The snapshot is one ordered pass over the
                        // shared array — still "whatever information is
                        // available", read just before the sweep.
                        for &j in touched.iter() {
                            x_local[j] = x.load(j);
                        }
                        k.residuals_into(a, x_local, &b[range.clone()], res);
                        for (offset, i) in range.clone().enumerate() {
                            r.store(i, res[offset]);
                        }
                    } else {
                        for i in range.clone() {
                            let mut acc = 0.0;
                            for (j, v) in a.row_iter(i) {
                                acc += v * x.load(j);
                            }
                            r.store(i, b[i] - acc);
                        }
                    }
                    if config.mode == Mode::Synchronous {
                        barrier.wait();
                    }
                    // Step 2: correct my rows.
                    match config.method {
                        ResolvedMethod::Jacobi | ResolvedMethod::Richardson1 { .. } => {
                            let omega = if ctrl_on {
                                f64::from_bits(omega_cell.load(Ordering::Relaxed))
                            } else {
                                match config.method {
                                    ResolvedMethod::Richardson1 { omega } => omega,
                                    _ => config.omega,
                                }
                            };
                            for i in range.clone() {
                                x.store(i, x.load(i) + omega * diag_inv[i] * r.load(i));
                            }
                        }
                        ResolvedMethod::Richardson2 { omega, beta } => {
                            let (omega, beta) = if ctrl_on {
                                (
                                    f64::from_bits(omega_cell.load(Ordering::Relaxed)),
                                    f64::from_bits(beta_cell.load(Ordering::Relaxed)),
                                )
                            } else {
                                (omega, beta)
                            };
                            let lo = range.start;
                            for i in range.clone() {
                                let xi = x.load(i);
                                let next = xi
                                    + omega * diag_inv[i] * r.load(i)
                                    + beta * (xi - x_prev[i - lo]);
                                x_prev[i - lo] = xi;
                                x.store(i, next);
                            }
                        }
                        ResolvedMethod::RandomizedResidual { fraction, seed } => {
                            let m = range.len();
                            weights.clear();
                            for i in range.clone() {
                                weights.push(r.load(i).abs());
                            }
                            let k = ((fraction * m as f64).ceil() as usize).max(1);
                            let chosen = method::select_residual_weighted(
                                &weights,
                                k,
                                method::selection_seed(seed, tid as u64 + 1, iters as u64),
                            );
                            for l in chosen {
                                let i = range.start + l;
                                x.store(i, x.load(i) + diag_inv[i] * r.load(i));
                            }
                        }
                    }
                    iters += 1;
                    iter_counts[tid].store(iters as u64, Ordering::Relaxed);

                    // Step 3: convergence test. The paper takes the norm of the
                    // shared residual array; on a machine with fewer cores
                    // than threads, long scheduler timeslices leave other
                    // threads' residual rows arbitrarily stale, and the
                    // stale-r test terminates runs that have not converged.
                    // We therefore evaluate ‖b − A·x‖ from the *shared x*,
                    // which is exactly what the shared-r norm approximates
                    // when threads genuinely run concurrently (the shared-r
                    // variant remains available via `residual_from_shared_r`
                    // for fidelity experiments on multicore hosts).
                    let res = {
                        let mut acc = 0.0;
                        if config.residual_from_shared_r {
                            match config.norm {
                                Norm::L1 => {
                                    for i in 0..r.len() {
                                        acc += r.load(i).abs();
                                    }
                                }
                                Norm::L2 => {
                                    for i in 0..r.len() {
                                        let v = r.load(i);
                                        acc += v * v;
                                    }
                                    acc = acc.sqrt();
                                }
                                Norm::Inf => {
                                    for i in 0..r.len() {
                                        acc = acc.max(r.load(i).abs());
                                    }
                                }
                            }
                        } else {
                            match config.norm {
                                Norm::L1 => {
                                    for i in 0..n {
                                        let mut row = 0.0;
                                        for (j, v) in a.row_iter(i) {
                                            row += v * x.load(j);
                                        }
                                        acc += (b[i] - row).abs();
                                    }
                                }
                                Norm::L2 => {
                                    for i in 0..n {
                                        let mut row = 0.0;
                                        for (j, v) in a.row_iter(i) {
                                            row += v * x.load(j);
                                        }
                                        let d = b[i] - row;
                                        acc += d * d;
                                    }
                                    acc = acc.sqrt();
                                }
                                Norm::Inf => {
                                    for i in 0..n {
                                        let mut row = 0.0;
                                        for (j, v) in a.row_iter(i) {
                                            row += v * x.load(j);
                                        }
                                        acc = acc.max((b[i] - row).abs());
                                    }
                                }
                            }
                        }
                        acc / nb
                    };
                    if tid == 0 {
                        history.lock().push((start.elapsed().as_secs_f64(), res));
                    }
                    if let Some(c) = ctrl.as_mut() {
                        // Staleness on real threads: sweep-count lag behind
                        // the fastest non-shed thread, the wall-clock-free
                        // analogue of the simulators' delay-tick measure.
                        let mut cmax = 0u64;
                        for (v, cnt) in iter_counts.iter().enumerate() {
                            if !c.is_shed(v) {
                                cmax = cmax.max(cnt.load(Ordering::Relaxed));
                            }
                        }
                        let mut worst = 0usize;
                        let mut staleness = 0.0f64;
                        for (v, cnt) in iter_counts.iter().enumerate() {
                            if c.is_shed(v) {
                                continue;
                            }
                            let lag = cmax.saturating_sub(cnt.load(Ordering::Relaxed)) as f64;
                            if lag > staleness {
                                staleness = lag;
                                worst = v;
                            }
                        }
                        if let Some(d) = c.observe(Observation {
                            residual: res,
                            staleness,
                            worst,
                        }) {
                            match d {
                                Decision::Shrink { omega, beta }
                                | Decision::Widen { omega, beta } => {
                                    omega_cell.store(omega.to_bits(), Ordering::Relaxed);
                                    beta_cell.store(beta.to_bits(), Ordering::Relaxed);
                                }
                                Decision::Switch { omega } => {
                                    omega_cell.store(omega.to_bits(), Ordering::Relaxed);
                                    beta_cell.store(0f64.to_bits(), Ordering::Relaxed);
                                }
                                Decision::Shed { .. } => {}
                                Decision::Rescue => {}
                            }
                            if c.rescue_requested() {
                                ctrl_abort.store(true, Ordering::Release);
                            }
                        }
                    }
                    if !flags[tid].load(Ordering::Relaxed)
                        && (res < config.tol || iters >= config.max_iterations)
                    {
                        flags[tid].store(true, Ordering::Release);
                    }
                    if config.mode == Mode::Synchronous {
                        barrier.wait();
                    }
                    if let Some(t0) = iter_start {
                        let (hist, tl, _) = shard.as_mut().expect("timed without a shard");
                        hist.record(t0.elapsed().as_nanos() as u64);
                        tl.push(start.elapsed().as_nanos() as u64, SpanKind::SweepEnd);
                    }
                    // Hard safety cap so a wedged peer cannot hang the test
                    // suite; 4× the configured budget never triggers in
                    // normal operation.
                    let all_done = flags.iter().all(|f| f.load(Ordering::Acquire));
                    if all_done
                        || iters >= 4 * config.max_iterations
                        || (ctrl_on && ctrl_abort.load(Ordering::Acquire))
                    {
                        break;
                    }
                    // With more threads than cores (common here, and on the
                    // paper's 272-thread KNL runs), yield so the scheduler
                    // interleaves workers instead of running each to the end
                    // of its timeslice.
                    if config.mode == Mode::Asynchronous {
                        std::thread::yield_now();
                    }
                }
                (
                    shard.map(|(hist, tl, _)| (hist, tl)),
                    ctrl.map(Controller::into_stats),
                )
            }));
        }
        for h in handles {
            let (sh, cs) = h.join().expect("a solver thread panicked");
            shards.push(sh);
            if cs.is_some() {
                control_stats = cs;
            }
        }
    })
    .expect("a solver thread panicked");
    let wall_time = start.elapsed();

    let x_final = x.snapshot();
    let final_residual = a.relative_residual(&x_final, b, config.norm);
    let iterations: Vec<usize> = iter_counts
        .iter()
        .map(|c| c.load(Ordering::Relaxed) as usize)
        .collect();
    let obs = config.obs.is_on().then(|| {
        let mut snap = Snapshot::new();
        for (tid, sh) in shards.into_iter().enumerate() {
            if let Some((hist, tl)) = sh {
                if hist.count() > 0 {
                    snap.merge_histogram(&format!("iter_ns/rank{tid}"), &hist);
                }
                if !tl.is_empty() || tl.dropped() > 0 {
                    snap.push_timeline(tid, &tl);
                }
            }
        }
        snap.set_counter("threads", t as u64);
        snap.set_counter(&format!("method/{}", config.method.name()), 1);
        // Per sweep, rwr touches ⌈fraction·m⌉ of a thread's m rows; every
        // other method touches all of them.
        let rows_per_sweep = |m: usize| match config.method {
            ResolvedMethod::RandomizedResidual { fraction, .. } => {
                ((fraction * m as f64).ceil() as usize).clamp(1, m)
            }
            _ => m,
        };
        snap.set_counter(
            "relaxations",
            iterations
                .iter()
                .zip(&ranges)
                .map(|(&it, r)| it as u64 * rows_per_sweep(r.len()) as u64)
                .sum(),
        );
        snap.set_gauge("wall_time_s", wall_time.as_secs_f64());
        snap.set_gauge("final_residual", final_residual);
        snap
    });
    ShmemRun {
        x: x_final,
        wall_time,
        iterations,
        residual_history: history.into_inner(),
        converged: final_residual < config.tol,
        final_residual,
        obs,
        control: control_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_matrices::{fd, rhs};

    fn problem() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = fd::paper_fd("fd68")
            .unwrap()
            .scale_to_unit_diagonal()
            .unwrap();
        let (b, x0) = rhs::paper_problem(a.nrows(), 7);
        (a, b, x0)
    }

    #[test]
    fn synchronous_two_threads_matches_sequential_jacobi() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-4,
            max_iterations: 50_000,
            mode: Mode::Synchronous,
            ..Default::default()
        };
        let run_result = run(&a, &b, &x0, &cfg);
        assert!(
            run_result.converged,
            "residual {}",
            run_result.final_residual
        );
        // Sequential reference.
        let (x_ref, _) =
            aj_linalg::sweeps::jacobi_solve(&a, &b, &x0, 1e-4, 50_000, Norm::L1).unwrap();
        // Both solve the same system to the same tolerance; iterates agree
        // loosely (identical iteration counts are not guaranteed because the
        // parallel version checks convergence from the shared array).
        assert!(a.relative_residual(&x_ref, &b, Norm::L1) < 1e-4);
        assert!(vecops::rel_diff(&run_result.x, &x_ref) < 1e-2);
    }

    #[test]
    fn asynchronous_converges_racy() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 4,
            tol: 1e-4,
            max_iterations: 100_000,
            mode: Mode::Asynchronous,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(
            r.converged,
            "async failed to converge: {}",
            r.final_residual
        );
        assert!(r.iterations.iter().all(|&it| it > 0));
    }

    #[test]
    fn async_threads_take_different_iteration_counts_under_delay() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-4,
            max_iterations: 100_000,
            mode: Mode::Asynchronous,
            delay: Some(DelayInjection {
                thread: 1,
                duration: Duration::from_micros(500),
            }),
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(r.converged, "delayed async failed: {}", r.final_residual);
        // The delayed thread should lag well behind the fast one.
        assert!(
            r.iterations[0] > r.iterations[1],
            "fast {} vs delayed {}",
            r.iterations[0],
            r.iterations[1]
        );
    }

    #[test]
    fn history_is_recorded_and_final_state_consistent() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-3,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(!r.residual_history.is_empty());
        // Times are non-decreasing.
        for w in r.residual_history.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(r.x.len(), a.nrows());
    }

    #[test]
    fn single_thread_async_equals_gauss_jacobi_hybrid_but_converges() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 1,
            tol: 1e-5,
            max_iterations: 100_000,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(r.converged);
    }

    #[test]
    fn damped_threads_converge_with_omega_below_one() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-4,
            max_iterations: 200_000,
            omega: 0.6,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(r.converged, "damped async failed: {}", r.final_residual);
    }

    #[test]
    fn every_method_converges_on_real_threads() {
        let (a, b, x0) = problem();
        for m in [
            ResolvedMethod::Richardson1 { omega: 0.9 },
            ResolvedMethod::Richardson2 {
                omega: 1.0,
                beta: 0.3,
            },
            ResolvedMethod::RandomizedResidual {
                fraction: 0.5,
                seed: 3,
            },
        ] {
            let cfg = ShmemConfig {
                num_threads: 4,
                tol: 1e-4,
                max_iterations: 200_000,
                mode: Mode::Asynchronous,
                method: m,
                ..Default::default()
            };
            let r = run(&a, &b, &x0, &cfg);
            assert!(
                r.converged,
                "{} failed to converge: {}",
                m.name(),
                r.final_residual
            );
        }
    }

    #[test]
    fn every_format_converges_on_real_threads() {
        let (a, b, x0) = problem();
        let (x_ref, _) =
            aj_linalg::sweeps::jacobi_solve(&a, &b, &x0, 1e-5, 100_000, Norm::L1).unwrap();
        for format in [StorageFormat::SellC { c: 8 }, StorageFormat::RcmBlocked] {
            let cfg = ShmemConfig {
                num_threads: 4,
                tol: 1e-5,
                max_iterations: 200_000,
                mode: Mode::Asynchronous,
                format,
                ..Default::default()
            };
            let r = run(&a, &b, &x0, &cfg);
            assert!(
                r.converged,
                "{format} failed to converge: {}",
                r.final_residual
            );
            assert!(vecops::rel_diff(&r.x, &x_ref) < 1e-3, "{format}");
        }
    }

    #[test]
    fn momentum_converges_synchronously_too() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-5,
            max_iterations: 200_000,
            mode: Mode::Synchronous,
            method: ResolvedMethod::Richardson2 {
                omega: 1.0,
                beta: 0.3,
            },
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(r.converged, "residual {}", r.final_residual);
    }

    #[test]
    fn controller_shrinks_then_rescues_under_pathological_delay() {
        // A worker that sleeps 500µs every sweep lags the fast thread by
        // thousands of sweep periods: the controller shrinks ω to the safe
        // floor, progress at the floor cannot meet the (aggressive) stall
        // rate, and — Jacobi having no momentum to drop — the ladder ends in
        // a rescue request that aborts the run for the driver to escalate.
        let (a, b, x0) = problem();
        let interval = aj_linalg::method::SafeInterval::estimate(&a).unwrap();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-12,
            max_iterations: 50_000,
            mode: Mode::Asynchronous,
            delay: Some(DelayInjection {
                thread: 1,
                duration: Duration::from_micros(500),
            }),
            control: Some(ControlSpec {
                cfg: aj_control::ControlConfig {
                    stall_decades: 0.02,
                    ..aj_control::ControlConfig::default()
                },
                interval,
            }),
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        let stats = r.control.expect("controller stats recorded");
        assert!(stats.samples > 0);
        assert!(
            stats.rescue_requested,
            "expected a rescue request; decisions: {:?}",
            stats.decisions
        );
        assert!(!stats.decisions.is_empty());
        // The rescue abort must actually stop the threads well short of the
        // safety cap.
        assert!(r.iterations.iter().all(|&it| it < 4 * 50_000));
    }

    #[test]
    fn controller_on_healthy_run_does_not_hurt_convergence() {
        let (a, b, x0) = problem();
        let interval = aj_linalg::method::SafeInterval::estimate(&a).unwrap();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-4,
            max_iterations: 100_000,
            mode: Mode::Asynchronous,
            control: Some(ControlSpec {
                cfg: aj_control::ControlConfig::default(),
                interval,
            }),
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(r.converged, "controlled async failed: {}", r.final_residual);
        let stats = r.control.expect("controller stats recorded");
        assert!(stats.samples > 0);
        assert!(!stats.rescue_requested);
    }

    #[test]
    fn control_off_records_no_stats() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-3,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(r.control.is_none());
    }

    #[test]
    fn iteration_cap_terminates_nonconverging_runs() {
        // Tolerance of 0 can never be met; the cap must stop the run.
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 0.0,
            max_iterations: 50,
            mode: Mode::Synchronous,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(!r.converged);
        assert!(r.iterations.iter().all(|&it| (50..=200).contains(&it)));
    }
}
