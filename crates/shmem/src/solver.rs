//! The §V shared-memory solvers.

use crate::shared_vec::SharedVec;
use aj_linalg::method::{self, ResolvedMethod};
use aj_linalg::vecops::{self, Norm};
use aj_linalg::{CsrMatrix, StorageFormat, SweepKernel};
use aj_obs::{Histogram, ObsConfig, Snapshot, SpanKind, Timeline};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Synchronous (barrier) or asynchronous (racy) execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Barriers after the residual computation and the convergence check.
    Synchronous,
    /// No barriers; threads use whatever values are in shared memory.
    Asynchronous,
}

/// Artificially slows one thread, emulating the paper's hardware-fault
/// scenario (the thread sleeps `duration` every iteration).
#[derive(Debug, Clone, Copy)]
pub struct DelayInjection {
    /// Which thread to slow down.
    pub thread: usize,
    /// Sleep inserted per iteration.
    pub duration: Duration,
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct ShmemConfig {
    /// Number of worker threads; rows are split into contiguous blocks.
    pub num_threads: usize,
    /// Relative-residual tolerance (`‖r‖/‖b‖` in `norm`).
    pub tol: f64,
    /// Per-thread iteration cap; a thread flags convergence at the cap even
    /// if the tolerance was not met.
    pub max_iterations: usize,
    /// Norm used for the convergence test (the paper reports the 1-norm).
    pub norm: Norm,
    /// Execution mode.
    pub mode: Mode,
    /// Optional per-iteration delay of one thread.
    pub delay: Option<DelayInjection>,
    /// Convergence test source: `false` (default) evaluates `‖b − Ax‖` from
    /// the shared `x`; `true` uses the paper's shared-residual-array norm,
    /// which is only reliable when every thread has its own core.
    pub residual_from_shared_r: bool,
    /// Relaxation weight ω (1.0 = plain Jacobi).
    pub omega: f64,
    /// Relaxation method (see [`aj_linalg::method`]). The default
    /// [`ResolvedMethod::Jacobi`] keeps the classic two-step program; the
    /// other methods replace step 2's correction rule per thread (momentum
    /// state and row selection are thread-private over the thread's rows).
    pub method: ResolvedMethod,
    /// Sweep storage format for step 1's residual computation (see
    /// [`aj_linalg::kernel`]). The default [`StorageFormat::Csr`] keeps the
    /// classic racy per-row loop over the shared array. Non-default formats
    /// run a per-thread [`SweepKernel`]: each iteration first *prefetches*
    /// every column the block touches (owned rows and ghosts) from the
    /// shared array into a dense thread-local vector, then sweeps that
    /// snapshot — one sequential gather pass instead of scattered atomic
    /// loads inside the kernel's vectorized inner loops.
    pub format: StorageFormat,
    /// Observability recording (off by default). When on, each thread owns
    /// a private iteration-duration histogram and timeline shard — no
    /// cross-thread synchronization on the hot path — merged into
    /// [`ShmemRun::obs`] after the threads join.
    pub obs: ObsConfig,
}

impl Default for ShmemConfig {
    fn default() -> Self {
        ShmemConfig {
            num_threads: 2,
            tol: 1e-3,
            max_iterations: 10_000,
            norm: Norm::L1,
            mode: Mode::Asynchronous,
            delay: None,
            residual_from_shared_r: false,
            omega: 1.0,
            method: ResolvedMethod::Jacobi,
            format: StorageFormat::Csr,
            obs: ObsConfig::off(),
        }
    }
}

/// Result of a shared-memory run.
#[derive(Debug, Clone)]
pub struct ShmemRun {
    /// Final iterate (snapshot of the shared array).
    pub x: Vec<f64>,
    /// Wall-clock duration of the parallel region.
    pub wall_time: Duration,
    /// Iterations each thread performed.
    pub iterations: Vec<usize>,
    /// `(seconds, relative residual)` samples recorded by thread 0.
    pub residual_history: Vec<(f64, f64)>,
    /// True when the *true* final residual meets the tolerance.
    pub converged: bool,
    /// True relative residual of `x` (recomputed exactly at the end).
    pub final_residual: f64,
    /// Merged observability snapshot (per-thread iteration-duration
    /// histograms in ns, timelines), when [`ShmemConfig::obs`] enabled
    /// recording.
    pub obs: Option<Snapshot>,
}

/// Runs shared-memory Jacobi per the paper's program structure:
///
/// ```text
/// loop {
///     r[mine] = b[mine] − (A x)[mine]     // reads shared x
///     [barrier if synchronous]
///     x[mine] += D⁻¹ r[mine]
///     check convergence (‖r‖/‖b‖ from the shared residual array)
///     [barrier if synchronous]
/// }
/// ```
///
/// Termination follows the §V flag protocol: a thread that has met the
/// tolerance (or its iteration cap) raises its flag but keeps relaxing until
/// every flag is up.
///
/// # Panics
/// Panics if `config.num_threads` is 0 or exceeds the number of rows, or if
/// a delayed-thread index is out of range.
pub fn run(a: &CsrMatrix, b: &[f64], x0: &[f64], config: &ShmemConfig) -> ShmemRun {
    let n = a.nrows();
    let t = config.num_threads;
    assert!(t > 0 && t <= n, "need 1 ≤ threads ≤ rows");
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    if let Some(d) = config.delay {
        assert!(d.thread < t, "delayed thread {} out of range", d.thread);
    }
    let diag_inv: Vec<f64> = a
        .diagonal()
        .iter()
        .map(|d| {
            assert!(*d != 0.0, "zero diagonal");
            1.0 / d
        })
        .collect();

    let ranges = aj_linalg::util::even_ranges(n, t);

    let x = SharedVec::from_slice(x0);
    let r = SharedVec::zeros(n);
    let flags: Vec<AtomicBool> = (0..t).map(|_| AtomicBool::new(false)).collect();
    let iter_counts: Vec<AtomicU64> = (0..t).map(|_| AtomicU64::new(0)).collect();
    let barrier = Barrier::new(t);
    let nb = vecops::norm(b, config.norm).max(f64::MIN_POSITIVE);
    let history = parking_lot::Mutex::new(Vec::<(f64, f64)>::new());

    let start = Instant::now();
    // Per-thread observability shards, returned through the join handles:
    // each thread records into private state (no hot-path sharing) and the
    // merge happens once, after the parallel region.
    let mut shards: Vec<Option<(Histogram, Timeline)>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tid in 0..t {
            let range = ranges[tid].clone();
            let x = &x;
            let r = &r;
            let flags = &flags;
            let iter_counts = &iter_counts;
            let barrier = &barrier;
            let history = &history;
            let diag_inv = &diag_inv;
            handles.push(scope.spawn(move |_| {
                let mut iters = 0usize;
                // Momentum state over my rows only (thread-private; no other
                // thread writes my rows, so this is exact, not racy).
                let mut x_prev: Vec<f64> = if config.method.needs_previous_iterate() {
                    x0[range.clone()].to_vec()
                } else {
                    Vec::new()
                };
                // Residual-weight scratch for randomized row selection.
                let mut weights: Vec<f64> = Vec::new();
                // Non-CSR formats sweep a thread-local snapshot: `touched`
                // lists every column my rows reference (owned + ghosts),
                // gathered from the shared array once per iteration.
                let mut kernel = (config.format != StorageFormat::Csr).then(|| {
                    let k = SweepKernel::build(a, range.clone(), config.format)
                        .expect("storage format rejected for this matrix");
                    let mut touched: Vec<usize> = range
                        .clone()
                        .flat_map(|i| a.row_indices(i).iter().copied())
                        .collect();
                    touched.sort_unstable();
                    touched.dedup();
                    (k, touched, vec![0.0; n], vec![0.0; range.len()])
                });
                let mut shard = if config.obs.is_on() {
                    Some((
                        Histogram::new(),
                        Timeline::new(config.obs.timeline_capacity),
                        config.obs.sampler(),
                    ))
                } else {
                    None
                };
                loop {
                    // Sampled iteration timing: two clock reads per sampled
                    // iteration, nothing otherwise.
                    let iter_start = if let Some((_, _, sampler)) = shard.as_mut() {
                        sampler.hit().then(Instant::now)
                    } else {
                        None
                    };
                    // Optional fault-injection delay.
                    if let Some(d) = config.delay {
                        if d.thread == tid && !d.duration.is_zero() {
                            std::thread::sleep(d.duration);
                        }
                    }
                    // Step 1: residual for my rows (racy reads of shared x).
                    if let Some((k, touched, x_local, res)) = kernel.as_mut() {
                        // Prefetch the ghost (and owned) entries my block
                        // reads into a dense snapshot, then run the kernel
                        // on it. The snapshot is one ordered pass over the
                        // shared array — still "whatever information is
                        // available", read just before the sweep.
                        for &j in touched.iter() {
                            x_local[j] = x.load(j);
                        }
                        k.residuals_into(a, x_local, &b[range.clone()], res);
                        for (offset, i) in range.clone().enumerate() {
                            r.store(i, res[offset]);
                        }
                    } else {
                        for i in range.clone() {
                            let mut acc = 0.0;
                            for (j, v) in a.row_iter(i) {
                                acc += v * x.load(j);
                            }
                            r.store(i, b[i] - acc);
                        }
                    }
                    if config.mode == Mode::Synchronous {
                        barrier.wait();
                    }
                    // Step 2: correct my rows.
                    match config.method {
                        ResolvedMethod::Jacobi | ResolvedMethod::Richardson1 { .. } => {
                            let omega = match config.method {
                                ResolvedMethod::Richardson1 { omega } => omega,
                                _ => config.omega,
                            };
                            for i in range.clone() {
                                x.store(i, x.load(i) + omega * diag_inv[i] * r.load(i));
                            }
                        }
                        ResolvedMethod::Richardson2 { omega, beta } => {
                            let lo = range.start;
                            for i in range.clone() {
                                let xi = x.load(i);
                                let next = xi
                                    + omega * diag_inv[i] * r.load(i)
                                    + beta * (xi - x_prev[i - lo]);
                                x_prev[i - lo] = xi;
                                x.store(i, next);
                            }
                        }
                        ResolvedMethod::RandomizedResidual { fraction, seed } => {
                            let m = range.len();
                            weights.clear();
                            for i in range.clone() {
                                weights.push(r.load(i).abs());
                            }
                            let k = ((fraction * m as f64).ceil() as usize).max(1);
                            let chosen = method::select_residual_weighted(
                                &weights,
                                k,
                                method::selection_seed(seed, tid as u64 + 1, iters as u64),
                            );
                            for l in chosen {
                                let i = range.start + l;
                                x.store(i, x.load(i) + diag_inv[i] * r.load(i));
                            }
                        }
                    }
                    iters += 1;
                    iter_counts[tid].store(iters as u64, Ordering::Relaxed);

                    // Step 3: convergence test. The paper takes the norm of the
                    // shared residual array; on a machine with fewer cores
                    // than threads, long scheduler timeslices leave other
                    // threads' residual rows arbitrarily stale, and the
                    // stale-r test terminates runs that have not converged.
                    // We therefore evaluate ‖b − A·x‖ from the *shared x*,
                    // which is exactly what the shared-r norm approximates
                    // when threads genuinely run concurrently (the shared-r
                    // variant remains available via `residual_from_shared_r`
                    // for fidelity experiments on multicore hosts).
                    let res = {
                        let mut acc = 0.0;
                        if config.residual_from_shared_r {
                            match config.norm {
                                Norm::L1 => {
                                    for i in 0..r.len() {
                                        acc += r.load(i).abs();
                                    }
                                }
                                Norm::L2 => {
                                    for i in 0..r.len() {
                                        let v = r.load(i);
                                        acc += v * v;
                                    }
                                    acc = acc.sqrt();
                                }
                                Norm::Inf => {
                                    for i in 0..r.len() {
                                        acc = acc.max(r.load(i).abs());
                                    }
                                }
                            }
                        } else {
                            match config.norm {
                                Norm::L1 => {
                                    for i in 0..n {
                                        let mut row = 0.0;
                                        for (j, v) in a.row_iter(i) {
                                            row += v * x.load(j);
                                        }
                                        acc += (b[i] - row).abs();
                                    }
                                }
                                Norm::L2 => {
                                    for i in 0..n {
                                        let mut row = 0.0;
                                        for (j, v) in a.row_iter(i) {
                                            row += v * x.load(j);
                                        }
                                        let d = b[i] - row;
                                        acc += d * d;
                                    }
                                    acc = acc.sqrt();
                                }
                                Norm::Inf => {
                                    for i in 0..n {
                                        let mut row = 0.0;
                                        for (j, v) in a.row_iter(i) {
                                            row += v * x.load(j);
                                        }
                                        acc = acc.max((b[i] - row).abs());
                                    }
                                }
                            }
                        }
                        acc / nb
                    };
                    if tid == 0 {
                        history.lock().push((start.elapsed().as_secs_f64(), res));
                    }
                    if !flags[tid].load(Ordering::Relaxed)
                        && (res < config.tol || iters >= config.max_iterations)
                    {
                        flags[tid].store(true, Ordering::Release);
                    }
                    if config.mode == Mode::Synchronous {
                        barrier.wait();
                    }
                    if let Some(t0) = iter_start {
                        let (hist, tl, _) = shard.as_mut().expect("timed without a shard");
                        hist.record(t0.elapsed().as_nanos() as u64);
                        tl.push(start.elapsed().as_nanos() as u64, SpanKind::SweepEnd);
                    }
                    // Hard safety cap so a wedged peer cannot hang the test
                    // suite; 4× the configured budget never triggers in
                    // normal operation.
                    let all_done = flags.iter().all(|f| f.load(Ordering::Acquire));
                    if all_done || iters >= 4 * config.max_iterations {
                        break;
                    }
                    // With more threads than cores (common here, and on the
                    // paper's 272-thread KNL runs), yield so the scheduler
                    // interleaves workers instead of running each to the end
                    // of its timeslice.
                    if config.mode == Mode::Asynchronous {
                        std::thread::yield_now();
                    }
                }
                shard.map(|(hist, tl, _)| (hist, tl))
            }));
        }
        shards = handles
            .into_iter()
            .map(|h| h.join().expect("a solver thread panicked"))
            .collect();
    })
    .expect("a solver thread panicked");
    let wall_time = start.elapsed();

    let x_final = x.snapshot();
    let final_residual = a.relative_residual(&x_final, b, config.norm);
    let iterations: Vec<usize> = iter_counts
        .iter()
        .map(|c| c.load(Ordering::Relaxed) as usize)
        .collect();
    let obs = config.obs.is_on().then(|| {
        let mut snap = Snapshot::new();
        for (tid, sh) in shards.into_iter().enumerate() {
            if let Some((hist, tl)) = sh {
                if hist.count() > 0 {
                    snap.merge_histogram(&format!("iter_ns/rank{tid}"), &hist);
                }
                if !tl.is_empty() || tl.dropped() > 0 {
                    snap.push_timeline(tid, &tl);
                }
            }
        }
        snap.set_counter("threads", t as u64);
        snap.set_counter(&format!("method/{}", config.method.name()), 1);
        // Per sweep, rwr touches ⌈fraction·m⌉ of a thread's m rows; every
        // other method touches all of them.
        let rows_per_sweep = |m: usize| match config.method {
            ResolvedMethod::RandomizedResidual { fraction, .. } => {
                ((fraction * m as f64).ceil() as usize).clamp(1, m)
            }
            _ => m,
        };
        snap.set_counter(
            "relaxations",
            iterations
                .iter()
                .zip(&ranges)
                .map(|(&it, r)| it as u64 * rows_per_sweep(r.len()) as u64)
                .sum(),
        );
        snap.set_gauge("wall_time_s", wall_time.as_secs_f64());
        snap.set_gauge("final_residual", final_residual);
        snap
    });
    ShmemRun {
        x: x_final,
        wall_time,
        iterations,
        residual_history: history.into_inner(),
        converged: final_residual < config.tol,
        final_residual,
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_matrices::{fd, rhs};

    fn problem() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = fd::paper_fd("fd68")
            .unwrap()
            .scale_to_unit_diagonal()
            .unwrap();
        let (b, x0) = rhs::paper_problem(a.nrows(), 7);
        (a, b, x0)
    }

    #[test]
    fn synchronous_two_threads_matches_sequential_jacobi() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-4,
            max_iterations: 50_000,
            mode: Mode::Synchronous,
            ..Default::default()
        };
        let run_result = run(&a, &b, &x0, &cfg);
        assert!(
            run_result.converged,
            "residual {}",
            run_result.final_residual
        );
        // Sequential reference.
        let (x_ref, _) =
            aj_linalg::sweeps::jacobi_solve(&a, &b, &x0, 1e-4, 50_000, Norm::L1).unwrap();
        // Both solve the same system to the same tolerance; iterates agree
        // loosely (identical iteration counts are not guaranteed because the
        // parallel version checks convergence from the shared array).
        assert!(a.relative_residual(&x_ref, &b, Norm::L1) < 1e-4);
        assert!(vecops::rel_diff(&run_result.x, &x_ref) < 1e-2);
    }

    #[test]
    fn asynchronous_converges_racy() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 4,
            tol: 1e-4,
            max_iterations: 100_000,
            mode: Mode::Asynchronous,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(
            r.converged,
            "async failed to converge: {}",
            r.final_residual
        );
        assert!(r.iterations.iter().all(|&it| it > 0));
    }

    #[test]
    fn async_threads_take_different_iteration_counts_under_delay() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-4,
            max_iterations: 100_000,
            mode: Mode::Asynchronous,
            delay: Some(DelayInjection {
                thread: 1,
                duration: Duration::from_micros(500),
            }),
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(r.converged, "delayed async failed: {}", r.final_residual);
        // The delayed thread should lag well behind the fast one.
        assert!(
            r.iterations[0] > r.iterations[1],
            "fast {} vs delayed {}",
            r.iterations[0],
            r.iterations[1]
        );
    }

    #[test]
    fn history_is_recorded_and_final_state_consistent() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-3,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(!r.residual_history.is_empty());
        // Times are non-decreasing.
        for w in r.residual_history.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(r.x.len(), a.nrows());
    }

    #[test]
    fn single_thread_async_equals_gauss_jacobi_hybrid_but_converges() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 1,
            tol: 1e-5,
            max_iterations: 100_000,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(r.converged);
    }

    #[test]
    fn damped_threads_converge_with_omega_below_one() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-4,
            max_iterations: 200_000,
            omega: 0.6,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(r.converged, "damped async failed: {}", r.final_residual);
    }

    #[test]
    fn every_method_converges_on_real_threads() {
        let (a, b, x0) = problem();
        for m in [
            ResolvedMethod::Richardson1 { omega: 0.9 },
            ResolvedMethod::Richardson2 {
                omega: 1.0,
                beta: 0.3,
            },
            ResolvedMethod::RandomizedResidual {
                fraction: 0.5,
                seed: 3,
            },
        ] {
            let cfg = ShmemConfig {
                num_threads: 4,
                tol: 1e-4,
                max_iterations: 200_000,
                mode: Mode::Asynchronous,
                method: m,
                ..Default::default()
            };
            let r = run(&a, &b, &x0, &cfg);
            assert!(
                r.converged,
                "{} failed to converge: {}",
                m.name(),
                r.final_residual
            );
        }
    }

    #[test]
    fn every_format_converges_on_real_threads() {
        let (a, b, x0) = problem();
        let (x_ref, _) =
            aj_linalg::sweeps::jacobi_solve(&a, &b, &x0, 1e-5, 100_000, Norm::L1).unwrap();
        for format in [StorageFormat::SellC { c: 8 }, StorageFormat::RcmBlocked] {
            let cfg = ShmemConfig {
                num_threads: 4,
                tol: 1e-5,
                max_iterations: 200_000,
                mode: Mode::Asynchronous,
                format,
                ..Default::default()
            };
            let r = run(&a, &b, &x0, &cfg);
            assert!(
                r.converged,
                "{format} failed to converge: {}",
                r.final_residual
            );
            assert!(vecops::rel_diff(&r.x, &x_ref) < 1e-3, "{format}");
        }
    }

    #[test]
    fn momentum_converges_synchronously_too() {
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 1e-5,
            max_iterations: 200_000,
            mode: Mode::Synchronous,
            method: ResolvedMethod::Richardson2 {
                omega: 1.0,
                beta: 0.3,
            },
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(r.converged, "residual {}", r.final_residual);
    }

    #[test]
    fn iteration_cap_terminates_nonconverging_runs() {
        // Tolerance of 0 can never be met; the cap must stop the run.
        let (a, b, x0) = problem();
        let cfg = ShmemConfig {
            num_threads: 2,
            tol: 0.0,
            max_iterations: 50,
            mode: Mode::Synchronous,
            ..Default::default()
        };
        let r = run(&a, &b, &x0, &cfg);
        assert!(!r.converged);
        assert!(r.iterations.iter().all(|&it| (50..=200).contains(&it)));
    }
}
