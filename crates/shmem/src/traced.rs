//! Traced asynchronous Jacobi: records the `s_ij(k)` read mapping.
//!
//! §VII-B: "For each row i, we printed the solution components that i read
//! from other rows for each relaxation of i, and used this information to
//! construct a sequence of propagation matrices." The versioned cells make
//! the "which relaxation produced the value I read" question exact.

use crate::versioned::VersionedVec;
use aj_linalg::CsrMatrix;
use aj_obs::{Histogram, ObsConfig, Snapshot};
use aj_trace::{RelaxationEvent, Trace};
use std::sync::atomic::{AtomicU64, Ordering};

/// Runs asynchronous Jacobi with `num_threads` threads for a fixed number of
/// `iterations` per thread (each iteration relaxes all of the thread's rows
/// once), recording every relaxation's neighbour reads.
///
/// Returns the trace and the final iterate.
///
/// # Panics
/// Panics if `num_threads` is 0 or exceeds the number of rows.
pub fn run_traced(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    num_threads: usize,
    iterations: usize,
) -> (Trace, Vec<f64>) {
    let (trace, x, _) = run_traced_obs(a, b, x0, num_threads, iterations, &ObsConfig::off());
    (trace, x)
}

/// [`run_traced`] plus observability: when `obs` is on, each thread records a
/// *version-lag* histogram — for each sampled relaxation, how many newer
/// versions of each neighbour cell appeared between the read and the end of
/// the relaxation. This is the live measurement of the staleness the §IV
/// propagation analysis reconstructs post-hoc from the trace: lag 0 means the
/// read was the latest write (Gauss–Seidel-like propagation), lag ≥ 1 means
/// a racing writer overtook the value while it was in use.
///
/// Histograms land in the snapshot under `staleness/rank{tid}`.
///
/// # Panics
/// Panics if `num_threads` is 0 or exceeds the number of rows.
pub fn run_traced_obs(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    num_threads: usize,
    iterations: usize,
    obs: &ObsConfig,
) -> (Trace, Vec<f64>, Option<Snapshot>) {
    let n = a.nrows();
    assert!(
        num_threads > 0 && num_threads <= n,
        "need 1 ≤ threads ≤ rows"
    );
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    let diag: Vec<f64> = a.diagonal();
    for (i, &d) in diag.iter().enumerate() {
        assert!(d != 0.0, "zero diagonal in row {i}");
    }

    let ranges = aj_linalg::util::even_ranges(n, num_threads);

    let x = VersionedVec::from_slice(x0);
    let stamp = AtomicU64::new(0);

    let mut per_thread: Vec<(Vec<RelaxationEvent>, Option<Histogram>)> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tid in 0..num_threads {
            let range = ranges[tid].clone();
            let x = &x;
            let stamp = &stamp;
            let diag = &diag;
            handles.push(scope.spawn(move |_| {
                let mut events = Vec::with_capacity(iterations * range.len());
                let mut shard = obs.is_on().then(|| (Histogram::new(), obs.sampler()));
                for _ in 0..iterations {
                    for i in range.clone() {
                        // Jacobi relaxation of row i: the new value depends
                        // only on neighbour values (the own-value term
                        // cancels), so reads are exactly the off-diagonals.
                        let mut acc = 0.0;
                        let mut reads = Vec::with_capacity(a.row_nnz(i).saturating_sub(1));
                        for (j, v) in a.row_iter(i) {
                            if j == i {
                                continue;
                            }
                            let (value, version) = x.cell(j).read();
                            acc += v * value;
                            reads.push((j, version));
                        }
                        x.cell(i).write((b[i] - acc) / diag[i]);
                        let seq = stamp.fetch_add(1, Ordering::Relaxed);
                        if let Some((hist, sampler)) = shard.as_mut() {
                            if sampler.hit() {
                                // Version lag of each read, measured now that
                                // the relaxation is complete: writes that
                                // landed while the value was in use.
                                for &(j, s) in &reads {
                                    hist.record(x.cell(j).version().saturating_sub(s));
                                }
                            }
                        }
                        events.push(RelaxationEvent { row: i, seq, reads });
                    }
                    // Interleave fairly when threads outnumber cores.
                    std::thread::yield_now();
                }
                (events, shard.map(|(hist, _)| hist))
            }));
        }
        per_thread = handles
            .into_iter()
            .map(|h| h.join().expect("thread panicked"))
            .collect();
    })
    .expect("traced solver thread panicked");

    let snapshot = obs.is_on().then(|| {
        let mut snap = Snapshot::new();
        for (tid, (_, hist)) in per_thread.iter().enumerate() {
            if let Some(hist) = hist {
                if hist.count() > 0 {
                    snap.merge_histogram(&format!("staleness/rank{tid}"), hist);
                }
            }
        }
        snap.set_counter("threads", num_threads as u64);
        snap.set_counter("relaxations", (n * iterations) as u64);
        snap
    });
    let events: Vec<RelaxationEvent> = per_thread
        .into_iter()
        .flat_map(|(events, _)| events)
        .collect();
    (Trace::from_events(n, events), x.snapshot(), snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_matrices::{fd, rhs};
    use aj_trace::reconstruct;

    #[test]
    fn trace_has_one_event_per_relaxation() {
        let a = fd::paper_fd("fd40")
            .unwrap()
            .scale_to_unit_diagonal()
            .unwrap();
        let (b, x0) = rhs::paper_problem(a.nrows(), 3);
        let (trace, _) = run_traced(&a, &b, &x0, 4, 5);
        assert_eq!(trace.len(), 40 * 5);
        for i in 0..40 {
            assert_eq!(trace.relaxations_of(i), 5);
        }
    }

    #[test]
    fn single_thread_trace_is_fully_propagated() {
        // One thread relaxes rows in order: a pure multiplicative
        // (Gauss–Seidel-like) history, always expressible.
        let a = fd::laplacian_2d(4, 4).scale_to_unit_diagonal().unwrap();
        let (b, x0) = rhs::paper_problem(16, 5);
        let (trace, _) = run_traced(&a, &b, &x0, 1, 4);
        let analysis = reconstruct(&trace);
        assert_eq!(analysis.fraction(), 1.0);
    }

    #[test]
    fn majority_of_relaxations_are_propagated_multithreaded() {
        // The Figure 2 claim: in practice most relaxations are expressible
        // (the paper's worst case across platforms was 0.8).
        let a = fd::paper_fd("fd40")
            .unwrap()
            .scale_to_unit_diagonal()
            .unwrap();
        let (b, x0) = rhs::paper_problem(40, 11);
        let (trace, _) = run_traced(&a, &b, &x0, 5, 10);
        let analysis = reconstruct(&trace);
        assert!(
            analysis.fraction() > 0.5,
            "propagated fraction {} too low",
            analysis.fraction()
        );
    }

    #[test]
    fn traced_solution_approaches_the_true_solution() {
        let a = fd::laplacian_2d(5, 5).scale_to_unit_diagonal().unwrap();
        let (b, x0) = rhs::paper_problem(25, 9);
        let (_, x) = run_traced(&a, &b, &x0, 2, 2_000);
        assert!(a.relative_residual(&x, &b, aj_linalg::vecops::Norm::L1) < 1e-6);
    }

    #[test]
    fn obs_records_version_lag_per_thread() {
        let a = fd::paper_fd("fd40")
            .unwrap()
            .scale_to_unit_diagonal()
            .unwrap();
        let (b, x0) = rhs::paper_problem(40, 3);
        let (trace, _, snap) = run_traced_obs(&a, &b, &x0, 4, 5, &ObsConfig::full());
        let snap = snap.expect("obs on must yield a snapshot");
        assert_eq!(trace.len(), 40 * 5);
        let per_rank = snap.per_rank("staleness");
        assert_eq!(per_rank.len(), 4, "one shard per thread");
        // Full sampling sees every read: total samples = total off-diagonal
        // reads recorded in the trace.
        let reads: u64 = trace.events().iter().map(|e| e.reads.len() as u64).sum();
        assert_eq!(snap.family_total("staleness").count(), reads);
    }

    #[test]
    fn obs_off_yields_no_snapshot() {
        let a = fd::laplacian_2d(3, 3).scale_to_unit_diagonal().unwrap();
        let (b, x0) = rhs::paper_problem(9, 1);
        let (_, _, snap) = run_traced_obs(&a, &b, &x0, 2, 2, &ObsConfig::off());
        assert!(snap.is_none());
    }

    #[test]
    fn reads_record_neighbours_only() {
        let a = fd::laplacian_2d(3, 3).scale_to_unit_diagonal().unwrap();
        let (b, x0) = rhs::paper_problem(9, 1);
        let (trace, _) = run_traced(&a, &b, &x0, 3, 2);
        for e in trace.events() {
            let expected: Vec<usize> = a
                .row_indices(e.row)
                .iter()
                .copied()
                .filter(|&j| j != e.row)
                .collect();
            let mut got: Vec<usize> = e.reads.iter().map(|&(j, _)| j).collect();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }
}
