//! # aj-shmem
//!
//! Real-thread shared-memory synchronous and asynchronous Jacobi, following
//! the paper's §V implementation:
//!
//! * the solution `x` and residual `r` live in shared arrays; every thread
//!   owns a contiguous block of rows (its subdomain);
//! * one step is `r = b − Ax` over owned rows, then `x += D⁻¹ r`, then a
//!   convergence check;
//! * the synchronous variant inserts a barrier after the residual and the
//!   convergence check; the asynchronous variant has no barriers and reads
//!   "whatever information is available" (Baudet's racy scheme);
//! * element reads/writes are word-atomic — the paper relies on aligned
//!   8-byte stores being atomic on x86; we use `AtomicU64` bit-casts with
//!   `Relaxed` ordering, which is the same guarantee made portable;
//! * termination uses the shared flag-array protocol of §V: a converged
//!   thread raises its flag but keeps relaxing until everyone has converged.
//!
//! [`traced`] adds a seqlock-versioned variant that records which *version*
//! of each neighbour value every relaxation consumed, producing an
//! `aj_trace::Trace` for the Figure 2 propagated-fraction analysis.

// Index-based loops over coupled arrays are the clearest form for these
// numeric kernels; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod shared_vec;
pub mod solver;
pub mod traced;
pub mod versioned;

pub use shared_vec::SharedVec;
pub use solver::{DelayInjection, Mode, ShmemConfig, ShmemRun};
