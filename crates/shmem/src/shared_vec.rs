//! Shared `f64` arrays with word-atomic access.
//!
//! The paper's OpenMP code writes and reads `double`s in shared arrays
//! without atomics, relying on the x86 guarantee that aligned 8-byte
//! accesses are atomic. In Rust that would be a data race (UB), so we store
//! the bits in `AtomicU64` with `Relaxed` ordering — identical machine code
//! on x86-64, defined behaviour everywhere.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size shared vector of `f64` with per-element atomic access.
#[derive(Debug)]
pub struct SharedVec {
    data: Vec<AtomicU64>,
}

impl SharedVec {
    /// Creates from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        SharedVec {
            data: values.iter().map(|v| AtomicU64::new(v.to_bits())).collect(),
        }
    }

    /// All zeros, length `n`.
    pub fn zeros(n: usize) -> Self {
        SharedVec {
            data: (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect(),
        }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Racy (relaxed) read of element `i`.
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        f64::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    /// Racy (relaxed) write of element `i`.
    #[inline]
    pub fn store(&self, i: usize, value: f64) {
        self.data[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Copies the current contents into a `Vec` (itself racy: elements are
    /// read one at a time).
    pub fn snapshot(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.load(i)).collect()
    }

    /// Overwrites all elements from a slice.
    pub fn copy_from(&self, values: &[f64]) {
        assert_eq!(values.len(), self.len());
        for (i, &v) in values.iter().enumerate() {
            self.store(i, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_values() {
        let v = SharedVec::from_slice(&[1.5, -2.25, 0.0]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.load(0), 1.5);
        v.store(2, f64::MIN_POSITIVE);
        assert_eq!(v.load(2), f64::MIN_POSITIVE);
        assert_eq!(v.snapshot(), vec![1.5, -2.25, f64::MIN_POSITIVE]);
    }

    #[test]
    fn special_values_survive_bitcast() {
        let v = SharedVec::zeros(2);
        v.store(0, f64::NEG_INFINITY);
        v.store(1, -0.0);
        assert_eq!(v.load(0), f64::NEG_INFINITY);
        assert!(v.load(1) == 0.0 && v.load(1).is_sign_negative());
    }

    #[test]
    fn concurrent_read_write_is_word_atomic() {
        // A reader must never observe a torn value: writers alternate between
        // two bit patterns, readers must only ever see one of them.
        use std::sync::Arc;
        let v = Arc::new(SharedVec::from_slice(&[1.0]));
        let writer = {
            let v = Arc::clone(&v);
            std::thread::spawn(move || {
                for k in 0..100_000u64 {
                    v.store(0, if k % 2 == 0 { 1.0 } else { -1.0 });
                }
            })
        };
        for _ in 0..100_000 {
            let x = v.load(0);
            assert!(x == 1.0 || x == -1.0, "torn read: {x}");
        }
        writer.join().unwrap();
    }

    #[test]
    fn copy_from_replaces_contents() {
        let v = SharedVec::zeros(3);
        v.copy_from(&[7.0, 8.0, 9.0]);
        assert_eq!(v.snapshot(), vec![7.0, 8.0, 9.0]);
    }
}
