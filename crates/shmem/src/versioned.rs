//! Seqlock-versioned shared cells.
//!
//! The Figure 2 analysis needs to know *which relaxation's value* a read
//! observed — the `s_ij(k)` mapping. A plain racy `f64` read cannot tell.
//! Each [`VersionedCell`] pairs the value with a version counter using the
//! seqlock protocol: writers bump the counter to odd, store, bump to even;
//! readers retry until they see a stable even counter. A successful read
//! returns `(value of relaxation v, v)` exactly.

use std::sync::atomic::{AtomicU64, Ordering};

/// One `f64` cell whose writes are numbered.
#[derive(Debug)]
pub struct VersionedCell {
    /// Even = stable; odd = write in progress. Version `v` (the number of
    /// completed writes) is `seq / 2`.
    seq: AtomicU64,
    bits: AtomicU64,
}

impl VersionedCell {
    /// A cell holding `value` at version 0 (the initial guess).
    pub fn new(value: f64) -> Self {
        VersionedCell {
            seq: AtomicU64::new(0),
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Publishes a new value; returns the version it became (1 for the first
    /// write). Only one writer per cell may be active at a time — in the
    /// solvers each row has exactly one owning thread, which guarantees
    /// this.
    pub fn write(&self, value: f64) -> u64 {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert!(s.is_multiple_of(2), "concurrent writers on a VersionedCell");
        self.seq.store(s + 1, Ordering::Release);
        self.bits.store(value.to_bits(), Ordering::Release);
        self.seq.store(s + 2, Ordering::Release);
        (s + 2) / 2
    }

    /// Reads a consistent `(value, version)` pair, retrying through
    /// in-progress writes.
    pub fn read(&self) -> (f64, u64) {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if !s1.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            let bits = self.bits.load(Ordering::Acquire);
            let s2 = self.seq.load(Ordering::Acquire);
            if s1 == s2 {
                return (f64::from_bits(bits), s1 / 2);
            }
            std::hint::spin_loop();
        }
    }

    /// Current version (number of completed writes).
    pub fn version(&self) -> u64 {
        self.seq.load(Ordering::Acquire) / 2
    }
}

/// A shared vector of versioned cells.
#[derive(Debug)]
pub struct VersionedVec {
    cells: Vec<VersionedCell>,
}

impl VersionedVec {
    /// Builds from initial values (all version 0).
    pub fn from_slice(values: &[f64]) -> Self {
        VersionedVec {
            cells: values.iter().map(|&v| VersionedCell::new(v)).collect(),
        }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell `i`.
    #[inline]
    pub fn cell(&self, i: usize) -> &VersionedCell {
        &self.cells[i]
    }

    /// Snapshot of the values (each cell read consistently, the vector as a
    /// whole racy).
    pub fn snapshot(&self) -> Vec<f64> {
        self.cells.iter().map(|c| c.read().0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_count_writes() {
        let c = VersionedCell::new(3.0);
        assert_eq!(c.read(), (3.0, 0));
        assert_eq!(c.write(4.0), 1);
        assert_eq!(c.write(5.0), 2);
        assert_eq!(c.read(), (5.0, 2));
        assert_eq!(c.version(), 2);
    }

    #[test]
    fn reads_are_always_consistent_pairs_under_contention() {
        use std::sync::Arc;
        let c = Arc::new(VersionedCell::new(0.0));
        let writer = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for k in 1..=50_000u64 {
                    c.write(k as f64);
                }
            })
        };
        for _ in 0..50_000 {
            let (v, ver) = c.read();
            // Value written at version `ver` is exactly `ver as f64`.
            assert_eq!(v, ver as f64, "inconsistent pair ({v}, {ver})");
        }
        writer.join().unwrap();
    }

    #[test]
    fn vec_of_cells() {
        let v = VersionedVec::from_slice(&[1.0, 2.0]);
        assert_eq!(v.len(), 2);
        v.cell(1).write(9.0);
        assert_eq!(v.snapshot(), vec![1.0, 9.0]);
        assert!(!v.is_empty());
    }
}
