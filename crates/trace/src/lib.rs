//! # aj-trace
//!
//! Relaxation traces and the paper's §IV-A question: *which relaxations of a
//! real asynchronous execution can be expressed as a sequence of propagation
//! matrices?*
//!
//! A [`Trace`] records, for every relaxation of every row, the *version*
//! (relaxation count) of each neighbour value the row read — the mapping
//! `s_ij(k)` of Equation (5). [`propagation::reconstruct`] then greedily
//! builds the parallel steps `Φ(l)` subject to the paper's two conditions:
//!
//! 1. row `i` may relax only when every neighbour `j` has relaxed *exactly*
//!    `s_ij` times (the information it read is the current state), and
//! 2. relaxing `i` must not strand another row `j` whose next relaxation
//!    read the current version of `i` (it would later read an old value).
//!
//! When the conditions deadlock (Figure 1(b)), condition 2 is waived for one
//! step and the stranded relaxations are counted as *non-propagated*,
//! exactly as the paper treats `p₃` in its example. The fraction of
//! propagated relaxations is the Figure 2 quantity.

pub mod examples;
pub mod propagation;
pub mod stats;
pub mod trace;

pub use propagation::{reconstruct, PropagationAnalysis};
pub use stats::{trace_stats, TraceStats};
pub use trace::{RelaxationEvent, Trace};
