//! The paper's Figure 1 examples as ready-made traces.
//!
//! Four processes each relax once. Red dots in the figure are relaxations;
//! blue arrows are the information flows recorded here as `(neighbour,
//! version)` reads. Rows are 0-based (`p1` → row 0, …, `p4` → row 3).

use crate::trace::{RelaxationEvent, Trace};

/// Figure 1(a): expressible as the sequence `Φ(1) = {p4}`,
/// `Φ(2) = {p1, p2}`, `Φ(3) = {p3}`.
///
/// Reads: `s12 = 0, s13 = 0; s21 = 0, s24 = 1; s31 = 1, s34 = 1;
/// s42 = 0, s43 = 0`.
pub fn figure1a() -> Trace {
    Trace::from_events(
        4,
        vec![
            RelaxationEvent {
                row: 0,
                seq: 1,
                reads: vec![(1, 0), (2, 0)],
            },
            RelaxationEvent {
                row: 1,
                seq: 2,
                reads: vec![(0, 0), (3, 1)],
            },
            RelaxationEvent {
                row: 2,
                seq: 3,
                reads: vec![(0, 1), (3, 1)],
            },
            RelaxationEvent {
                row: 3,
                seq: 0,
                reads: vec![(1, 0), (2, 0)],
            },
        ],
    )
}

/// Figure 1(b): `s12 = 1` and `s34 = 0` (otherwise like (a)); `p3`'s
/// relaxation cannot be expressed as part of any propagation-matrix
/// sequence, so 3 of 4 relaxations are propagated.
pub fn figure1b() -> Trace {
    Trace::from_events(
        4,
        vec![
            RelaxationEvent {
                row: 0,
                seq: 1,
                reads: vec![(1, 1), (2, 0)],
            },
            RelaxationEvent {
                row: 1,
                seq: 2,
                reads: vec![(0, 0), (3, 1)],
            },
            RelaxationEvent {
                row: 2,
                seq: 3,
                reads: vec![(0, 1), (3, 0)],
            },
            RelaxationEvent {
                row: 3,
                seq: 0,
                reads: vec![(1, 0), (2, 0)],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::reconstruct;

    #[test]
    fn figure1a_is_fully_expressible() {
        let a = reconstruct(&figure1a());
        assert_eq!(a.fraction(), 1.0);
        assert_eq!(a.steps, vec![vec![3], vec![0, 1], vec![2]]);
    }

    #[test]
    fn figure1b_loses_exactly_p3() {
        let a = reconstruct(&figure1b());
        assert_eq!(a.propagated, 3);
        assert_eq!(a.non_propagated, vec![(2, 0)]);
    }
}
