//! Trace data structures.

/// One relaxation of one row, with the neighbour versions it read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelaxationEvent {
    /// The row that relaxed.
    pub row: usize,
    /// Global completion stamp (wall-clock order across all rows). Ties are
    /// broken by row index when sorting.
    pub seq: u64,
    /// `(neighbour row j, version s_ij read)` — the relaxation count of `j`
    /// whose value this relaxation consumed. Version 0 is the initial guess.
    pub reads: Vec<(usize, u64)>,
}

/// A complete asynchronous execution history.
#[derive(Debug, Clone)]
pub struct Trace {
    n: usize,
    /// Events sorted by `(seq, row)`.
    events: Vec<RelaxationEvent>,
    /// `per_row[i]` = indices into `events` of row `i`'s relaxations, in
    /// order (so `per_row[i][k]` is relaxation `k + 1` of row `i`).
    per_row: Vec<Vec<usize>>,
}

impl Trace {
    /// Builds a trace from unordered events; sorts by `(seq, row)` and
    /// indexes per-row relaxation sequences.
    ///
    /// # Panics
    /// Panics on out-of-range row indices or self-reads.
    pub fn from_events(n: usize, mut events: Vec<RelaxationEvent>) -> Trace {
        for e in &events {
            assert!(e.row < n, "event row {} out of range ({n})", e.row);
            for &(j, _) in &e.reads {
                assert!(j < n, "read of out-of-range row {j}");
                assert!(
                    j != e.row,
                    "row {} reads itself; record neighbours only",
                    e.row
                );
            }
        }
        events.sort_by_key(|e| (e.seq, e.row));
        let mut per_row = vec![Vec::new(); n];
        for (idx, e) in events.iter().enumerate() {
            per_row[e.row].push(idx);
        }
        Trace { n, events, per_row }
    }

    /// Problem size (number of rows).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of relaxation events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, sorted by `(seq, row)`.
    pub fn events(&self) -> &[RelaxationEvent] {
        &self.events
    }

    /// Number of relaxations row `i` performed.
    pub fn relaxations_of(&self, i: usize) -> usize {
        self.per_row[i].len()
    }

    /// The `k`-th (0-based) relaxation event of row `i`.
    pub fn event_of(&self, i: usize, k: usize) -> &RelaxationEvent {
        &self.events[self.per_row[i][k]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_sorted_and_indexed_per_row() {
        let events = vec![
            RelaxationEvent {
                row: 1,
                seq: 5,
                reads: vec![(0, 0)],
            },
            RelaxationEvent {
                row: 0,
                seq: 2,
                reads: vec![(1, 0)],
            },
            RelaxationEvent {
                row: 0,
                seq: 9,
                reads: vec![(1, 1)],
            },
        ];
        let t = Trace::from_events(2, events);
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].row, 0);
        assert_eq!(t.relaxations_of(0), 2);
        assert_eq!(t.relaxations_of(1), 1);
        assert_eq!(t.event_of(0, 1).seq, 9);
    }

    #[test]
    #[should_panic(expected = "reads itself")]
    fn self_reads_are_rejected() {
        Trace::from_events(
            2,
            vec![RelaxationEvent {
                row: 0,
                seq: 1,
                reads: vec![(0, 0)],
            }],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_row_rejected() {
        Trace::from_events(
            1,
            vec![RelaxationEvent {
                row: 1,
                seq: 0,
                reads: vec![],
            }],
        );
    }

    #[test]
    fn tie_breaking_by_row() {
        let events = vec![
            RelaxationEvent {
                row: 1,
                seq: 3,
                reads: vec![],
            },
            RelaxationEvent {
                row: 0,
                seq: 3,
                reads: vec![],
            },
        ];
        let t = Trace::from_events(2, events);
        assert_eq!(t.events()[0].row, 0);
        assert!(!t.is_empty());
    }
}
