//! Trace diagnostics: how asynchronous was an execution, quantitatively?
//!
//! The propagated fraction (Figure 2) compresses a trace to one number;
//! these statistics expose the structure behind it — how stale reads were,
//! how unevenly rows progressed, and how far the execution sat from the
//! synchronous ideal.

use crate::trace::Trace;
use aj_obs::Histogram;

/// Summary statistics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total relaxation events.
    pub total_relaxations: usize,
    /// Total neighbour reads recorded.
    pub total_reads: usize,
    /// Log-bucket histogram of read lag — how far behind the producer's
    /// version *at the reader's completion time* each read was (0 = the read
    /// used the producer's then-current value). Shares the [`Histogram`]
    /// format the live engines record, so post-hoc trace analysis and live
    /// observability snapshots are directly comparable.
    pub lag: Histogram,
    /// Mean read lag.
    pub mean_lag: f64,
    /// Maximum read lag.
    pub max_lag: u64,
    /// Per-row relaxation counts: (min, max).
    pub relaxations_min_max: (usize, usize),
    /// Progress imbalance: max/min relaxation count (1.0 = perfectly even;
    /// infinite if some row never relaxed).
    pub imbalance: f64,
}

/// Computes [`TraceStats`].
///
/// Read lag is measured against the producer's version at the *reader's*
/// completion stamp: replaying events in `seq` order, a read `(j, s)` made
/// by an event at which `j` had completed `v_j` relaxations has lag
/// `v_j − s`. Lag 0 for every read characterizes a sequentially consistent
/// (fully propagatable) execution; large lags mark the delayed-worker and
/// stale-ghost regimes.
pub fn trace_stats(trace: &Trace) -> TraceStats {
    let n = trace.n();
    let mut versions = vec![0u64; n];
    let mut lag = Histogram::new();
    let mut total_reads = 0usize;
    let mut lag_sum = 0u128;
    let mut per_row = vec![0usize; n];
    for e in trace.events() {
        for &(j, s) in &e.reads {
            // Reads of future versions (possible for exotic traces) count
            // as lag 0.
            let l = versions[j].saturating_sub(s);
            lag.record(l);
            lag_sum += l as u128;
            total_reads += 1;
        }
        versions[e.row] += 1;
        per_row[e.row] += 1;
    }
    let max_lag = lag.max().unwrap_or(0);
    let (min_r, max_r) = per_row
        .iter()
        .fold((usize::MAX, 0usize), |(lo, hi), &c| (lo.min(c), hi.max(c)));
    let min_r = if n == 0 { 0 } else { min_r };
    TraceStats {
        total_relaxations: trace.len(),
        total_reads,
        mean_lag: if total_reads == 0 {
            0.0
        } else {
            lag_sum as f64 / total_reads as f64
        },
        max_lag,
        lag,
        relaxations_min_max: (min_r, max_r),
        imbalance: if min_r == 0 {
            f64::INFINITY
        } else {
            max_r as f64 / min_r as f64
        },
    }
}

/// Writes a trace as CSV (`row,seq,reads`) where `reads` is a
/// `;`-separated list of `j:version` pairs — a portable interchange format
/// for offline analysis.
pub fn write_trace_csv<W: std::io::Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(w, "row,seq,reads")?;
    for e in trace.events() {
        let reads: Vec<String> = e.reads.iter().map(|(j, s)| format!("{j}:{s}")).collect();
        writeln!(w, "{},{},{}", e.row, e.seq, reads.join(";"))?;
    }
    Ok(())
}

/// Reads a trace back from the [`write_trace_csv`] format.
pub fn read_trace_csv<R: std::io::BufRead>(n: usize, r: R) -> std::io::Result<Trace> {
    let mut events = Vec::new();
    for (ln, line) in r.lines().enumerate() {
        let line = line?;
        if ln == 0 || line.trim().is_empty() {
            continue;
        }
        let bad = || {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad trace CSV line {}: {line}", ln + 1),
            )
        };
        let mut parts = line.splitn(3, ',');
        let row: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let seq: u64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
        let reads_str = parts.next().ok_or_else(bad)?;
        let mut reads = Vec::new();
        for pair in reads_str.split(';').filter(|p| !p.is_empty()) {
            let (j, s) = pair.split_once(':').ok_or_else(bad)?;
            reads.push((j.parse().map_err(|_| bad())?, s.parse().map_err(|_| bad())?));
        }
        events.push(crate::trace::RelaxationEvent { row, seq, reads });
    }
    Ok(Trace::from_events(n, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RelaxationEvent;

    fn ev(row: usize, seq: u64, reads: &[(usize, u64)]) -> RelaxationEvent {
        RelaxationEvent {
            row,
            seq,
            reads: reads.to_vec(),
        }
    }

    #[test]
    fn sequential_trace_has_zero_lag() {
        // Each event reads the producer's current version.
        let t = Trace::from_events(
            2,
            vec![
                ev(0, 0, &[(1, 0)]),
                ev(1, 1, &[(0, 1)]),
                ev(0, 2, &[(1, 1)]),
            ],
        );
        let s = trace_stats(&t);
        assert_eq!(s.total_relaxations, 3);
        assert_eq!(s.total_reads, 3);
        assert_eq!(s.mean_lag, 0.0);
        assert_eq!(s.max_lag, 0);
        assert_eq!(s.lag.count(), 3);
        assert_eq!(s.lag.max(), Some(0));
        assert_eq!(s.relaxations_min_max, (1, 2));
        assert_eq!(s.imbalance, 2.0);
    }

    #[test]
    fn stale_reads_show_up_as_lag() {
        // Row 1 reads version 0 of row 0 after row 0 relaxed twice: lag 2.
        let t = Trace::from_events(2, vec![ev(0, 0, &[]), ev(0, 1, &[]), ev(1, 2, &[(0, 0)])]);
        let s = trace_stats(&t);
        assert_eq!(s.max_lag, 2);
        assert_eq!(s.lag.count(), 1);
        assert_eq!(s.lag.min(), Some(2));
        assert_eq!(s.mean_lag, 2.0);
    }

    #[test]
    fn empty_trace_stats() {
        let s = trace_stats(&Trace::from_events(3, vec![]));
        assert_eq!(s.total_relaxations, 0);
        assert_eq!(s.mean_lag, 0.0);
        assert!(s.imbalance.is_infinite());
    }

    #[test]
    fn csv_round_trip() {
        let t = Trace::from_events(
            3,
            vec![
                ev(0, 0, &[(1, 0), (2, 0)]),
                ev(1, 1, &[(0, 1)]),
                ev(2, 2, &[]),
            ],
        );
        let mut buf = Vec::new();
        write_trace_csv(&t, &mut buf).unwrap();
        let back = read_trace_csv(3, &buf[..]).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.events().iter().zip(back.events()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        let garbage = "row,seq,reads\nnot,a,row:x\n";
        assert!(read_trace_csv(3, garbage.as_bytes()).is_err());
    }
}
