//! Greedy reconstruction of propagation-matrix sequences from traces
//! (paper §IV-A).

use crate::trace::Trace;

/// Result of reconstructing `Φ(1), Φ(2), …` from a trace.
#[derive(Debug, Clone)]
pub struct PropagationAnalysis {
    /// Total relaxations in the trace.
    pub total: usize,
    /// Relaxations expressible through propagation matrices.
    pub propagated: usize,
    /// The reconstructed parallel steps: `steps[l]` is `Φ(l+1)` (rows relaxed
    /// at that step, ascending). Includes only propagated relaxations.
    pub steps: Vec<Vec<usize>>,
    /// `(row, relaxation index 0-based)` of relaxations that could *not* be
    /// expressed (they read a version that the reconstructed timeline had
    /// already passed, typically after a condition-2 waiver).
    pub non_propagated: Vec<(usize, usize)>,
}

impl PropagationAnalysis {
    /// The Figure 2 quantity: `propagated / total` (1.0 for empty traces).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.propagated as f64 / self.total as f64
        }
    }
}

/// Status of one read `(j, s)` against the reconstruction state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadStatus {
    /// The reconstructed value of `j` is exactly physical version `s`.
    Satisfied,
    /// The timeline moved past version `s`; it can never be reproduced.
    Hopeless,
    /// Version `s` was already produced physically but by relaxations that
    /// were deferred out of the matrix sequence; the timeline can be
    /// advanced to it by inserting those deferred relaxations (as separate,
    /// non-propagated operations) at this point.
    Advanceable,
    /// Version `s` lies in the future; keep waiting.
    Waiting,
}

/// Reconstruction state.
///
/// * `next[i]` — index (0-based) of row `i`'s next unprocessed relaxation.
/// * `clean[i]` — the physical version the reconstructed value of row `i`
///   currently equals. Propagating relaxation `k` of row `i` sets
///   `clean[i] = k + 1`; *skipping* one leaves `clean[i]` untouched, because
///   a non-propagated relaxation is deferred out of the reconstructed
///   timeline entirely (the paper "treats it separately"). A Jacobi
///   relaxation of row `i` does not read `x_i` itself (for the new value),
///   so a later relaxation of `i` with clean reads restores
///   `clean[i] = that version` regardless of skips in between.
struct State {
    next: Vec<usize>,
    clean: Vec<u64>,
}

impl State {
    fn read_status(&self, j: usize, s: u64) -> ReadStatus {
        if self.clean[j] == s {
            ReadStatus::Satisfied
        } else if s < self.clean[j] {
            ReadStatus::Hopeless
        } else if s <= self.next[j] as u64 {
            ReadStatus::Advanceable
        } else {
            ReadStatus::Waiting
        }
    }
}

/// Reconstructs the parallel steps.
///
/// Each round:
///
/// 1. **Skip hopeless relaxations**: a pending relaxation with a read the
///    timeline can never reproduce is recorded as non-propagated and
///    deferred (its row's clean version does not change).
/// 2. **Ready set** `R`: rows whose next relaxation's reads are all
///    satisfied by the current reconstructed state (condition 1).
/// 3. **Condition 2 pruning** to a fixpoint: drop `i` from `R` when some row
///    `j ∉ R` still needs the *current* clean version of `i` for its next
///    relaxation — relaxing `i` now would strand `j`. Rows relaxed in the
///    same step read pre-step values, so mutual dependencies inside `R` are
///    fine.
/// 4. A non-empty pruned set becomes `Φ(l)`. If pruning emptied a non-empty
///    ready set (the Figure 1(b) deadlock), condition 2 is waived and the
///    whole ready set relaxes; its victims surface as hopeless in the next
///    round, exactly how the paper strands `p₃`. If nothing is ready at
///    all, the earliest pending event's producers are advanced through
///    their deferred versions (re-inserting skipped relaxations into the
///    timeline as separate operations), which lets the reconstruction
///    re-synchronize after a burst of stranding instead of collapsing.
pub fn reconstruct(trace: &Trace) -> PropagationAnalysis {
    let n = trace.n();
    let mut st = State {
        next: vec![0usize; n],
        clean: vec![0u64; n],
    };
    let mut remaining = trace.len();
    let mut steps: Vec<Vec<usize>> = Vec::new();
    let mut non_propagated: Vec<(usize, usize)> = Vec::new();
    let mut propagated = 0usize;

    let pending = |i: usize, st: &State| st.next[i] < trace.relaxations_of(i);

    while remaining > 0 {
        // 1. Skip hopeless pending relaxations until none remain. Skipping
        // never changes clean versions, so one pass per outer round
        // suffices; new hopelessness only arises from step application.
        for i in 0..n {
            while pending(i, &st)
                && trace
                    .event_of(i, st.next[i])
                    .reads
                    .iter()
                    .any(|&(j, s)| st.read_status(j, s) == ReadStatus::Hopeless)
            {
                non_propagated.push((i, st.next[i]));
                st.next[i] += 1;
                remaining -= 1;
            }
        }
        if remaining == 0 {
            break;
        }

        // 2. Ready set: every read satisfied.
        let ready: Vec<usize> = (0..n)
            .filter(|&i| {
                pending(i, &st)
                    && trace
                        .event_of(i, st.next[i])
                        .reads
                        .iter()
                        .all(|&(j, s)| st.read_status(j, s) == ReadStatus::Satisfied)
            })
            .collect();

        if ready.is_empty() {
            // Deadlock. Guided by physical completion order, take the
            // earliest pending event and try to unblock it by advancing its
            // producers' timelines through their deferred (skipped)
            // versions — those relaxations happened physically, so the
            // values exist; inserting them here strands only readers of the
            // versions being jumped over, which the next round's skip pass
            // collects (the paper's "uses old information ⇒ not counted").
            let earliest = (0..n)
                .filter(|&i| pending(i, &st))
                .min_by_key(|&i| trace.event_of(i, st.next[i]).seq)
                .expect("remaining > 0 implies a pending event");
            let mut advanced = false;
            for &(j, s) in &trace.event_of(earliest, st.next[earliest]).reads {
                if st.read_status(j, s) == ReadStatus::Advanceable {
                    st.clean[j] = s;
                    advanced = true;
                }
            }
            if !advanced {
                // The event waits on versions that do not exist yet while
                // nothing else is ready — impossible for physically
                // consistent traces, but force progress for robustness.
                non_propagated.push((earliest, st.next[earliest]));
                st.next[earliest] += 1;
                remaining -= 1;
            }
            continue;
        }

        // 3. Condition-2 pruning to a fixpoint.
        let mut in_set = vec![false; n];
        for &i in &ready {
            in_set[i] = true;
        }
        loop {
            let mut changed = false;
            for &i in &ready {
                if !in_set[i] {
                    continue;
                }
                let strands_someone = (0..n).any(|j| {
                    j != i
                        && !in_set[j]
                        && pending(j, &st)
                        && trace
                            .event_of(j, st.next[j])
                            .reads
                            .iter()
                            .any(|&(r, s)| r == i && s == st.clean[i])
                });
                if strands_someone {
                    in_set[i] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut phi: Vec<usize> = ready.iter().copied().filter(|&i| in_set[i]).collect();
        if phi.is_empty() {
            // 4. Deadlock: waive condition 2 — but minimally, for the single
            // ready row that physically completed first, so the stranding it
            // causes stays as small as possible (the paper's example waives
            // exactly one row, p₄).
            let first = ready
                .iter()
                .copied()
                .min_by_key(|&i| trace.event_of(i, st.next[i]).seq)
                .expect("ready is non-empty");
            phi = vec![first];
        }

        for &i in &phi {
            st.clean[i] = st.next[i] as u64 + 1;
            st.next[i] += 1;
            remaining -= 1;
            propagated += 1;
        }
        steps.push(phi);
    }

    PropagationAnalysis {
        total: trace.len(),
        propagated,
        steps,
        non_propagated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{RelaxationEvent, Trace};

    fn ev(row: usize, seq: u64, reads: &[(usize, u64)]) -> RelaxationEvent {
        RelaxationEvent {
            row,
            seq,
            reads: reads.to_vec(),
        }
    }

    #[test]
    fn empty_trace_is_fully_propagated() {
        let t = Trace::from_events(3, vec![]);
        let a = reconstruct(&t);
        assert_eq!(a.total, 0);
        assert_eq!(a.fraction(), 1.0);
        assert!(a.steps.is_empty());
    }

    #[test]
    fn synchronous_round_is_one_step() {
        // All rows relax once reading everyone's initial values: one Φ with
        // all rows (a synchronous Jacobi iteration).
        let t = Trace::from_events(
            3,
            vec![
                ev(0, 0, &[(1, 0)]),
                ev(1, 1, &[(0, 0), (2, 0)]),
                ev(2, 2, &[(1, 0)]),
            ],
        );
        let a = reconstruct(&t);
        assert_eq!(a.propagated, 3);
        assert_eq!(a.steps.len(), 1);
        assert_eq!(a.steps[0], vec![0, 1, 2]);
    }

    #[test]
    fn gauss_seidel_order_is_one_row_per_step() {
        // Row k reads the *new* values of rows < k: forced sequentialization.
        let t = Trace::from_events(
            3,
            vec![
                ev(0, 0, &[(1, 0)]),
                ev(1, 1, &[(0, 1), (2, 0)]),
                ev(2, 2, &[(1, 1)]),
            ],
        );
        let a = reconstruct(&t);
        assert_eq!(a.fraction(), 1.0);
        assert_eq!(a.steps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn paper_example_a_reconstructs_in_three_steps() {
        // Figure 1(a): s12=0, s13=0; s21=0, s24=1; s31=1, s34=1; s42=0,
        // s43=0 (1-based rows in the paper, 0-based here). Expected:
        // Φ(1)={p4}, Φ(2)={p1,p2}, Φ(3)={p3}, all propagated.
        let t = Trace::from_events(
            4,
            vec![
                ev(0, 10, &[(1, 0), (2, 0)]),
                ev(1, 11, &[(0, 0), (3, 1)]),
                ev(2, 12, &[(0, 1), (3, 1)]),
                ev(3, 9, &[(1, 0), (2, 0)]),
            ],
        );
        let a = reconstruct(&t);
        assert_eq!(a.fraction(), 1.0, "all four relaxations are propagated");
        assert_eq!(a.steps, vec![vec![3], vec![0, 1], vec![2]]);
    }

    #[test]
    fn paper_example_b_strands_row_three() {
        // Figure 1(b): like (a) but s12=1 and s34=0. p3 (our row 2) cannot
        // be expressed; the paper reconstructs Φ(1)={p4}, Φ(2)={p2},
        // Φ(3)={p1} and treats p3's relaxation separately. Fraction 3/4.
        let t = Trace::from_events(
            4,
            vec![
                ev(0, 10, &[(1, 1), (2, 0)]),
                ev(1, 11, &[(0, 0), (3, 1)]),
                ev(2, 12, &[(0, 1), (3, 0)]),
                ev(3, 9, &[(1, 0), (2, 0)]),
            ],
        );
        let a = reconstruct(&t);
        assert_eq!(a.propagated, 3);
        assert_eq!(a.non_propagated, vec![(2, 0)]);
        assert!((a.fraction() - 0.75).abs() < 1e-15);
        assert_eq!(a.steps, vec![vec![3], vec![1], vec![0]]);
    }

    #[test]
    fn waiver_victims_become_non_propagated() {
        // Row 1 needs both the initial value of row 0 and the *first new*
        // value of row 2, while row 2 needs the first new value of row 0:
        // row 0 must relax before row 2, stranding row 1's read of (0, 0).
        let t = Trace::from_events(
            3,
            vec![
                ev(0, 0, &[(1, 0)]),
                ev(2, 1, &[(0, 1)]),
                ev(1, 2, &[(0, 0), (2, 1)]),
            ],
        );
        let a = reconstruct(&t);
        assert_eq!(a.propagated, 2);
        assert_eq!(a.non_propagated, vec![(1, 0)]);
        assert_eq!(a.steps, vec![vec![0], vec![2]]);
    }

    #[test]
    fn skipped_relaxation_does_not_taint_initial_reads() {
        // Row 2's relaxation is stranded, but row 0 read version 0 of row 2,
        // which stays reproducible because the skip is deferred out of the
        // timeline (this is the Figure 1(b) subtlety).
        let t = Trace::from_events(
            3,
            vec![
                ev(1, 0, &[(2, 0)]),
                ev(2, 1, &[(1, 0)]), // will be stranded by row 1 relaxing first? no: reads (1,0)
                ev(0, 2, &[(2, 0)]),
            ],
        );
        // Here everything is actually propagatable in two steps:
        // Φ(1) ⊇ {0,1,2} all read version 0.
        let a = reconstruct(&t);
        assert_eq!(a.fraction(), 1.0);
        assert_eq!(a.steps.len(), 1);
        assert_eq!(a.steps[0], vec![0, 1, 2]);
    }

    #[test]
    fn interleaved_two_row_ping_pong_is_fully_propagated() {
        // Rows alternate, each reading the other's freshest value — pure
        // Gauss–Seidel behaviour, fully expressible.
        let t = Trace::from_events(
            2,
            vec![
                ev(0, 0, &[(1, 0)]),
                ev(1, 1, &[(0, 1)]),
                ev(0, 2, &[(1, 1)]),
                ev(1, 3, &[(0, 2)]),
            ],
        );
        let a = reconstruct(&t);
        assert_eq!(a.fraction(), 1.0);
        assert_eq!(a.steps, vec![vec![0], vec![1], vec![0], vec![1]]);
    }

    #[test]
    fn counts_are_conserved() {
        let t = Trace::from_events(
            3,
            vec![
                ev(0, 0, &[(1, 0)]),
                ev(1, 1, &[(0, 0), (2, 1)]),
                ev(2, 2, &[(1, 0)]),
                ev(0, 3, &[(1, 0)]),
            ],
        );
        let a = reconstruct(&t);
        assert_eq!(a.propagated + a.non_propagated.len(), a.total);
        let in_steps: usize = a.steps.iter().map(|s| s.len()).sum();
        assert_eq!(in_steps, a.propagated);
    }
}
