//! Matrix Market I/O.
//!
//! The paper's Table I problems come from the SuiteSparse collection, which
//! distributes `.mtx` files. We ship synthetic analogues (see [`crate::suite`]),
//! but this reader lets anyone with the real files reproduce the distributed
//! experiments on the original data: drop the file path into the figure
//! binaries' `--matrix` option.
//!
//! Supported: `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` (pattern entries get
//! value 1.0). Comments (`%`) and blank lines are skipped.

use aj_linalg::{CooMatrix, CsrMatrix, LinalgError};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses a Matrix Market stream into CSR.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix, LinalgError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| LinalgError::InvalidStructure("empty Matrix Market stream".into()))?
        .map_err(|e| LinalgError::InvalidStructure(format!("I/O error: {e}")))?;
    let h: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_ascii_lowercase())
        .collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(LinalgError::InvalidStructure(format!(
            "bad header: {header}"
        )));
    }
    if h[2] != "coordinate" {
        return Err(LinalgError::InvalidStructure(
            "only coordinate format is supported".into(),
        ));
    }
    let pattern = match h[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(LinalgError::InvalidStructure(format!(
                "unsupported field type: {other}"
            )))
        }
    };
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(LinalgError::InvalidStructure(format!(
                "unsupported symmetry: {other}"
            )))
        }
    };

    let mut size_line: Option<String> = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| LinalgError::InvalidStructure(format!("I/O error: {e}")))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line =
        size_line.ok_or_else(|| LinalgError::InvalidStructure("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| {
            s.parse()
                .map_err(|_| LinalgError::InvalidStructure(format!("bad size: {s}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(LinalgError::InvalidStructure(
            "size line needs rows cols nnz".into(),
        ));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);
    let mut coo = CooMatrix::with_capacity(nrows, ncols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| LinalgError::InvalidStructure(format!("I/O error: {e}")))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LinalgError::InvalidStructure(format!("bad entry line: {t}")))?;
        let j: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| LinalgError::InvalidStructure(format!("bad entry line: {t}")))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| LinalgError::InvalidStructure(format!("bad entry line: {t}")))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(LinalgError::IndexOutOfBounds {
                index: i.max(j),
                bound: nrows.max(ncols),
            });
        }
        // Matrix Market is 1-based.
        if symmetric && i != j {
            coo.push_sym(i - 1, j - 1, v);
        } else {
            coo.push(i - 1, j - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(LinalgError::InvalidStructure(format!(
            "declared {nnz} entries but found {seen}"
        )));
    }
    Ok(coo.to_csr())
}

/// Reads a `.mtx` file from disk.
pub fn read_matrix_market_file(path: &Path) -> Result<CsrMatrix, LinalgError> {
    let f = std::fs::File::open(path)
        .map_err(|e| LinalgError::InvalidStructure(format!("open {}: {e}", path.display())))?;
    read_matrix_market(f)
}

/// Writes `a` in `coordinate real general` format.
pub fn write_matrix_market<W: Write>(a: &CsrMatrix, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by aj-matrices")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for i in 0..a.nrows() {
        for (j, v) in a.row_iter(i) {
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_general() {
        let a = crate::fd::laplacian_2d(3, 4);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_entries_are_mirrored() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n% comment\n3 3 4\n1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 2.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn rejects_bad_headers_and_counts() {
        assert!(read_matrix_market("nonsense\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
        // Declared 2 entries, provided 1.
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n".as_bytes()
        )
        .is_err());
        // 1-based index 0 is invalid.
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "%%MatrixMarket matrix coordinate real general\n%c\n\n2 2 1\n% mid comment\n\n2 2 5.0\n";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(1, 1), 5.0);
    }

    #[test]
    fn missing_file_is_reported() {
        assert!(read_matrix_market_file(Path::new("/nonexistent/x.mtx")).is_err());
    }
}
