//! Right-hand sides and initial iterates.
//!
//! §VII-A: "We used a random initial approximation x(0) and right-hand side
//! b in the range [-1, 1]." All randomness is seeded for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniformly random vector in `[-1, 1]^n`, deterministic in `seed`.
pub fn random_uniform(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-1.0..=1.0)).collect()
}

/// The paper's standard problem setup: random `b` and `x0` in `[-1,1]`.
/// Separate seeds keep them independent.
pub fn paper_problem(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    (random_uniform(n, seed ^ 0xb), random_uniform(n, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_in_range_and_deterministic() {
        let v = random_uniform(1000, 7);
        assert!(v.iter().all(|&x| (-1.0..=1.0).contains(&x)));
        assert_eq!(v, random_uniform(1000, 7));
        assert_ne!(v, random_uniform(1000, 8));
    }

    #[test]
    fn paper_problem_vectors_differ() {
        let (b, x0) = paper_problem(50, 3);
        assert_eq!(b.len(), 50);
        assert_eq!(x0.len(), 50);
        assert_ne!(b, x0);
    }

    #[test]
    fn vectors_are_dense_random_not_constant() {
        let v = random_uniform(100, 1);
        let first = v[0];
        assert!(v.iter().any(|&x| (x - first).abs() > 1e-6));
    }
}
