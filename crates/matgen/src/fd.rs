//! Finite-difference Laplacians and variants.
//!
//! All generators produce the negative Laplacian with homogeneous Dirichlet
//! boundary conditions eliminated, i.e. only interior unknowns appear. The
//! resulting matrices are irreducibly weakly diagonally dominant, symmetric
//! positive definite, and have `ρ(G) < 1` — exactly the paper's "FD" class.

use aj_linalg::{CooMatrix, CsrMatrix};

/// 1-D Laplacian: tridiagonal `[-1, 2, -1]` of order `n`.
pub fn laplacian_1d(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        coo.push(i, i, 2.0);
        if i + 1 < n {
            coo.push_sym(i, i + 1, -1.0);
        }
    }
    coo.to_csr()
}

/// 2-D five-point Laplacian on an `nx × ny` rectangular grid with uniform
/// spacing (the paper's FD matrices). Row count is `nx·ny`; the nonzero
/// count is `n + 2[(nx−1)ny + nx(ny−1)]`.
pub fn laplacian_2d(nx: usize, ny: usize) -> CsrMatrix {
    laplacian_2d_anisotropic(nx, ny, 1.0, 1.0)
}

/// 2-D five-point Laplacian with direction-dependent coefficients
/// (`cx` on x-couplings, `cy` on y-couplings). `cx = cy = 1` recovers
/// [`laplacian_2d`]; strong anisotropy slows Jacobi down, which the
/// thermal-problem analogue uses.
pub fn laplacian_2d_anisotropic(nx: usize, ny: usize, cx: f64, cy: f64) -> CsrMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            coo.push(me, me, 2.0 * (cx + cy));
            if i + 1 < nx {
                coo.push_sym(me, idx(i + 1, j), -cx);
            }
            if j + 1 < ny {
                coo.push_sym(me, idx(i, j + 1), -cy);
            }
        }
    }
    coo.to_csr()
}

/// 2-D nine-point Laplacian (compact fourth-order stencil): diagonal 20/6,
/// edge neighbours −4/6, corner neighbours −1/6 (scaled by 6 to stay
/// integral: 20, −4, −1). Denser coupling than the 5-point stencil — a
/// useful stress test for ghost layers (corner exchanges appear).
pub fn laplacian_2d_9point(nx: usize, ny: usize) -> CsrMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut coo = CooMatrix::with_capacity(n, n, 9 * n);
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            coo.push(me, me, 20.0);
            if i + 1 < nx {
                coo.push_sym(me, idx(i + 1, j), -4.0);
            }
            if j + 1 < ny {
                coo.push_sym(me, idx(i, j + 1), -4.0);
            }
            if i + 1 < nx && j + 1 < ny {
                coo.push_sym(me, idx(i + 1, j + 1), -1.0);
            }
            if i + 1 < nx && j > 0 {
                coo.push_sym(me, idx(i + 1, j - 1), -1.0);
            }
        }
    }
    coo.to_csr()
}

/// 3-D seven-point Laplacian with per-direction coefficients.
pub fn laplacian_3d_anisotropic(
    nx: usize,
    ny: usize,
    nz: usize,
    cx: f64,
    cy: f64,
    cz: f64,
) -> CsrMatrix {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let me = idx(i, j, k);
                coo.push(me, me, 2.0 * (cx + cy + cz));
                if i + 1 < nx {
                    coo.push_sym(me, idx(i + 1, j, k), -cx);
                }
                if j + 1 < ny {
                    coo.push_sym(me, idx(i, j + 1, k), -cy);
                }
                if k + 1 < nz {
                    coo.push_sym(me, idx(i, j, k + 1), -cz);
                }
            }
        }
    }
    coo.to_csr()
}

/// 3-D seven-point Laplacian on an `nx × ny × nz` box grid.
pub fn laplacian_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let me = idx(i, j, k);
                coo.push(me, me, 6.0);
                if i + 1 < nx {
                    coo.push_sym(me, idx(i + 1, j, k), -1.0);
                }
                if j + 1 < ny {
                    coo.push_sym(me, idx(i, j + 1, k), -1.0);
                }
                if k + 1 < nz {
                    coo.push_sym(me, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    coo.to_csr()
}

/// 2-D five-point operator with per-edge random conductances in
/// `[1, 1 + spread]` (a circuit/heterogeneous-media analogue). The diagonal
/// is the sum of incident conductances, so the matrix stays irreducibly
/// W.D.D. and SPD. Deterministic in `seed`.
pub fn random_conductance_2d(nx: usize, ny: usize, spread: f64, seed: u64) -> CsrMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    let mut diag = vec![0.0f64; n];
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            if i + 1 < nx {
                let w = 1.0 + spread * next();
                edges.push((me, idx(i + 1, j), w));
            }
            if j + 1 < ny {
                let w = 1.0 + spread * next();
                edges.push((me, idx(i, j + 1), w));
            }
        }
    }
    for &(a, b, w) in &edges {
        coo.push_sym(a, b, -w);
        diag[a] += w;
        diag[b] += w;
    }
    for (i, &d) in diag.iter().enumerate() {
        // A small Dirichlet-like anchor keeps the matrix nonsingular even for
        // rows whose neighbours are all interior.
        coo.push(i, i, d + 0.05);
    }
    coo.to_csr()
}

/// 2-D Laplacian plus a mass-matrix shift `σI`, the implicit-time-step
/// operator of a parabolic (heat) equation: `A = L + σI`. Larger `σ` makes
/// the matrix more diagonally dominant and Jacobi faster.
pub fn parabolic_2d(nx: usize, ny: usize, sigma: f64) -> CsrMatrix {
    let l = laplacian_2d(nx, ny);
    let shift = CsrMatrix::from_diagonal(&vec![sigma; nx * ny]);
    l.add_scaled(1.0, &shift, 1.0).expect("same dims")
}

/// Dimensions of the paper's four FD test matrices, decoded from the row and
/// nonzero counts quoted in §VII: `(name, nx, ny)`.
pub const PAPER_FD_GRIDS: [(&str, usize, usize); 4] = [
    ("fd40", 5, 8),
    ("fd68", 4, 17),
    ("fd272", 16, 17),
    ("fd4624", 68, 68),
];

/// Builds one of the paper's FD matrices by name (`"fd40"`, `"fd68"`,
/// `"fd272"`, `"fd4624"`). Returns `None` for unknown names.
pub fn paper_fd(name: &str) -> Option<CsrMatrix> {
    PAPER_FD_GRIDS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(_, nx, ny)| laplacian_2d(nx, ny))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fd_sizes_match_quoted_counts() {
        // §VII-B quotes: 40 rows/174 nnz, 68/298, 272/1294, 4624/22848.
        let expect = [
            ("fd40", 40, 174),
            ("fd68", 68, 298),
            ("fd272", 272, 1294),
            ("fd4624", 4624, 22848),
        ];
        for (name, rows, nnz) in expect {
            let a = paper_fd(name).unwrap();
            assert_eq!(a.nrows(), rows, "{name} rows");
            assert_eq!(a.nnz(), nnz, "{name} nnz");
        }
        assert!(paper_fd("nope").is_none());
    }

    #[test]
    fn fd_matrices_are_spd_wdd_symmetric() {
        for a in [laplacian_1d(17), laplacian_2d(6, 7), laplacian_3d(4, 5, 3)] {
            assert!(a.is_symmetric(0.0));
            assert!(a.is_weakly_diagonally_dominant());
            // SPD check via smallest Lanczos eigenvalue.
            let ext = aj_linalg::eigen::lanczos_extreme(&a, a.nrows().min(60)).unwrap();
            assert!(ext.min > 0.0, "λ_min = {}", ext.min);
        }
    }

    #[test]
    fn fd_jacobi_radius_below_one() {
        let a = laplacian_2d(4, 17).scale_to_unit_diagonal().unwrap();
        let rho = aj_linalg::eigen::jacobi_spectral_radius_unit_diag(&a, 68).unwrap();
        assert!(rho < 1.0, "ρ(G) = {rho}");
        // Exact value for the 4×17 grid: (cos(π/5) + cos(π/18)) / 2 ≈ 0.897.
        assert!(
            rho > 0.85,
            "FD matrices are slow for Jacobi, got ρ(G) = {rho}"
        );
    }

    #[test]
    fn anisotropic_reduces_to_isotropic() {
        let a = laplacian_2d(5, 5);
        let b = laplacian_2d_anisotropic(5, 5, 1.0, 1.0);
        assert_eq!(a, b);
        let c = laplacian_2d_anisotropic(5, 5, 10.0, 1.0);
        assert!(c.is_weakly_diagonally_dominant());
        assert_eq!(c.get(0, 0), 22.0);
    }

    #[test]
    fn conductance_matrix_is_spd_and_wdd() {
        let a = random_conductance_2d(8, 9, 3.0, 42);
        assert!(a.is_symmetric(1e-14));
        assert!(a.is_weakly_diagonally_dominant());
        let ext = aj_linalg::eigen::lanczos_extreme(&a, 60).unwrap();
        assert!(ext.min > 0.0);
        // Deterministic in the seed.
        assert_eq!(a, random_conductance_2d(8, 9, 3.0, 42));
        assert_ne!(a, random_conductance_2d(8, 9, 3.0, 43));
    }

    #[test]
    fn parabolic_shift_increases_dominance() {
        let a = parabolic_2d(6, 6, 2.0);
        assert_eq!(a.get(0, 0), 6.0);
        assert!(a.is_weakly_diagonally_dominant());
        // Strictly dominant now, so Jacobi contracts in the ∞-norm.
        let g = aj_linalg::IterationMatrix::new(&a).to_csr();
        assert!(g.norm_inf() < 1.0);
    }

    #[test]
    fn nine_point_interior_row_has_nine_nonzeros() {
        let a = laplacian_2d_9point(5, 5);
        assert_eq!(a.row_nnz(12), 9); // center of a 5×5 grid
        assert!(a.is_symmetric(0.0));
        assert!(a.is_weakly_diagonally_dominant()); // 20 ≥ 4·4 + 4·1
        let ext = aj_linalg::eigen::lanczos_extreme(&a, 25).unwrap();
        assert!(ext.min > 0.0);
    }

    #[test]
    fn anisotropic_3d_reduces_to_isotropic() {
        assert_eq!(
            laplacian_3d_anisotropic(3, 4, 5, 1.0, 1.0, 1.0),
            laplacian_3d(3, 4, 5)
        );
        let c = laplacian_3d_anisotropic(3, 3, 3, 5.0, 1.0, 1.0);
        assert_eq!(c.get(0, 0), 14.0);
        assert!(c.is_weakly_diagonally_dominant());
    }

    #[test]
    fn grid_interior_row_has_five_nonzeros() {
        let a = laplacian_2d(5, 5);
        // Center point (2,2) → row 12.
        assert_eq!(a.row_nnz(12), 5);
        // Corner row 0 has 3.
        assert_eq!(a.row_nnz(0), 3);
    }
}
