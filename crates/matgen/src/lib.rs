//! # aj-matrices
//!
//! Test-problem generators for the asynchronous Jacobi reproduction.
//!
//! * [`fd`] — finite-difference Laplacians. The paper's "FD" matrices are
//!   five-point centered-difference discretizations of the Laplace equation
//!   on rectangular domains; the sizes quoted in the paper decode exactly as
//!   grids (68 rows / 298 nnz = 4×17, 40/174 = 5×8, 272/1294 = 16×17,
//!   4624/22848 = 68×68), all of which [`fd::laplacian_2d`] reproduces.
//! * [`mesh`] + [`fe`] — an unstructured triangulation of the unit square
//!   and P1 finite-element stiffness assembly. With sufficient vertex
//!   perturbation the assembled matrix is symmetric positive definite but
//!   *not* weakly diagonally dominant and has `ρ(G) > 1`, matching the
//!   paper's "FE" matrix on which synchronous Jacobi diverges.
//! * [`suite`] — synthetic analogues of the Table I SuiteSparse problems
//!   (thermal2, G3_circuit, ecology2, apache2, parabolic_fem,
//!   thermomech_dm, Dubcova2), scaled to laptop size while preserving the
//!   properties that drive (a)synchronous Jacobi behaviour.
//! * [`mm`] — Matrix Market I/O so the real SuiteSparse files can be used
//!   when available.
//! * [`rhs`] — the paper's random right-hand sides and initial iterates
//!   (uniform in `[-1, 1]`).

// Index-based loops over coupled arrays are the clearest form for these
// numeric kernels; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod fd;
pub mod fe;
pub mod manufactured;
pub mod mesh;
pub mod mm;
pub mod rhs;
pub mod suite;

pub use fd::{laplacian_1d, laplacian_2d, laplacian_3d};
pub use fe::assemble_p1_stiffness;
pub use mesh::TriangleMesh;
pub use suite::{suite_problems, SuiteProblem};
