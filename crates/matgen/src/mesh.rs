//! Unstructured triangle meshes of the unit square.
//!
//! The paper's "FE" matrix comes from an unstructured finite-element
//! discretization of the Laplace equation on a square. We reproduce the
//! construction by perturbing the interior vertices of a structured grid and
//! triangulating each cell with a randomly chosen diagonal: the perturbation
//! creates obtuse triangles, whose P1 stiffness contributions have *positive*
//! off-diagonal entries. That is what destroys weak diagonal dominance and
//! pushes `ρ(G)` above one.

/// A 2-D triangle mesh with Dirichlet boundary flags.
#[derive(Debug, Clone)]
pub struct TriangleMesh {
    /// Vertex coordinates `(x, y)`.
    pub vertices: Vec<(f64, f64)>,
    /// Triangles as vertex index triples (counter-clockwise).
    pub triangles: Vec<[usize; 3]>,
    /// `true` for vertices on the Dirichlet boundary (eliminated unknowns).
    pub boundary: Vec<bool>,
}

impl TriangleMesh {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of interior (unknown) vertices.
    pub fn num_interior(&self) -> usize {
        self.boundary.iter().filter(|&&b| !b).count()
    }

    /// Signed area of triangle `t` (positive = counter-clockwise).
    pub fn signed_area(&self, t: usize) -> f64 {
        let [a, b, c] = self.triangles[t];
        let (xa, ya) = self.vertices[a];
        let (xb, yb) = self.vertices[b];
        let (xc, yc) = self.vertices[c];
        0.5 * ((xb - xa) * (yc - ya) - (xc - xa) * (yb - ya))
    }

    /// Fraction of triangles with an obtuse angle — the geometric source of
    /// positive off-diagonal stiffness entries.
    pub fn obtuse_fraction(&self) -> f64 {
        if self.triangles.is_empty() {
            return 0.0;
        }
        let obtuse = (0..self.triangles.len())
            .filter(|&t| self.is_obtuse(t))
            .count();
        obtuse as f64 / self.triangles.len() as f64
    }

    fn is_obtuse(&self, t: usize) -> bool {
        let [a, b, c] = self.triangles[t];
        let p = [self.vertices[a], self.vertices[b], self.vertices[c]];
        for i in 0..3 {
            let (x0, y0) = p[i];
            let (x1, y1) = p[(i + 1) % 3];
            let (x2, y2) = p[(i + 2) % 3];
            let v1 = (x1 - x0, y1 - y0);
            let v2 = (x2 - x0, y2 - y0);
            if v1.0 * v2.0 + v1.1 * v2.1 < 0.0 {
                return true;
            }
        }
        false
    }
}

/// Builds a perturbed triangulation of the unit square with
/// `(nx + 1) × (ny + 1)` vertices.
///
/// * `perturb` — interior vertices move by up to `perturb · h` in each
///   coordinate (`h` = cell size). `0.0` gives a structured mesh whose
///   stiffness matrix is an M-matrix; values around `0.35–0.45` give the
///   many-obtuse-triangle meshes that defeat Jacobi.
/// * `seed` — deterministic vertex jitter and diagonal choices.
pub fn perturbed_unit_square(nx: usize, ny: usize, perturb: f64, seed: u64) -> TriangleMesh {
    assert!(nx >= 2 && ny >= 2, "mesh needs at least 2×2 cells");
    let hx = 1.0 / nx as f64;
    let hy = 1.0 / ny as f64;
    let mut state = seed
        .wrapping_mul(0xd1342543de82ef95)
        .wrapping_add(0x2545f4914f6cdd1d);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    let vid = |i: usize, j: usize| i * (ny + 1) + j;
    let mut vertices = Vec::with_capacity((nx + 1) * (ny + 1));
    let mut boundary = Vec::with_capacity((nx + 1) * (ny + 1));
    for i in 0..=nx {
        for j in 0..=ny {
            let on_boundary = i == 0 || j == 0 || i == nx || j == ny;
            let (mut x, mut y) = (i as f64 * hx, j as f64 * hy);
            if !on_boundary {
                x += perturb * hx * next();
                y += perturb * hy * next();
            }
            vertices.push((x, y));
            boundary.push(on_boundary);
        }
    }
    let mut triangles = Vec::with_capacity(2 * nx * ny);
    for i in 0..nx {
        for j in 0..ny {
            let (a, b, c, d) = (vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1));
            if next() > 0.0 {
                triangles.push([a, b, c]);
                triangles.push([a, c, d]);
            } else {
                triangles.push([a, b, d]);
                triangles.push([b, c, d]);
            }
        }
    }
    let base: Vec<(f64, f64)> = (0..=nx)
        .flat_map(|i| (0..=ny).map(move |j| (i as f64 * hx, j as f64 * hy)))
        .collect();
    let mut mesh = TriangleMesh {
        vertices,
        triangles,
        boundary,
    };
    repair_inverted_triangles(&mut mesh, &base, hx.min(hy));
    mesh
}

/// Large perturbations can invert a triangle. Rather than capping the whole
/// mesh's jitter (which would lose the obtuse triangles the FE experiments
/// need), pull only the offending triangles' vertices back toward their
/// unperturbed lattice positions (`base`) until every signed area clears a
/// small positive floor. As damping accumulates a vertex approaches its
/// lattice position, where the mesh is structurally valid, so the loop
/// terminates.
fn repair_inverted_triangles(mesh: &mut TriangleMesh, base: &[(f64, f64)], h: f64) {
    let min_area = 0.02 * h * h;
    for _ in 0..200 {
        let bad: Vec<usize> = (0..mesh.triangles.len())
            .filter(|&t| mesh.signed_area(t) <= min_area)
            .collect();
        if bad.is_empty() {
            return;
        }
        for t in bad {
            for &v in &mesh.triangles[t] {
                if !mesh.boundary[v] {
                    let (x, y) = mesh.vertices[v];
                    let (bx, by) = base[v];
                    mesh.vertices[v] = (x + 0.3 * (bx - x), y + 0.3 * (by - y));
                }
            }
        }
    }
    assert!(
        (0..mesh.triangles.len()).all(|t| mesh.signed_area(t) > 0.0),
        "mesh repair failed to uninvert all triangles"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_mesh_has_expected_counts() {
        let m = perturbed_unit_square(4, 3, 0.0, 1);
        assert_eq!(m.num_vertices(), 5 * 4);
        assert_eq!(m.triangles.len(), 2 * 4 * 3);
        assert_eq!(m.num_interior(), 3 * 2);
    }

    #[test]
    fn triangles_stay_positively_oriented() {
        let m = perturbed_unit_square(12, 12, 0.4, 7);
        for t in 0..m.triangles.len() {
            assert!(m.signed_area(t) > 0.0, "triangle {t} inverted");
        }
    }

    #[test]
    fn areas_sum_to_unit_square() {
        for perturb in [0.0, 0.3, 0.45] {
            let m = perturbed_unit_square(10, 10, perturb, 3);
            let total: f64 = (0..m.triangles.len()).map(|t| m.signed_area(t)).sum();
            assert!(
                (total - 1.0).abs() < 1e-12,
                "area {total} for perturb {perturb}"
            );
        }
    }

    #[test]
    fn perturbation_creates_obtuse_triangles() {
        let flat = perturbed_unit_square(16, 16, 0.0, 5);
        assert_eq!(flat.obtuse_fraction(), 0.0);
        let bent = perturbed_unit_square(16, 16, 0.45, 5);
        assert!(
            bent.obtuse_fraction() > 0.2,
            "only {} obtuse",
            bent.obtuse_fraction()
        );
    }

    #[test]
    fn mesh_is_deterministic_in_seed() {
        let a = perturbed_unit_square(6, 6, 0.3, 11);
        let b = perturbed_unit_square(6, 6, 0.3, 11);
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(a.triangles, b.triangles);
        let c = perturbed_unit_square(6, 6, 0.3, 12);
        assert_ne!(a.vertices, c.vertices);
    }
}
