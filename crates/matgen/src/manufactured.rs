//! Manufactured solutions: pick `x*`, set `b = A x*`, and every solver can
//! be checked against a known exact answer (error norms, not just residual
//! norms — the quantity Theorem 1 bounds in the ∞-norm).

use aj_linalg::vecops::{self, Norm};
use aj_linalg::CsrMatrix;

/// A problem with a known exact solution.
#[derive(Debug, Clone)]
pub struct Manufactured {
    /// Right-hand side `b = A x*`.
    pub b: Vec<f64>,
    /// The exact solution `x*`.
    pub x_exact: Vec<f64>,
}

impl Manufactured {
    /// Error `‖x − x*‖` in the requested norm.
    pub fn error(&self, x: &[f64], norm: Norm) -> f64 {
        vecops::norm(&vecops::sub(x, &self.x_exact), norm)
    }

    /// Relative error against `‖x*‖` (absolute error when `x*` is zero).
    pub fn relative_error(&self, x: &[f64], norm: Norm) -> f64 {
        let nx = vecops::norm(&self.x_exact, norm);
        if nx == 0.0 {
            self.error(x, norm)
        } else {
            self.error(x, norm) / nx
        }
    }
}

/// Manufactures `b` from a smooth solution evaluated on grid coordinates:
/// `x*_i = sin(π ξ_i) sin(π η_i)` where `(ξ, η)` are the supplied unit-square
/// coordinates — the classic Poisson test mode.
pub fn smooth_on_coords(a: &CsrMatrix, coords: &[(f64, f64)]) -> Manufactured {
    assert_eq!(coords.len(), a.nrows(), "one coordinate pair per row");
    let x_exact: Vec<f64> = coords
        .iter()
        .map(|&(x, y)| (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin())
        .collect();
    Manufactured {
        b: a.spmv(&x_exact),
        x_exact,
    }
}

/// Manufactures `b` from a seeded random solution in `[-1, 1]^n`.
pub fn random(a: &CsrMatrix, seed: u64) -> Manufactured {
    let x_exact = crate::rhs::random_uniform(a.nrows(), seed);
    Manufactured {
        b: a.spmv(&x_exact),
        x_exact,
    }
}

/// Unit-square coordinates of the interior points of an `nx × ny` grid in
/// the row-major ordering used by [`crate::fd::laplacian_2d`].
pub fn grid_unit_coords(nx: usize, ny: usize) -> Vec<(f64, f64)> {
    let mut coords = Vec::with_capacity(nx * ny);
    for i in 0..nx {
        for j in 0..ny {
            coords.push((
                (i + 1) as f64 / (nx + 1) as f64,
                (j + 1) as f64 / (ny + 1) as f64,
            ));
        }
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_linalg::sweeps;

    #[test]
    fn jacobi_drives_error_to_zero_on_manufactured_problem() {
        let a = crate::fd::laplacian_2d(9, 9);
        let m = smooth_on_coords(&a, &grid_unit_coords(9, 9));
        let (x, _) = sweeps::jacobi_solve(&a, &m.b, &[0.0; 81], 1e-12, 100_000, Norm::L2).unwrap();
        assert!(
            m.relative_error(&x, Norm::Inf) < 1e-10,
            "error {}",
            m.relative_error(&x, Norm::Inf)
        );
    }

    #[test]
    fn random_manufactured_solution_round_trips() {
        let a = crate::fd::laplacian_1d(20);
        let m = random(&a, 7);
        // Plugging x* in gives zero residual by construction.
        let r = a.residual(&m.x_exact, &m.b);
        assert!(vecops::norm(&r, Norm::Inf) < 1e-14);
        assert_eq!(m.error(&m.x_exact, Norm::L2), 0.0);
        assert!(m.relative_error(&[0.0; 20], Norm::L2) > 0.5);
    }

    #[test]
    fn grid_coords_are_interior_and_ordered() {
        let c = grid_unit_coords(3, 2);
        assert_eq!(c.len(), 6);
        assert!(c
            .iter()
            .all(|&(x, y)| x > 0.0 && x < 1.0 && y > 0.0 && y < 1.0));
        assert_eq!(c[0], (0.25, 1.0 / 3.0));
        assert_eq!(c[1].1, 2.0 / 3.0);
    }

    #[test]
    fn zero_exact_solution_uses_absolute_error() {
        let m = Manufactured {
            b: vec![0.0; 4],
            x_exact: vec![0.0; 4],
        };
        assert_eq!(m.relative_error(&[0.1, 0.0, 0.0, 0.0], Norm::Inf), 0.1);
    }
}
