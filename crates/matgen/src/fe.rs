//! P1 (linear triangle) finite-element stiffness assembly for the Laplace
//! equation, with Dirichlet boundary elimination.
//!
//! For a triangle with vertices `p₀, p₁, p₂` and area `A`, the local
//! stiffness matrix is `K_ij = (bᵢbⱼ + cᵢcⱼ) / (4A)` where
//! `bᵢ = y_j − y_k`, `cᵢ = x_k − x_j` (cyclic). Off-diagonal entries are
//! `−cot(θ_k)/2` for the angle opposite the edge — *positive* when the
//! angle is obtuse, which is how perturbed meshes lose weak diagonal
//! dominance (and how the paper's FE matrix gets `ρ(G) > 1`).

use crate::mesh::TriangleMesh;
use aj_linalg::{CooMatrix, CsrMatrix};

/// Assembles the P1 stiffness matrix over the interior (non-Dirichlet)
/// vertices of `mesh`. Returns the matrix together with the map from
/// interior-unknown index to mesh vertex index.
pub fn assemble_p1_stiffness(mesh: &TriangleMesh) -> (CsrMatrix, Vec<usize>) {
    let nv = mesh.num_vertices();
    let mut unknown_of_vertex = vec![usize::MAX; nv];
    let mut vertex_of_unknown = Vec::new();
    for v in 0..nv {
        if !mesh.boundary[v] {
            unknown_of_vertex[v] = vertex_of_unknown.len();
            vertex_of_unknown.push(v);
        }
    }
    let n = vertex_of_unknown.len();
    let mut coo = CooMatrix::with_capacity(n, n, 9 * mesh.triangles.len());
    for (t, tri) in mesh.triangles.iter().enumerate() {
        let area = mesh.signed_area(t);
        assert!(area > 0.0, "triangle {t} has non-positive area");
        let p: Vec<(f64, f64)> = tri.iter().map(|&v| mesh.vertices[v]).collect();
        // Gradient coefficients.
        let b = [p[1].1 - p[2].1, p[2].1 - p[0].1, p[0].1 - p[1].1];
        let c = [p[2].0 - p[1].0, p[0].0 - p[2].0, p[1].0 - p[0].0];
        for i in 0..3 {
            let ui = unknown_of_vertex[tri[i]];
            if ui == usize::MAX {
                continue;
            }
            for j in 0..3 {
                let uj = unknown_of_vertex[tri[j]];
                if uj == usize::MAX {
                    continue;
                }
                let k_ij = (b[i] * b[j] + c[i] * c[j]) / (4.0 * area);
                coo.push(ui, uj, k_ij);
            }
        }
    }
    (coo.to_csr(), vertex_of_unknown)
}

/// Builds the paper-style FE test matrix: perturbed unit-square mesh,
/// P1 Laplace stiffness, symmetric unit-diagonal scaling. The returned
/// matrix is SPD, not weakly diagonally dominant, and (for the default
/// parameters used by [`paper_fe_matrix`]) has `ρ(G) > 1`.
pub fn fe_matrix(nx: usize, ny: usize, perturb: f64, seed: u64) -> CsrMatrix {
    let mesh = crate::mesh::perturbed_unit_square(nx, ny, perturb, seed);
    let (a, _) = assemble_p1_stiffness(&mesh);
    a.scale_to_unit_diagonal()
        .expect("P1 stiffness has positive diagonal")
}

/// Like [`fe_matrix`] but with a lumped reaction term: `A = K + σ·diag(K)`
/// before unit-diagonal scaling. The shift compresses the scaled spectrum by
/// `1/(1+σ)`, so `ρ(G) < 1` holds with a σ-controlled margin at any mesh
/// size — the thermomech_dm analogue uses this to stay Jacobi-convergent
/// while keeping unstructured FE sparsity.
pub fn fe_matrix_shifted(nx: usize, ny: usize, perturb: f64, sigma: f64, seed: u64) -> CsrMatrix {
    let mesh = crate::mesh::perturbed_unit_square(nx, ny, perturb, seed);
    let (k, _) = assemble_p1_stiffness(&mesh);
    let diag = k.diagonal();
    let shifted_diag: Vec<f64> = diag.iter().map(|d| sigma * d).collect();
    let a = k
        .add_scaled(1.0, &CsrMatrix::from_diagonal(&shifted_diag), 1.0)
        .expect("same dimensions");
    a.scale_to_unit_diagonal().expect("positive diagonal")
}

/// The FE matrix used throughout the reproduction for the paper's §VII
/// experiments on the FE problem (paper: 3081 rows, 20971 nnz). A 57×57-cell
/// mesh gives 3136 interior unknowns — the nearest grid size; the heavy
/// perturbation produces `ρ(G) > 1` so synchronous Jacobi diverges.
pub fn paper_fe_matrix() -> CsrMatrix {
    fe_matrix(57, 57, 0.45, 2018)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_linalg::eigen;

    #[test]
    fn structured_mesh_reproduces_five_point_laplacian_scaled() {
        // On the unperturbed unit-square mesh with right isoceles triangles,
        // P1 assembly yields exactly the 5-point stencil (diag 4/h², offdiag
        // −1/h² after scaling by h²... here h cancels in the stencil).
        let mesh = crate::mesh::perturbed_unit_square(8, 8, 0.0, 1);
        let (a, _) = assemble_p1_stiffness(&mesh);
        let fd = crate::fd::laplacian_2d(7, 7);
        assert_eq!(a.nrows(), 49);
        // Compare after unit-diagonal scaling to remove the h² factor.
        let a_s = a.scale_to_unit_diagonal().unwrap();
        let fd_s = fd.scale_to_unit_diagonal().unwrap();
        assert!(a_s.to_dense().max_abs_diff(&fd_s.to_dense()) < 1e-12);
    }

    #[test]
    fn stiffness_is_symmetric_spd() {
        let a = fe_matrix(12, 12, 0.4, 9);
        assert!(a.is_symmetric(1e-12));
        let ext = eigen::lanczos_extreme(&a, a.nrows().min(80)).unwrap();
        assert!(ext.min > 0.0, "λ_min = {}", ext.min);
    }

    #[test]
    fn row_sums_vanish_for_interior_rows_of_unconstrained_problem() {
        // P1 Laplace stiffness has zero row sums before boundary elimination;
        // verify on a mesh where we keep everything by marking no boundary.
        let mut mesh = crate::mesh::perturbed_unit_square(6, 6, 0.3, 4);
        for b in &mut mesh.boundary {
            *b = false;
        }
        let (a, _) = assemble_p1_stiffness(&mesh);
        for i in 0..a.nrows() {
            let s: f64 = a.row_values(i).iter().sum();
            assert!(s.abs() < 1e-12, "row {i} sum {s}");
        }
    }

    #[test]
    fn perturbed_matrix_is_not_wdd_and_has_positive_offdiagonals() {
        let a = fe_matrix(16, 16, 0.45, 3);
        assert!(!a.is_weakly_diagonally_dominant());
        let has_positive_offdiag =
            (0..a.nrows()).any(|i| a.row_iter(i).any(|(j, v)| j != i && v > 0.0));
        assert!(has_positive_offdiag);
    }

    #[test]
    fn paper_fe_matrix_defeats_jacobi() {
        let a = paper_fe_matrix();
        assert_eq!(a.nrows(), 3136); // paper: 3081 (unstructured); nearest grid
        let rho = eigen::jacobi_spectral_radius_unit_diag(&a, 120).unwrap();
        assert!(
            rho > 1.0,
            "need ρ(G) > 1 for the divergence experiments, got {rho}"
        );
        // About half the rows should still be W.D.D. per the paper's
        // description ("approximately half the rows have the W.D.D.
        // property").
        let wdd_rows = (0..a.nrows())
            .filter(|&i| {
                let mut diag = 0.0;
                let mut off = 0.0;
                for (j, v) in a.row_iter(i) {
                    if j == i {
                        diag = v.abs();
                    } else {
                        off += v.abs();
                    }
                }
                diag >= off - 1e-14
            })
            .count();
        let frac = wdd_rows as f64 / a.nrows() as f64;
        assert!(frac > 0.2 && frac < 0.9, "W.D.D. row fraction {frac}");
    }

    #[test]
    fn vertex_map_covers_interior() {
        let mesh = crate::mesh::perturbed_unit_square(5, 4, 0.2, 8);
        let (a, map) = assemble_p1_stiffness(&mesh);
        assert_eq!(a.nrows(), mesh.num_interior());
        assert_eq!(map.len(), a.nrows());
        assert!(map.iter().all(|&v| !mesh.boundary[v]));
    }
}
