//! Synthetic analogues of the paper's Table I SuiteSparse problems.
//!
//! The originals (thermal2, G3_circuit, ecology2, apache2, parabolic_fem,
//! thermomech_dm, Dubcova2) are up to 1.6M equations; this machine-scale
//! reproduction substitutes generators that preserve the properties the
//! paper's experiments exercise:
//!
//! * symmetric positive definite,
//! * Jacobi converges slowly (`ρ(G)` just below 1) for the six convergent
//!   problems, and **diverges** for the Dubcova2 analogue (`ρ(G) > 1`),
//! * comparable sparsity structure (2-D/3-D stencils, FE meshes).
//!
//! Every matrix is returned after symmetric unit-diagonal scaling, which is
//! the normalization the paper assumes throughout. Real `.mtx` files can be
//! substituted via [`crate::mm::read_matrix_market_file`].

use crate::{fd, fe};
use aj_linalg::CsrMatrix;

/// How large an analogue to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~1.5–2k unknowns; unit tests.
    Tiny,
    /// ~20k unknowns; default for figure regeneration.
    Small,
    /// ~100k unknowns; closer-to-paper runs.
    Medium,
}

impl Scale {
    /// Grid edge for 2-D generators.
    fn grid2(self) -> usize {
        match self {
            Scale::Tiny => 40,
            Scale::Small => 140,
            Scale::Medium => 320,
        }
    }

    /// Grid edge for 3-D generators.
    fn grid3(self) -> usize {
        match self {
            Scale::Tiny => 12,
            Scale::Small => 27,
            Scale::Medium => 47,
        }
    }
}

/// One Table I problem: paper metadata plus our analogue generator.
#[derive(Debug, Clone, Copy)]
pub struct SuiteProblem {
    /// SuiteSparse name as printed in Table I.
    pub name: &'static str,
    /// Equations in the original matrix (Table I).
    pub paper_equations: usize,
    /// Nonzeros in the original matrix (Table I).
    pub paper_nonzeros: usize,
    /// Whether synchronous Jacobi converges on it (true for all but
    /// Dubcova2, per §VII-C).
    pub jacobi_converges: bool,
    /// What we generate instead.
    pub analogue: &'static str,
}

impl SuiteProblem {
    /// Generates the analogue matrix at the requested scale, unit-diagonal
    /// scaled.
    pub fn build(&self, scale: Scale) -> CsrMatrix {
        let g2 = scale.grid2();
        let g3 = scale.grid3();
        let a = match self.name {
            "thermal2" => fd::laplacian_2d_anisotropic(g2, g2, 1.0, 25.0),
            "G3_circuit" => fd::random_conductance_2d(g2, g2, 9.0, 0xC1C),
            "ecology2" => fd::laplacian_2d(g2, g2),
            "apache2" => fd::laplacian_3d(g3, g3, g3),
            "parabolic_fem" => fd::parabolic_2d(g2, g2, 0.3),
            "thermomech_dm" => return fe::fe_matrix_shifted(g2, g2, 0.12, 0.25, 0xD3),
            "Dubcova2" => return fe::fe_matrix(g2, g2, 0.45, 0xD0B),
            other => panic!("unknown suite problem {other}"),
        };
        a.scale_to_unit_diagonal()
            .expect("generators have positive diagonals")
    }
}

/// The full Table I roster, in the paper's order.
pub fn suite_problems() -> Vec<SuiteProblem> {
    vec![
        SuiteProblem {
            name: "thermal2",
            paper_equations: 1_227_087,
            paper_nonzeros: 8_579_355,
            jacobi_converges: true,
            analogue: "2-D anisotropic FD Laplacian (cy/cx = 25)",
        },
        SuiteProblem {
            name: "G3_circuit",
            paper_equations: 1_585_478,
            paper_nonzeros: 7_660_826,
            jacobi_converges: true,
            analogue: "2-D random-conductance network (spread 9)",
        },
        SuiteProblem {
            name: "ecology2",
            paper_equations: 999_999,
            paper_nonzeros: 4_995_991,
            jacobi_converges: true,
            analogue: "2-D 5-point FD Laplacian",
        },
        SuiteProblem {
            name: "apache2",
            paper_equations: 715_176,
            paper_nonzeros: 4_817_870,
            jacobi_converges: true,
            analogue: "3-D 7-point FD Laplacian",
        },
        SuiteProblem {
            name: "parabolic_fem",
            paper_equations: 525_825,
            paper_nonzeros: 3_674_625,
            jacobi_converges: true,
            analogue: "2-D FD Laplacian + mass shift (implicit time step)",
        },
        SuiteProblem {
            name: "thermomech_dm",
            paper_equations: 204_316,
            paper_nonzeros: 1_423_116,
            jacobi_converges: true,
            analogue: "P1 FE Laplacian + reaction shift, perturbed mesh (0.12)",
        },
        SuiteProblem {
            name: "Dubcova2",
            paper_equations: 65_025,
            paper_nonzeros: 1_030_225,
            jacobi_converges: false,
            analogue: "P1 FE Laplacian, heavily perturbed mesh (0.45), ρ(G) > 1",
        },
    ]
}

/// Looks a problem up by (case-insensitive) name.
pub fn find_problem(name: &str) -> Option<SuiteProblem> {
    suite_problems()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_linalg::eigen;

    #[test]
    fn roster_matches_table_one() {
        let ps = suite_problems();
        assert_eq!(ps.len(), 7);
        assert_eq!(ps[0].name, "thermal2");
        assert_eq!(ps[6].name, "Dubcova2");
        assert_eq!(ps[2].paper_equations, 999_999);
        assert!(ps.iter().filter(|p| !p.jacobi_converges).count() == 1);
    }

    #[test]
    fn all_analogues_build_with_unit_diagonal() {
        for p in suite_problems() {
            let a = p.build(Scale::Tiny);
            assert!(a.nrows() > 500, "{} too small: {}", p.name, a.nrows());
            assert!(a.is_symmetric(1e-12), "{} not symmetric", p.name);
            for i in (0..a.nrows()).step_by(97) {
                assert!((a.get(i, i) - 1.0).abs() < 1e-12, "{} diag row {i}", p.name);
            }
        }
    }

    #[test]
    fn convergence_property_matches_flag() {
        for p in suite_problems() {
            let a = p.build(Scale::Tiny);
            let rho = eigen::jacobi_spectral_radius_unit_diag(&a, 150).unwrap();
            if p.jacobi_converges {
                assert!(rho < 1.0, "{}: ρ(G) = {rho}, expected < 1", p.name);
            } else {
                assert!(rho > 1.0, "{}: ρ(G) = {rho}, expected > 1", p.name);
            }
        }
    }

    #[test]
    fn scales_order_sizes() {
        let p = find_problem("ecology2").unwrap();
        let t = p.build(Scale::Tiny).nrows();
        let s = p.build(Scale::Small).nrows();
        assert!(t < s);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(find_problem("dubcova2").is_some());
        assert!(find_problem("DUBCOVA2").is_some());
        assert!(find_problem("nope").is_none());
    }
}
