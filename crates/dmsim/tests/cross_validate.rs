//! Cross-validation of the two event engines through the observability
//! layer (the headline test of the obs PR).
//!
//! The shared-memory simulator (immediate visibility of committed values)
//! and the distributed simulator (one-sided puts into ghost windows) are
//! independent implementations of the same underlying process: workers
//! sweeping their block at `sweep_cost(nnz) × jitter` intervals. With the
//! same cost model, the same seed, zero put latency, and a fixed iteration
//! budget, their sweep schedules coincide tick for tick — so the staleness
//! each engine *measures* (age of neighbour data at use, against the
//! producer's commit tick) must agree. A bug in either engine's event
//! ordering, neighbour tracking, or obs plumbing shows up here as a
//! histogram mismatch.

use aj_dmsim::dist::{run_dist_async, DistConfig};
use aj_dmsim::shmem_sim::{run_shmem_async, ShmemSimConfig, StopRule};
use aj_dmsim::{CostModel, ObsConfig};
use aj_linalg::CsrMatrix;
use aj_matrices::{fd, rhs};
use aj_obs::Snapshot;
use aj_partition::block_partition;

const WORKERS: usize = 6;
const SWEEPS: u64 = 40;
const SEED: u64 = 2018;

fn problem() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let a = fd::laplacian_2d(12, 12).scale_to_unit_diagonal().unwrap();
    let (b, x0) = rhs::paper_problem(a.nrows(), 5);
    (a, b, x0)
}

/// Cost model both engines share: compute cost only, free instantaneous
/// communication, and the default per-worker jitter stream.
fn shared_cost() -> CostModel {
    let mut cost = CostModel::shared_memory(SEED);
    cost.put_latency = 0.0;
    cost.per_value_comm = 0.0;
    cost
}

fn run_both() -> (Snapshot, Snapshot) {
    let (a, b, x0) = problem();

    let mut scfg = ShmemSimConfig::new(WORKERS, a.nrows(), SEED);
    scfg.cost = shared_cost();
    scfg.stop = StopRule::FixedIterations(SWEEPS);
    scfg.tol = 0.0;
    scfg.obs = ObsConfig::full();
    let shm = run_shmem_async(&a, &b, &x0, &scfg);

    let partition = block_partition(a.nrows(), WORKERS);
    let mut dcfg = DistConfig::new(a.nrows(), SEED);
    dcfg.cost = shared_cost();
    dcfg.stop = StopRule::FixedIterations(SWEEPS);
    dcfg.tol = 0.0;
    dcfg.obs = ObsConfig::full();
    let dist = run_dist_async(&a, &b, &x0, &partition, &dcfg);

    (
        shm.obs.expect("shmem_sim snapshot"),
        dist.obs.expect("dist snapshot"),
    )
}

#[test]
fn engines_agree_on_relaxation_counts() {
    let (shm, dist) = run_both();
    let s = shm.counters["relaxations"];
    let d = dist.counters["relaxations"];
    assert_eq!(
        s, d,
        "fixed iteration budget must yield identical relaxation counts"
    );
    // The run stops once the *slowest* worker reaches the budget, so faster
    // workers overshoot — but both engines must overshoot identically.
    assert!(s >= 144 * SWEEPS, "every row swept at least SWEEPS times");
}

#[test]
fn engines_agree_on_staleness_histograms() {
    let (shm, dist) = run_both();
    let s = shm.family_total("staleness");
    let d = dist.family_total("staleness");

    // Same partition ⇒ same neighbour structure ⇒ same number of
    // (sweep × in-neighbour) staleness samples.
    assert!(s.count() > 0, "shmem_sim recorded no staleness");
    assert_eq!(
        s.count(),
        d.count(),
        "engines sampled different numbers of neighbour reads"
    );

    // Identical sweep schedules ⇒ closely matching ages. The engines may
    // disagree on same-tick races (a put arriving in the same tick the
    // receiver sweeps), so the distributions match within a tolerance
    // rather than exactly.
    let sm = s.mean().expect("shmem mean");
    let dm = d.mean().expect("dist mean");
    let rel = (sm - dm).abs() / sm.max(dm);
    assert!(
        rel < 0.05,
        "mean staleness diverges: shmem {sm:.1} vs dist {dm:.1} ({:.1}% apart)",
        rel * 100.0
    );

    let (s50_lo, s50_hi) = s.quantile_bounds(0.5).unwrap();
    let (d50_lo, d50_hi) = d.quantile_bounds(0.5).unwrap();
    assert!(
        s50_lo <= d50_hi && d50_lo <= s50_hi,
        "median staleness buckets disjoint: shmem {s50_lo}..{s50_hi} vs dist {d50_lo}..{d50_hi}"
    );
}

#[test]
fn engines_agree_per_rank() {
    let (shm, dist) = run_both();
    let s = shm.per_rank("staleness");
    let d = dist.per_rank("staleness");
    assert_eq!(s.len(), WORKERS);
    assert_eq!(d.len(), WORKERS);
    for ((sr, sh), (dr, dh)) in s.iter().zip(&d) {
        assert_eq!(sr, dr);
        assert_eq!(
            sh.count(),
            dh.count(),
            "rank {sr}: sample counts differ (neighbour sets must match)"
        );
        let (sm, dm) = (sh.mean().unwrap(), dh.mean().unwrap());
        let rel = (sm - dm).abs() / sm.max(dm);
        assert!(
            rel < 0.10,
            "rank {sr}: mean staleness diverges ({sm:.1} vs {dm:.1})"
        );
    }
}

#[test]
fn sweep_periods_match_tick_for_tick() {
    // The period histograms depend only on the cost draws, which both
    // engines take from the same per-worker jitter streams — so unlike the
    // staleness comparison there is no same-tick-race slack: the histograms
    // must be *identical*.
    let (shm, dist) = run_both();
    let s = shm.family_total("sweep_period");
    let d = dist.family_total("sweep_period");
    assert!(s.count() > 0);
    assert_eq!(s, d, "sweep-period histograms must match exactly");
}
