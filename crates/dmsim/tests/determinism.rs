//! Determinism regression tests for the event engines.
//!
//! For a fixed seed the engines must produce *byte-identical* residual
//! samples and iterates run over run; the golden fingerprints below pin
//! that behaviour bit for bit, including under injected faults (crashes,
//! stalls, lossy links), whose RNG is drawn in event-processing order.
//!
//! The table has been recaptured twice for deliberate semantic changes:
//! once for the allocation-free event engine (which left every fingerprint
//! unchanged, as required), and once for the monitor/termination bugfixes
//! (`ResidualMonitor::observe` snapping checkpoints to the sample grid —
//! shifts `shmem_*` sample counts — and `RootAggregator` counting
//! confirmations per complete round instead of per report — shifts
//! `dist_termination`). The fault-free `dist_*` entries survived both
//! recaptures untouched, pinning that the fault-injection layer is inert
//! when no plan is configured.
//!
//! Consecutive duplicate samples are collapsed before hashing so the
//! fingerprints are invariant to the `finalize` duplicate-sample fix (the
//! dropped sample is an exact copy of its predecessor — no information is
//! lost or altered).

use aj_dmsim::dist::{run_dist_async, run_dist_sync, DistConfig, DistVariant, LocalSolve};
use aj_dmsim::fault::{FaultPlan, LinkFault};
use aj_dmsim::monitor::SimOutcome;
use aj_dmsim::shmem_sim::{
    run_shmem_async, run_shmem_async_rowwise, run_shmem_sync, ShmemSimConfig,
};
use aj_dmsim::termination::TerminationProtocol;
use aj_linalg::method::ResolvedMethod;
use aj_linalg::CsrMatrix;
use aj_matrices::{fd, rhs};
use aj_partition::block_partition;

fn fnv(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// `(sample count, FNV-1a hash)` over every sample's exact bit pattern,
/// the final iterate's bits, and the relaxation/iteration counters.
fn fingerprint(out: &SimOutcome) -> (usize, u64) {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut count = 0usize;
    let mut prev: Option<(u64, u64, u64)> = None;
    for s in &out.samples {
        let bits = (
            s.time.to_bits(),
            s.relaxations_per_n.to_bits(),
            s.residual.to_bits(),
        );
        if prev == Some(bits) {
            continue; // collapse exact consecutive duplicates (see above)
        }
        prev = Some(bits);
        count += 1;
        fnv(&mut h, bits.0);
        fnv(&mut h, bits.1);
        fnv(&mut h, bits.2);
    }
    for v in &out.x {
        fnv(&mut h, v.to_bits());
    }
    fnv(&mut h, out.relaxations);
    for &it in &out.worker_iterations {
        fnv(&mut h, it);
    }
    for c in [
        out.comm.puts,
        out.comm.values,
        out.comm.drops,
        out.comm.duplicates,
        out.comm.reorders,
    ] {
        fnv(&mut h, c);
    }
    if let Some(fs) = &out.faults {
        for (rank, t) in fs.crash_times.iter().chain(&fs.recovery_times) {
            fnv(&mut h, *rank as u64);
            fnv(&mut h, t.to_bits());
        }
        fnv(&mut h, fs.stalled_sweeps);
        fnv(&mut h, fs.skipped_sweeps);
        fnv(&mut h, fs.dead_window_drops);
        for &alive in &fs.alive {
            fnv(&mut h, alive as u64);
        }
    }
    (count, h)
}

fn fd68() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let a = fd::paper_fd("fd68")
        .unwrap()
        .scale_to_unit_diagonal()
        .unwrap();
    let (b, x0) = rhs::paper_problem(a.nrows(), 2018);
    (a, b, x0)
}

fn lap144() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let a = fd::laplacian_2d(12, 12).scale_to_unit_diagonal().unwrap();
    let (b, x0) = rhs::paper_problem(a.nrows(), 99);
    (a, b, x0)
}

/// Runs every engine configuration the optimization touches and returns
/// labelled fingerprints.
fn capture() -> Vec<(&'static str, usize, u64)> {
    let mut got = Vec::new();

    let (a, b, x0) = fd68();
    let cfg = ShmemSimConfig::new(8, a.nrows(), 11);
    let out = run_shmem_async(&a, &b, &x0, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("shmem_async_jacobi", c, h));

    let cfg = ShmemSimConfig::new(17, a.nrows(), 13);
    let out = run_shmem_async_rowwise(&a, &b, &x0, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("shmem_rowwise", c, h));

    let cfg = ShmemSimConfig::new(8, a.nrows(), 11);
    let out = run_shmem_sync(&a, &b, &x0, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("shmem_sync", c, h));

    let (a, b, x0) = lap144();
    let p = block_partition(a.nrows(), 8);

    let cfg = DistConfig::new(a.nrows(), 1);
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_jacobi", c, h));

    let mut cfg = DistConfig::new(a.nrows(), 3);
    cfg.tol = 1e-4;
    cfg.local_solve = LocalSolve::GaussSeidel;
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_gauss_seidel", c, h));

    let mut cfg = DistConfig::new(a.nrows(), 9);
    cfg.cost.put_latency = 3_000.0;
    cfg.variant = DistVariant::Eager;
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_eager", c, h));

    let mut cfg = DistConfig::new(a.nrows(), 3);
    cfg.tol = 1e-4;
    cfg.termination = Some(TerminationProtocol::default());
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_termination", c, h));

    let cfg = DistConfig::new(a.nrows(), 2);
    let out = run_dist_sync(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_sync", c, h));

    // Faulted config 1: lossy links everywhere + a recovering crash + a
    // transient stall, omniscient stopping.
    let mut cfg = DistConfig::new(a.nrows(), 1);
    cfg.faults = Some(
        FaultPlan::new(7)
            .with_link(LinkFault {
                drop: 0.05,
                duplicate: 0.10,
                reorder: 0.10,
                latency_factor: 1.5,
                ..LinkFault::everywhere()
            })
            .with_crash(2, 10_000.0, Some(8_000.0))
            .with_stall(5, 8_000.0, 6_000.0),
    );
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_faulted_links", c, h));

    // Faulted config 2: the acceptance scenario — a permanent crash at
    // ~25% of the run plus 10% put drop on every link, detection via the
    // staleness-timeout path.
    let mut cfg = DistConfig::new(a.nrows(), 3);
    cfg.tol = 1e-4;
    cfg.termination = Some(TerminationProtocol::with_staleness_timeout(10_000.0));
    cfg.faults = Some(
        FaultPlan::new(42)
            .with_link(LinkFault {
                drop: 0.10,
                ..LinkFault::everywhere()
            })
            .with_crash(6, 20_000.0, None),
    );
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_faulted_crash_term", c, h));

    got
}

/// Golden fingerprints (see the module docs for the recapture history).
/// The hash covers samples, the final iterate, iteration counters, comm
/// volume (incl. drop/duplicate/reorder counts) and fault statistics.
const EXPECTED: &[(&str, usize, u64)] = &[
    ("shmem_async_jacobi", 35, 0x63fc193b7ae5f5c4),
    ("shmem_rowwise", 35, 0xbafbb0eca8550990),
    ("shmem_sync", 53, 0xa6875b437274aaea),
    ("dist_jacobi", 120, 0x1aa5546d32f484c4),
    ("dist_gauss_seidel", 121, 0x308501059bec2a83),
    ("dist_eager", 465, 0xfb1e6b761e9c7502),
    ("dist_termination", 206, 0x07ad2ecef7f5d75e),
    ("dist_sync", 159, 0x757377446b1887eb),
    ("dist_faulted_links", 141, 0x8500288c0f0308ce),
    ("dist_faulted_crash_term", 164, 0x9331d486d656e4a4),
];

/// The three non-Jacobi methods, each through the distributed engine twice:
/// once fault-free and once under the `dist_faulted_links` fault plan
/// (lossy links + recovering crash + transient stall). Labelled like the
/// main table.
fn capture_methods() -> Vec<(&'static str, usize, u64)> {
    let (a, b, x0) = lap144();
    let p = block_partition(a.nrows(), 8);
    let methods: [(&'static str, &'static str, ResolvedMethod); 3] = [
        (
            "dist_richardson1",
            "dist_richardson1_faulted",
            ResolvedMethod::Richardson1 { omega: 0.9 },
        ),
        (
            "dist_richardson2",
            "dist_richardson2_faulted",
            ResolvedMethod::Richardson2 {
                omega: 1.0,
                beta: 0.3,
            },
        ),
        (
            "dist_rwr",
            "dist_rwr_faulted",
            ResolvedMethod::RandomizedResidual {
                fraction: 0.5,
                seed: 7,
            },
        ),
    ];
    let mut got = Vec::new();
    for (clean_name, faulted_name, m) in methods {
        let mut cfg = DistConfig::new(a.nrows(), 5);
        cfg.method = m;
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        let (c, h) = fingerprint(&out);
        got.push((clean_name, c, h));

        let mut cfg = DistConfig::new(a.nrows(), 5);
        cfg.method = m;
        cfg.faults = Some(
            FaultPlan::new(7)
                .with_link(LinkFault {
                    drop: 0.05,
                    duplicate: 0.10,
                    reorder: 0.10,
                    latency_factor: 1.5,
                    ..LinkFault::everywhere()
                })
                .with_crash(2, 10_000.0, Some(8_000.0))
                .with_stall(5, 8_000.0, 6_000.0),
        );
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        let (c, h) = fingerprint(&out);
        got.push((faulted_name, c, h));
    }
    got
}

/// Golden fingerprints for the relaxation methods: one fault-free and one
/// faulted run each, captured when the method abstraction landed. The
/// `seeded-schedules` corpus under `results/` mirrors this table (see
/// [`method_schedule_corpus_matches_results_file`]).
const EXPECTED_METHODS: &[(&str, usize, u64)] = &[
    ("dist_richardson1", 137, 0x5c9b2a5559f4b659),
    ("dist_richardson1_faulted", 154, 0xe2abab0b99d58787),
    ("dist_richardson2", 80, 0xcd72ed7a81197ae8),
    ("dist_richardson2_faulted", 98, 0x11ac5ad84d72c45f),
    ("dist_rwr", 90, 0x39ae0e5c3e091963),
    ("dist_rwr_faulted", 98, 0xb144dbed4e0b6d5e),
];

#[test]
fn method_runs_match_golden_fingerprints() {
    let got = capture_methods();
    let expected: Vec<(&str, usize, u64)> = EXPECTED_METHODS.to_vec();
    if got != expected {
        let mut table = String::new();
        for (name, c, h) in &got {
            table.push_str(&format!("    (\"{name}\", {c}, 0x{h:016x}),\n"));
        }
        panic!("method fingerprints changed — semantics drifted.\nActual table:\n{table}");
    }
}

/// The seeded-schedule regression corpus: `results/method_schedules.csv`
/// holds one row per method run (same runs as [`capture_methods`]), and a
/// fresh capture must regenerate it byte for byte. The file is the
/// repo-level record; this test is what keeps it honest.
#[test]
fn method_schedule_corpus_matches_results_file() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/method_schedules.csv"
    );
    let recorded =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("corpus {path} must exist: {e}"));
    let mut fresh = String::from("run,samples,fingerprint\n");
    for (name, c, h) in capture_methods() {
        fresh.push_str(&format!("{name},{c},0x{h:016x}\n"));
    }
    assert_eq!(
        recorded, fresh,
        "results/method_schedules.csv is stale — regenerate it from this test's capture"
    );
}

#[test]
fn engines_match_pre_optimization_fingerprints() {
    let got = capture();
    let expected: Vec<(&str, usize, u64)> = EXPECTED.to_vec();
    if got != expected {
        let mut table = String::new();
        for (name, c, h) in &got {
            table.push_str(&format!("    (\"{name}\", {c}, 0x{h:016x}),\n"));
        }
        panic!("fingerprints changed — semantics drifted.\nActual table:\n{table}");
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let first = capture();
    let second = capture();
    assert_eq!(first, second, "same seed must give identical outcomes");
}

/// The faulted-links scenario with observability enabled: recording must
/// not perturb the simulation (the outcome fingerprint stays pinned to the
/// obs-off golden above), and the snapshot itself must serialize to
/// byte-identical JSON run over run.
#[test]
fn obs_snapshot_is_deterministic_and_observer_free() {
    let (a, b, x0) = lap144();
    let p = block_partition(a.nrows(), 8);
    let run = |obs: aj_dmsim::ObsConfig| {
        let mut cfg = DistConfig::new(a.nrows(), 1);
        cfg.obs = obs;
        cfg.faults = Some(
            FaultPlan::new(7)
                .with_link(LinkFault {
                    drop: 0.05,
                    duplicate: 0.10,
                    reorder: 0.10,
                    latency_factor: 1.5,
                    ..LinkFault::everywhere()
                })
                .with_crash(2, 10_000.0, Some(8_000.0))
                .with_stall(5, 8_000.0, 6_000.0),
        );
        run_dist_async(&a, &b, &x0, &p, &cfg)
    };

    // Observer-freedom: the outcome with recording on matches the obs-off
    // golden fingerprint (`dist_faulted_links` in EXPECTED) exactly.
    let observed = run(aj_dmsim::ObsConfig::sampled(4));
    assert_eq!(
        fingerprint(&observed),
        (141, 0x8500288c0f0308ce),
        "enabling obs changed the simulation outcome"
    );

    // Snapshot determinism: same seed ⇒ byte-identical JSON.
    let json = observed
        .obs
        .as_ref()
        .expect("obs on must yield a snapshot")
        .to_json();
    let again = run(aj_dmsim::ObsConfig::sampled(4));
    assert_eq!(
        json,
        again.obs.as_ref().unwrap().to_json(),
        "snapshot JSON must be bit-identical across same-seed runs"
    );

    // And the JSON is losslessly parseable (what `aj obs summary` and the
    // CI smoke step rely on).
    let back = aj_obs::Snapshot::from_json(&json).expect("snapshot JSON must parse");
    assert_eq!(back.to_json(), json);
    assert!(back.counters["crashes"] >= 1);
    assert!(back.family_total("staleness").count() > 0);

    // Obs-off runs carry no snapshot at all.
    let off = run(aj_dmsim::ObsConfig::off());
    assert!(off.obs.is_none());
}
