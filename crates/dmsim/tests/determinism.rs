//! Determinism regression tests for the event engines.
//!
//! The allocation-free event engine (scratch-buffer reuse, payload pooling,
//! event-slot recycling) must not change any simulated semantics: for a
//! fixed seed the engines must produce *byte-identical* residual samples
//! and iterates to the pre-optimization behaviour. The fingerprints below
//! were captured from the original engines (fresh allocation per event) and
//! pin that behaviour bit for bit.
//!
//! Consecutive duplicate samples are collapsed before hashing so the
//! fingerprints are invariant to the `finalize` duplicate-sample fix (the
//! dropped sample is an exact copy of its predecessor — no information is
//! lost or altered).

use aj_dmsim::dist::{run_dist_async, run_dist_sync, DistConfig, DistVariant, LocalSolve};
use aj_dmsim::monitor::SimOutcome;
use aj_dmsim::shmem_sim::{
    run_shmem_async, run_shmem_async_rowwise, run_shmem_sync, ShmemSimConfig,
};
use aj_dmsim::termination::TerminationProtocol;
use aj_linalg::CsrMatrix;
use aj_matrices::{fd, rhs};
use aj_partition::block_partition;

fn fnv(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
}

/// `(sample count, FNV-1a hash)` over every sample's exact bit pattern,
/// the final iterate's bits, and the relaxation/iteration counters.
fn fingerprint(out: &SimOutcome) -> (usize, u64) {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut count = 0usize;
    let mut prev: Option<(u64, u64, u64)> = None;
    for s in &out.samples {
        let bits = (
            s.time.to_bits(),
            s.relaxations_per_n.to_bits(),
            s.residual.to_bits(),
        );
        if prev == Some(bits) {
            continue; // collapse exact consecutive duplicates (see above)
        }
        prev = Some(bits);
        count += 1;
        fnv(&mut h, bits.0);
        fnv(&mut h, bits.1);
        fnv(&mut h, bits.2);
    }
    for v in &out.x {
        fnv(&mut h, v.to_bits());
    }
    fnv(&mut h, out.relaxations);
    for &it in &out.worker_iterations {
        fnv(&mut h, it);
    }
    (count, h)
}

fn fd68() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let a = fd::paper_fd("fd68")
        .unwrap()
        .scale_to_unit_diagonal()
        .unwrap();
    let (b, x0) = rhs::paper_problem(a.nrows(), 2018);
    (a, b, x0)
}

fn lap144() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let a = fd::laplacian_2d(12, 12).scale_to_unit_diagonal().unwrap();
    let (b, x0) = rhs::paper_problem(a.nrows(), 99);
    (a, b, x0)
}

/// Runs every engine configuration the optimization touches and returns
/// labelled fingerprints.
fn capture() -> Vec<(&'static str, usize, u64)> {
    let mut got = Vec::new();

    let (a, b, x0) = fd68();
    let cfg = ShmemSimConfig::new(8, a.nrows(), 11);
    let out = run_shmem_async(&a, &b, &x0, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("shmem_async_jacobi", c, h));

    let cfg = ShmemSimConfig::new(17, a.nrows(), 13);
    let out = run_shmem_async_rowwise(&a, &b, &x0, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("shmem_rowwise", c, h));

    let cfg = ShmemSimConfig::new(8, a.nrows(), 11);
    let out = run_shmem_sync(&a, &b, &x0, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("shmem_sync", c, h));

    let (a, b, x0) = lap144();
    let p = block_partition(a.nrows(), 8);

    let cfg = DistConfig::new(a.nrows(), 1);
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_jacobi", c, h));

    let mut cfg = DistConfig::new(a.nrows(), 3);
    cfg.tol = 1e-4;
    cfg.local_solve = LocalSolve::GaussSeidel;
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_gauss_seidel", c, h));

    let mut cfg = DistConfig::new(a.nrows(), 9);
    cfg.cost.put_latency = 3_000.0;
    cfg.variant = DistVariant::Eager;
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_eager", c, h));

    let mut cfg = DistConfig::new(a.nrows(), 3);
    cfg.tol = 1e-4;
    cfg.termination = Some(TerminationProtocol::default());
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_termination", c, h));

    let cfg = DistConfig::new(a.nrows(), 2);
    let out = run_dist_sync(&a, &b, &x0, &p, &cfg);
    let (c, h) = fingerprint(&out);
    got.push(("dist_sync", c, h));

    got
}

/// Fingerprints captured from the pre-optimization engines (fresh `Vec`
/// per event, unbounded payload slots, allocating residual monitor).
const EXPECTED: &[(&str, usize, u64)] = &[
    ("shmem_async_jacobi", 34, 0x16ee1c943f0c67e7),
    ("shmem_rowwise", 34, 0x2e0b7c9326f3b7d4),
    ("shmem_sync", 53, 0x3640705b32f6388e),
    ("dist_jacobi", 120, 0x19d86d3e3ff60a9a),
    ("dist_gauss_seidel", 121, 0x1e1329b444399cbd),
    ("dist_eager", 465, 0xb3b9934d79be1a10),
    ("dist_termination", 205, 0xcadd2195960ced1b),
    ("dist_sync", 159, 0x1adb6c86368663ed),
];

#[test]
fn engines_match_pre_optimization_fingerprints() {
    let got = capture();
    let expected: Vec<(&str, usize, u64)> = EXPECTED.to_vec();
    if got != expected {
        let mut table = String::new();
        for (name, c, h) in &got {
            table.push_str(&format!("    (\"{name}\", {c}, 0x{h:016x}),\n"));
        }
        panic!("fingerprints changed — semantics drifted.\nActual table:\n{table}");
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let first = capture();
    let second = capture();
    assert_eq!(first, second, "same seed must give identical outcomes");
}
