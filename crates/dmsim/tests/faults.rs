//! Fault-injection integration tests for the distributed engine.
//!
//! The paper's Theorem 1 (W.D.D. ⇒ the residual 1-norm never increases, no
//! matter how stale the data each relaxation reads) is exactly the property
//! that makes asynchronous Jacobi fault-tolerant: a dropped put is stale
//! data, a duplicated put is idempotent, a reordered put is staler data, a
//! crashed rank is a subdomain whose boundary data froze. These tests
//! exercise each fault class against that theory, including the ISSUE's
//! acceptance scenario (permanent crash at ~25% of the run + 10% put drop
//! on every link, termination via the staleness-timeout path, bit-identical
//! across same-seed invocations).

use aj_dmsim::dist::{run_dist_async, DistConfig};
use aj_dmsim::fault::{FaultPlan, LinkFault};
use aj_dmsim::monitor::SimOutcome;
use aj_dmsim::termination::TerminationProtocol;
use aj_linalg::method::ResolvedMethod;
use aj_linalg::CsrMatrix;
use aj_matrices::{fd, rhs};
use aj_partition::{block_partition, Partition};
use proptest::prelude::*;

fn lap144() -> (CsrMatrix, Vec<f64>, Vec<f64>, Partition) {
    let a = fd::laplacian_2d(12, 12).scale_to_unit_diagonal().unwrap();
    let (b, x0) = rhs::paper_problem(a.nrows(), 99);
    let p = block_partition(a.nrows(), 8);
    (a, b, x0, p)
}

/// Theorem 1 check: sampled residual 1-norm non-increasing, with a hair of
/// slack for floating-point rounding in the norm accumulation. Strict
/// monotonicity is *not* guaranteed for arbitrary fault plans (see the
/// property test at the bottom); these seed-pinned scenarios satisfy it
/// and the determinism fingerprints keep them reproducible.
fn assert_non_increasing(out: &SimOutcome) {
    for w in out.samples.windows(2) {
        assert!(
            w[1].residual <= w[0].residual * (1.0 + 1e-9),
            "residual grew: {} -> {} at t={}",
            w[0].residual,
            w[1].residual,
            w[1].time
        );
    }
}

fn bits(out: &SimOutcome) -> (Vec<(u64, u64, u64)>, Vec<u64>) {
    (
        out.samples
            .iter()
            .map(|s| {
                (
                    s.time.to_bits(),
                    s.relaxations_per_n.to_bits(),
                    s.residual.to_bits(),
                )
            })
            .collect(),
        out.x.iter().map(|v| v.to_bits()).collect(),
    )
}

/// The acceptance scenario: one rank dies permanently at ~25% of the run
/// (the fault-free run takes ~45k time units), every link drops 10% of its
/// puts, and the termination protocol still fires — through the staleness
/// timeout, with the dead rank excluded — instead of deadlocking the way
/// the pre-fix aggregator (which waited for every rank forever) would.
#[test]
fn crashed_rank_with_lossy_links_terminates_via_staleness_timeout() {
    let (a, b, x0, p) = lap144();
    let run = || {
        let mut cfg = DistConfig::new(a.nrows(), 5);
        cfg.termination = Some(TerminationProtocol::with_staleness_timeout(8_000.0));
        cfg.faults = Some(
            FaultPlan::new(11)
                .with_link(LinkFault {
                    drop: 0.10,
                    ..LinkFault::everywhere()
                })
                .with_crash(3, 11_000.0, None),
        );
        run_dist_async(&a, &b, &x0, &p, &cfg)
    };
    let out = run();
    let term = out.termination.as_ref().expect("protocol was configured");
    assert!(
        term.detected_at.is_some(),
        "termination deadlocked on the dead rank"
    );
    assert_eq!(
        term.excluded_ranks,
        vec![3],
        "detection must have excluded exactly the crashed rank"
    );
    let faults = out.faults.as_ref().expect("fault plan was configured");
    assert_eq!(faults.crash_times.len(), 1);
    assert_eq!(faults.dead_ranks(), vec![3]);
    assert!(out.comm.drops > 0, "10% drop over a full run must fire");
    assert_non_increasing(&out);
    // Bit-identical across two invocations with the same seed.
    let again = run();
    assert_eq!(bits(&out), bits(&again), "same seed, different run");
    assert_eq!(
        out.termination.as_ref().unwrap().detected_at,
        again.termination.as_ref().unwrap().detected_at
    );
}

#[test]
fn recovering_rank_resumes_from_last_committed_state() {
    let (a, b, x0, p) = lap144();
    let mut cfg = DistConfig::new(a.nrows(), 6);
    cfg.faults = Some(FaultPlan::new(3).with_crash(2, 8_000.0, Some(10_000.0)));
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    assert!(out.converged, "a healed crash must still converge");
    let faults = out.faults.as_ref().unwrap();
    assert_eq!(faults.crash_times.len(), 1);
    assert_eq!(faults.recovery_times.len(), 1);
    assert!(faults.recovery_times[0].1 > faults.crash_times[0].1);
    assert!(faults.dead_ranks().is_empty(), "everyone alive at the end");
    assert!(
        faults.skipped_sweeps >= 1,
        "the sweep in flight at the crash must have been orphaned"
    );
    assert_non_increasing(&out);
}

/// A permanently dead rank freezes its subdomain: the live ranks converge
/// to the sub-system solution with Dirichlet data at the frozen interface,
/// so the *global* residual plateaus above tolerance while never growing —
/// the frozen-subdomain limit the termination protocol's dead-rank
/// exclusion is calibrated against.
#[test]
fn permanent_crash_freezes_its_subdomain() {
    let (a, b, x0, p) = lap144();
    let mut cfg = DistConfig::new(a.nrows(), 7);
    cfg.max_time = 60_000.0;
    cfg.faults = Some(FaultPlan::new(9).with_crash(5, 10_000.0, None));
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    assert!(
        !out.converged,
        "global residual is pinned by the frozen subdomain"
    );
    let faults = out.faults.as_ref().unwrap();
    assert_eq!(faults.dead_ranks(), vec![5]);
    assert!(
        faults.dead_window_drops > 0,
        "neighbour puts must have hit the dead window"
    );
    let frozen = out.worker_iterations[5];
    for (r, &it) in out.worker_iterations.iter().enumerate() {
        if r != 5 {
            assert!(
                it > 2 * frozen,
                "live rank {r} barely out-iterated the corpse"
            );
        }
    }
    assert_non_increasing(&out);
}

/// §VI-B's stalled-rank experiment as a fault: the rank pauses, its window
/// keeps accepting puts, and every deferred sweep eventually runs.
#[test]
fn transient_stall_defers_sweeps_without_losing_them() {
    let (a, b, x0, p) = lap144();
    let mut cfg = DistConfig::new(a.nrows(), 8);
    cfg.faults = Some(FaultPlan::new(1).with_stall(4, 5_000.0, 15_000.0));
    let out = run_dist_async(&a, &b, &x0, &p, &cfg);
    assert!(out.converged);
    let faults = out.faults.as_ref().unwrap();
    assert!(faults.stalled_sweeps >= 1, "the stall never bit");
    assert!(faults.crash_times.is_empty());
    assert!(faults.dead_ranks().is_empty());
    assert!(
        out.worker_iterations[4] > 0,
        "the stalled rank must resume afterwards"
    );
    assert_non_increasing(&out);
}

/// A configured-but-empty plan must not perturb the engine: no RNG draws,
/// clean links, byte-identical outcome to `faults: None`.
#[test]
fn empty_fault_plan_is_byte_identical_to_none() {
    let (a, b, x0, p) = lap144();
    let mut cfg = DistConfig::new(a.nrows(), 4);
    let base = run_dist_async(&a, &b, &x0, &p, &cfg);
    cfg.faults = Some(FaultPlan::new(77));
    let planned = run_dist_async(&a, &b, &x0, &p, &cfg);
    assert_eq!(bits(&base), bits(&planned));
    assert!(
        planned.faults.is_none(),
        "empty plans record no fault stats"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1 under arbitrary faults, stated honestly and extended to
    /// every relaxation method. The theorem's `‖Ĥ(k)‖₁ = 1` applies to the
    /// *propagation model*, where relaxing rows read current values; a
    /// relaxation against stale ghosts (put in flight, dropped, or
    /// regressed by a reordered/duplicated delivery) falls outside it —
    /// §IV-A's conditions exist precisely to decide which real
    /// asynchronous relaxations the model covers — and can grow the true
    /// residual *transiently* (measured: up to ~17% per step under 30%
    /// drop + reorder). What survives arbitrary fault plans on W.D.D.
    /// matrices, with zero violations across hundreds of sampled
    /// heavy-fault runs per method: the sampled residual 1-norm never
    /// exceeds its initial value, ends no higher than it started, and any
    /// transient growth is bounded.
    ///
    /// The per-step bound is method-dependent. Under-relaxation (ω ≤ 1)
    /// keeps the row-wise contraction of the W.D.D. argument, and rwr is a
    /// row-mask schedule Theorem 1 covers directly — both stay inside the
    /// same 1.25× staleness bound as plain Jacobi, as does light momentum
    /// (β = 0.2, measured worst step 1.21×). Heavy momentum breaks the
    /// ∞-norm argument: the β(x − x_prev) term is not a convex combination
    /// of iterates, so a post-crash recovery step can overshoot. Measured
    /// worst transient for β = 0.5 across 400 random heavy-fault runs:
    /// 3.71× in one inter-sample window — pinned here at 4.0×. The global
    /// envelope (never above the initial residual) held for every method
    /// including β = 0.5.
    #[test]
    fn theorem1_residual_envelope_under_any_fault_plan(
        (nx, ny) in (4usize..9, 4usize..9),
        nparts in 2usize..6,
        seed in 0u64..1_000,
        method_pick in 0usize..5,
        (drop, dup, reorder) in (0.0f64..0.35, 0.0f64..0.25, 0.0f64..0.25),
        latency_factor in 1.0f64..3.0,
        crash_frac in 0.1f64..0.9,
        crash_pick in 0usize..64,
        recovers in 0u32..2,
        stall_frac in 0.0f64..0.9,
    ) {
        let a = fd::laplacian_2d(nx, ny).scale_to_unit_diagonal().unwrap();
        let (b, x0) = rhs::paper_problem(a.nrows(), seed);
        let p = block_partition(a.nrows(), nparts);
        let mut cfg = DistConfig::new(a.nrows(), seed);
        cfg.max_time = 30_000.0; // crashed runs may never converge; bound them
        cfg.method = match method_pick {
            0 => ResolvedMethod::Jacobi,
            1 => ResolvedMethod::Richardson1 { omega: 0.9 },
            2 => ResolvedMethod::Richardson2 { omega: 1.0, beta: 0.2 },
            3 => ResolvedMethod::Richardson2 { omega: 1.0, beta: 0.5 },
            _ => ResolvedMethod::RandomizedResidual { fraction: 0.5, seed },
        };
        let step_bound = match cfg.method {
            // Heavy momentum: measured worst transient 3.71× (see above).
            ResolvedMethod::Richardson2 { beta, .. } if beta > 0.3 => 4.0,
            _ => 1.25,
        };
        let crash_rank = crash_pick % nparts;
        cfg.faults = Some(
            FaultPlan::new(seed ^ 0xfa17)
                .with_link(LinkFault {
                    drop,
                    duplicate: dup,
                    reorder,
                    latency_factor,
                    ..LinkFault::everywhere()
                })
                .with_crash(crash_rank, 30_000.0 * crash_frac, (recovers == 1).then_some(5_000.0))
                .with_stall((crash_rank + 1) % nparts, 30_000.0 * stall_frac, 4_000.0),
        );
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        let initial = out.samples[0].residual;
        let last = out.samples.last().unwrap().residual;
        prop_assert!(
            last <= initial * (1.0 + 1e-9),
            "run ended above its initial residual: {initial} -> {last}"
        );
        for s in &out.samples {
            prop_assert!(
                s.residual <= initial * (1.0 + 1e-9),
                "residual {} at t={} exceeded the initial {} (grid {}x{}, {} parts, seed {})",
                s.residual, s.time, initial, nx, ny, nparts, seed
            );
        }
        for w in out.samples.windows(2) {
            prop_assert!(
                w[1].residual <= w[0].residual * step_bound,
                "transient growth beyond the {} staleness bound {step_bound}: {} -> {} at t={}",
                cfg.method.name(), w[0].residual, w[1].residual, w[1].time
            );
        }
    }
}
