//! Simulated distributed-memory ranks (§VI semantics).
//!
//! Each rank owns a subdomain ([`aj_partition::LocalSystem`]) and a ghost
//! layer. Asynchronous mode models MPI-3 RMA: after finishing a local sweep
//! a rank *puts* its boundary values toward each neighbour; the values land
//! in the neighbour's window (ghost array) one network latency later,
//! element-atomically, with no action by the receiver — `MPI_Put` with
//! passive target completion. Ranks never wait: the next sweep starts
//! immediately with whatever ghost values have arrived (Baudet's racy
//! scheme, the one the paper studies).
//!
//! Synchronous mode models the point-to-point implementation: every
//! iteration all ranks exchange boundary values and wait (a barrier-like
//! completion), so an iteration lasts as long as its slowest rank plus the
//! exchange.

use crate::cost::{CostModel, WorkerJitter, TICK_SCALE};
use crate::event::EventQueue;
use crate::fault::{FaultPlan, FaultState, LinkParams};
use crate::monitor::{ResidualMonitor, SimOutcome};
use crate::obsrec::{decision_kind, EngineObs};
use crate::shmem_sim::{SimDelay, StopRule};
use crate::termination::{RootAggregator, TerminationProtocol, TerminationStats};
use aj_control::{ControlSpec, Controller, Observation};
use aj_linalg::method::{self, ResolvedMethod};
use aj_linalg::vecops::Norm;
use aj_linalg::{CsrMatrix, StorageFormat, SweepKernel};
use aj_obs::{ObsConfig, SpanKind};
use aj_partition::{CommPlan, LocalSystem, Partition};
use std::rc::Rc;

/// How a rank relaxes its own subdomain each sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalSolve {
    /// One local Jacobi iteration (additive; the paper's scheme).
    Jacobi,
    /// One local Gauss–Seidel sweep (multiplicative within the subdomain;
    /// Jager & Bradley's "inexact block Jacobi" uses exactly this).
    GaussSeidel,
}

/// Which asynchronous update discipline ranks follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistVariant {
    /// Baudet's racy scheme (the paper's): relax continuously with whatever
    /// ghost values are present, even if they were already used.
    Racy,
    /// Jager & Bradley's "eager" (semi-synchronous) scheme: a rank relaxes
    /// only when at least one ghost value changed since its last sweep;
    /// otherwise it parks until a put arrives.
    ///
    /// Caveat: if every rank parks within one latency window (possible with
    /// tiny subdomains and large latencies), no puts remain in flight and
    /// the run ends early with `converged = false`; check
    /// `worker_iterations` when an eager run stops unexpectedly soon.
    Eager,
}

/// Configuration for the simulated distributed solvers.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Relative-residual tolerance.
    pub tol: f64,
    /// Norm for the tolerance test.
    pub norm: Norm,
    /// Hard cap on simulated time (ticks).
    pub max_time: f64,
    /// Hard cap on any rank's iteration count.
    pub max_iterations: u64,
    /// Cost model (see [`CostModel::distributed`]).
    pub cost: CostModel,
    /// Optional slow rank.
    pub delay: Option<SimDelay>,
    /// Residual sampling cadence in relaxations.
    pub sample_every: u64,
    /// Termination rule.
    pub stop: StopRule,
    /// Asynchronous update discipline.
    pub variant: DistVariant,
    /// Relaxation weight ω (1.0 = plain Jacobi; damping ω < 1 shrinks the
    /// spectrum of the local iteration).
    pub omega: f64,
    /// Relaxation method (see [`aj_linalg::method`]). The default
    /// [`ResolvedMethod::Jacobi`] keeps the engine bit-identical to the
    /// pre-method build; non-Jacobi methods require
    /// [`LocalSolve::Jacobi`] (the method *is* the local update rule).
    pub method: ResolvedMethod,
    /// Sweep storage format for each rank's local matrix in the
    /// **asynchronous** engine (default [`StorageFormat::Csr`],
    /// bit-identical to the classic loops). The synchronous solver and the
    /// Gauss–Seidel local solve always run CSR; the driver rejects other
    /// selectors for the synchronous backend.
    pub format: StorageFormat,
    /// Local subdomain solver.
    pub local_solve: LocalSolve,
    /// When set, the asynchronous solver stops through the distributed
    /// termination-detection protocol of [`crate::termination`] instead of
    /// the omniscient monitor (which then only records curves).
    ///
    /// The protocol always aggregates **L1** residual norms (the norm
    /// Theorem 1 makes non-increasing, and the only one that decomposes as
    /// a sum of per-rank contributions); `tol` is therefore interpreted in
    /// the L1 norm for detection even when [`DistConfig::norm`] selects a
    /// different norm for monitoring.
    pub termination: Option<TerminationProtocol>,
    /// Deterministic fault injection (crashes, stalls, lossy links); see
    /// [`crate::fault`]. Applies to the **asynchronous** engine — the
    /// synchronous solver models reliable, acknowledged point-to-point
    /// exchange and ignores the plan. `None` or an empty plan leaves the
    /// engine byte-identical to the fault-free build.
    pub faults: Option<FaultPlan>,
    /// Observability recording (off by default; the asynchronous engine
    /// records per-rank staleness/sweep-period histograms, put latencies,
    /// queue depth on the monitor's sample grid, and per-rank timelines
    /// into [`SimOutcome::obs`]).
    pub obs: ObsConfig,
    /// Online controller closing the loop from observed staleness back into
    /// the running parameters (asynchronous engine only). `None` — the
    /// default — keeps the engine bit-identical to its uncontrolled form.
    pub control: Option<ControlSpec>,
}

impl DistConfig {
    /// Defaults for an `n`-row problem.
    pub fn new(n: usize, seed: u64) -> Self {
        DistConfig {
            tol: 1e-3,
            norm: Norm::L1,
            max_time: 1e13,
            max_iterations: 1_000_000,
            cost: CostModel::distributed(seed),
            delay: None,
            sample_every: n as u64,
            stop: StopRule::Tolerance,
            variant: DistVariant::Racy,
            omega: 1.0,
            method: ResolvedMethod::Jacobi,
            format: StorageFormat::Csr,
            local_solve: LocalSolve::Jacobi,
            termination: None,
            faults: None,
            obs: ObsConfig::off(),
            control: None,
        }
    }
}

/// Per-rank simulation state.
struct Rank {
    local: LocalSystem,
    /// Owned values followed by the ghost tail (window).
    x: Vec<f64>,
    b: Vec<f64>,
    /// For each neighbour: `(positions into our owned vector to send,
    ///  ghost-slot positions at the receiver)`.
    sends: Vec<SendPlan>,
    iterations: u64,
    jitter: WorkerJitter,
    /// Eager-variant state: did any ghost change since the last sweep?
    dirty: bool,
    /// Eager-variant state: is the rank parked waiting for fresh data?
    parked: bool,
    /// Termination protocol: rank received the stop broadcast.
    stopped: bool,
    /// Fault injection: is the rank's process up? Crashed ranks neither
    /// sweep nor accept puts into their window.
    alive: bool,
    /// Fault injection: sweeps deferred until this tick (transient stall).
    stalled_until: u64,
    /// Generation counter for in-flight [`Event::Sweep`]s: a crash bumps
    /// it, invalidating the pending sweep so a recovery cannot leave two
    /// sweep chains running for one rank.
    sweep_epoch: u64,
    /// Resolved fault parameters for this rank's residual reports toward
    /// the root (rank 0). The root's self-report never crosses the
    /// network, so its params stay clean.
    report_faults: LinkParams,
}

struct SendPlan {
    to: usize,
    /// Local owned indices whose values are sent.
    source_local: Vec<usize>,
    /// Ghost-tail slot index at the *receiver* for each value. Shared
    /// (`Rc`) so each put event carries a pointer-sized handle instead of
    /// cloning the index list; the simulation is single-threaded.
    target_slot: Rc<[usize]>,
    /// Resolved fault parameters for this directed link (clean when no
    /// fault plan is active).
    faults: LinkParams,
    /// Index into the flat ghost-generation table: the receiver's base
    /// offset plus *this sender's* position in the receiver's `recv_from`
    /// list. Observability updates the table with this one precomputed
    /// indexed store per landing put — a dense rank×rank table thrashes
    /// cache at 256+ ranks, and a per-put neighbour scan once cost ~30% of
    /// the event loop.
    gen_idx: u32,
}

fn build_ranks(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    plan: &CommPlan,
    cost: &CostModel,
    fault_plan: Option<&FaultPlan>,
) -> Vec<Rank> {
    let nparts = plan.nparts();
    // Base offset of each rank's span in the flat ghost-generation table
    // (one entry per in-neighbour, `recv_from` order); see `gen_base`.
    let gen_base = gen_base(plan);
    // Ghost slot lookup per part: global index → position in ghost tail.
    let ghost_slot: Vec<std::collections::HashMap<usize, usize>> = (0..nparts)
        .map(|p| {
            plan.plan(p)
                .ghosts
                .iter()
                .enumerate()
                .map(|(slot, &g)| (g, slot))
                .collect()
        })
        .collect();
    (0..nparts)
        .map(|p| {
            let sp = plan.plan(p);
            let local = LocalSystem::build(a, sp);
            let owned_pos: std::collections::HashMap<usize, usize> =
                sp.owned.iter().enumerate().map(|(l, &g)| (g, l)).collect();
            let mut x = Vec::with_capacity(local.n_owned() + local.n_ghost());
            x.extend(sp.owned.iter().map(|&g| x0[g]));
            x.extend(sp.ghosts.iter().map(|&g| x0[g]));
            let b_local: Vec<f64> = sp.owned.iter().map(|&g| b[g]).collect();
            let sends = sp
                .send_to
                .iter()
                .map(|(to, globals)| SendPlan {
                    to: *to,
                    source_local: globals.iter().map(|g| owned_pos[g]).collect(),
                    target_slot: globals
                        .iter()
                        .map(|g| ghost_slot[*to][g])
                        .collect::<Vec<_>>()
                        .into(),
                    faults: fault_plan
                        .map(|fp| fp.link_params(p, *to))
                        .unwrap_or_default(),
                    gen_idx: (gen_base[*to]
                        + plan
                            .plan(*to)
                            .recv_from
                            .iter()
                            .position(|(s, _)| *s == p)
                            .expect("send_to mirrors recv_from"))
                        as u32,
                })
                .collect();
            Rank {
                local,
                x,
                b: b_local,
                sends,
                iterations: 0,
                jitter: WorkerJitter::new(&cost.jitter, p),
                dirty: true,
                parked: false,
                stopped: false,
                alive: true,
                stalled_until: 0,
                sweep_epoch: 0,
                report_faults: if p == 0 {
                    LinkParams::default()
                } else {
                    fault_plan
                        .map(|fp| fp.link_params(p, 0))
                        .unwrap_or_default()
                },
            }
        })
        .collect()
}

/// Prefix-sum of in-neighbour counts: rank `p`'s ghost-generation entries
/// live at `gen_base[p] .. gen_base[p] + recv_from.len()` in the flat
/// table, and `gen_base[nparts]` is its total length.
fn gen_base(plan: &CommPlan) -> Vec<usize> {
    let nparts = plan.nparts();
    let mut base = Vec::with_capacity(nparts + 1);
    let mut acc = 0usize;
    for p in 0..nparts {
        base.push(acc);
        acc += plan.plan(p).recv_from.len();
    }
    base.push(acc);
    base
}

enum Event {
    /// Rank's sweep finishes: relax owned rows against the freshest window
    /// contents (just-in-time reads), then send puts. `epoch` must match
    /// the rank's current `sweep_epoch` or the sweep is stale (the rank
    /// crashed while it was in flight) and is discarded.
    Sweep { rank: usize, epoch: u64 },
    /// A put lands in `rank`'s window. `slots` shares the sender's
    /// [`SendPlan::target_slot`]; `values` comes from (and returns to) the
    /// payload pool. `gen_idx`/`sent` identify the sender's entry in the
    /// flat ghost-generation table and the sweep tick that generated the
    /// payload — observability uses them to age ghost data; the solver
    /// itself never reads them.
    PutArrive {
        rank: usize,
        gen_idx: u32,
        sent: u64,
        slots: Rc<[usize]>,
        values: Vec<f64>,
    },
    /// A residual report reaches the root (termination protocol).
    Report { rank: usize, norm: f64 },
    /// The root's stop decision reaches `rank`.
    StopArrive { rank: usize },
    /// Fault injection: the rank's process dies, freezing its window and
    /// subdomain. With `recover_after`, a [`Event::Recover`] follows that
    /// many ticks later.
    Crash {
        rank: usize,
        recover_after: Option<u64>,
    },
    /// Fault injection: a crashed rank restarts from its last committed
    /// local state (its `x` as of the crash) and resumes sweeping.
    Recover { rank: usize },
    /// Fault injection: the rank defers sweeps until tick `until`
    /// (transient stall — the window stays live, puts still land).
    Stall { rank: usize, until: u64 },
}

/// Runs **asynchronous** distributed Jacobi over a partition.
///
/// # Panics
/// Panics on dimension mismatches or a delayed-rank index out of range.
pub fn run_dist_async(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    partition: &Partition,
    config: &DistConfig,
) -> SimOutcome {
    run_dist_async_plan(a, b, x0, &CommPlan::build(a, partition), config)
}

/// [`run_dist_async`] with a prebuilt communication plan. The plan must
/// have been built from `a` and the intended partition — callers that
/// solve the same partitioned system repeatedly (the `aj-serve` plan
/// cache) reuse the ghost/send-list assembly instead of rebuilding it per
/// run.
///
/// # Panics
/// Panics on dimension mismatches or a delayed-rank index out of range.
pub fn run_dist_async_plan(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    plan: &CommPlan,
    config: &DistConfig,
) -> SimOutcome {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    let nparts = plan.nparts();
    if let Some(d) = config.delay {
        assert!(d.worker < nparts, "delayed rank {} out of range", d.worker);
    }
    assert!(
        matches!(config.method, ResolvedMethod::Jacobi)
            || matches!(config.local_solve, LocalSolve::Jacobi),
        "non-Jacobi relaxation methods replace the Jacobi local update; \
         they cannot be combined with a Gauss-Seidel local solve"
    );
    // A `None` (or empty) plan draws no RNG and resolves every link clean,
    // so fault-free runs stay byte-identical to the pre-fault engine.
    let fault_plan = config.faults.as_ref().filter(|p| !p.is_empty());
    let mut fault_state = fault_plan.map(|p| FaultState::new(p, nparts));
    let mut ranks = build_ranks(a, b, x0, plan, &config.cost, fault_plan);
    // One sweep kernel per rank over its local matrix, in the configured
    // storage format (kept beside `ranks` so the borrow checker sees the
    // kernels and the rank state as disjoint). The cost model charges the
    // stored nonzeros the kernel streams per sweep — the plain local nnz
    // for CSR and RCM-blocked, padded nnz for SELL-C-σ.
    let mut kernels: Vec<SweepKernel> = ranks
        .iter()
        .map(|rk| {
            rk.local
                .kernel(config.format)
                .expect("storage format rejected for this subdomain")
        })
        .collect();
    let work_nnz: Vec<usize> = kernels
        .iter()
        .zip(&ranks)
        .map(|(k, rk)| k.work_nnz(&rk.local.matrix))
        .collect();
    // Global mirror of owned values, for residual monitoring.
    let mut x_global = x0.to_vec();
    let mut monitor = ResidualMonitor::new(a, b, config.norm, config.tol, config.sample_every);
    let mut relaxations = 0u64;
    monitor.observe(0.0, 0, &x_global);

    // Observability state, allocated only when recording is on. The age of
    // a ghost value at use is `sweep tick − generation tick`, where the
    // generation tick is the *sender's* sweep that produced the value — the
    // same definition the shared-memory simulator uses, so the two engines
    // cross-validate. The flat `ghost_gen` table holds one generation tick
    // per (receiver, in-neighbour) pair; rank `r`'s span starts at
    // `gen_base[r]`, and each put carries its [`SendPlan::gen_idx`] so a
    // landing put updates the table with one precomputed indexed store.
    let mut obs = EngineObs::new(&config.obs, nparts);
    let gen_base = gen_base(plan);
    let mut ghost_gen: Vec<u64> = if obs.is_some() {
        vec![0; gen_base[nparts]]
    } else {
        Vec::new()
    };
    // Controller state. Staleness is measured as commit age — the tick of a
    // rank's latest sweep — the same generation-tick definition the
    // shared-memory engine and the obs histograms use, so the two engines'
    // decision sequences conform despite different put dynamics.
    let mut ctrl = config
        .control
        .as_ref()
        .map(|spec| Controller::new(spec.cfg, config.method, config.omega, spec.interval));
    let mut ctrl_last_commit = vec![0u64; if ctrl.is_some() { nparts } else { 0 }];
    let mut ctrl_period = vec![0u64; if ctrl.is_some() { nparts } else { 0 }];

    let mut queue: EventQueue<Event> = EventQueue::new();
    let schedule_sweep = |queue: &mut EventQueue<Event>,
                          tick: u64,
                          r: usize,
                          rank: &mut Rank,
                          config: &DistConfig| {
        let mut cost = config.cost.sweep_cost(work_nnz[r]) * rank.jitter.next_factor();
        if let Some(d) = config.delay {
            if d.worker == r {
                cost += d.extra_ticks;
            }
        }
        queue.push(
            tick + ((cost * TICK_SCALE).max(1.0) as u64),
            Event::Sweep {
                rank: r,
                epoch: rank.sweep_epoch,
            },
        );
    };
    for r in 0..nparts {
        schedule_sweep(&mut queue, 0, r, &mut ranks[r], config);
    }
    if let Some(fp) = fault_plan {
        for c in &fp.crashes {
            queue.push(
                (c.at * TICK_SCALE).max(0.0) as u64,
                Event::Crash {
                    rank: c.rank,
                    recover_after: c
                        .recover_after
                        .map(|rec| (rec * TICK_SCALE).max(1.0) as u64),
                },
            );
        }
        for s in &fp.stalls {
            let start = (s.at * TICK_SCALE).max(0.0) as u64;
            queue.push(
                start,
                Event::Stall {
                    rank: s.rank,
                    until: start + (s.duration * TICK_SCALE).max(1.0) as u64,
                },
            );
        }
    }
    // Scratch reused across every Jacobi sweep (two-phase staging buffer).
    let max_owned = ranks.iter().map(|r| r.local.n_owned()).max().unwrap_or(0);
    let mut sweep_values: Vec<f64> = Vec::with_capacity(max_owned);
    // Kernel residual scratch, sliced per rank.
    let mut sweep_res: Vec<f64> = vec![0.0; max_owned];
    // Residual-weight scratch for randomized row selection.
    let mut sweep_weights: Vec<f64> = Vec::with_capacity(max_owned);
    // Momentum state, globally indexed (each row has exactly one owner, so
    // ranks never alias): x_prev[g] is the value row g held *before* its
    // owner's last committed relaxation. Seeded with x0 so the first sweep's
    // momentum term vanishes; a crashed rank's entries simply stay at the
    // last committed state, which is exactly the restart semantics.
    let mut x_prev_global: Vec<f64> = if config.method.needs_previous_iterate() {
        x0.to_vec()
    } else {
        Vec::new()
    };
    // Free list of put payload buffers: a consumed PutArrive returns its
    // `Vec<f64>` here instead of dropping it, so steady-state sweeps issue
    // puts without touching the allocator.
    let mut payload_pool: Vec<Vec<f64>> = Vec::new();

    // Termination-detection state (root = rank 0).
    let norm_b = aj_linalg::vecops::norm(b, aj_linalg::vecops::Norm::L1);
    let mut aggregator = config.termination.map(|t| {
        RootAggregator::new(
            nparts,
            config.tol * t.safety_factor,
            norm_b,
            t.confirmations,
            t.staleness_timeout,
        )
    });
    let mut term_stats = TerminationStats::default();
    let mut stopped_count = 0usize;
    let mut comm = crate::monitor::CommVolume::default();

    let mut now = 0.0f64;
    let mut done = false;
    // The method/ω actually executed; controller decisions retarget these
    // mid-run. Without a controller they never change, so every sweep reads
    // exactly `config.method`/`config.omega` as before.
    let mut cur_method = config.method;
    let mut cur_omega = config.omega;
    while let Some(next_tick) = queue.peek_tick() {
        if done || next_tick as f64 / TICK_SCALE > config.max_time {
            break;
        }
        let (tick, event) = queue.pop().expect("peeked event vanished");
        now = tick as f64 / TICK_SCALE;
        match event {
            Event::Sweep { rank: r, epoch } => {
                if !ranks[r].alive || epoch != ranks[r].sweep_epoch {
                    // Crashed rank, or a sweep orphaned by its crash.
                    if let Some(fs) = fault_state.as_mut() {
                        fs.stats.skipped_sweeps += 1;
                    }
                    continue;
                }
                if tick < ranks[r].stalled_until {
                    // Transient stall: defer the sweep, don't drop it.
                    if let Some(fs) = fault_state.as_mut() {
                        fs.stats.stalled_sweeps += 1;
                    }
                    let until = ranks[r].stalled_until;
                    queue.push(until, Event::Sweep { rank: r, epoch });
                    continue;
                }
                // Relax against the freshest window contents as of now.
                let n_owned = ranks[r].local.n_owned();
                let swept = match config.local_solve {
                    LocalSolve::Jacobi => match cur_method {
                        ResolvedMethod::Jacobi | ResolvedMethod::Richardson1 { .. } => {
                            // Plain and first-order Richardson share one
                            // arm: only ω differs, and the Jacobi path must
                            // keep the exact pre-method arithmetic.
                            let omega = match cur_method {
                                ResolvedMethod::Richardson1 { omega } => omega,
                                _ => cur_omega,
                            };
                            // Two-phase: all residuals from the same state.
                            sweep_values.clear();
                            {
                                let rank = &ranks[r];
                                kernels[r].residuals_into(
                                    &rank.local.matrix,
                                    &rank.x,
                                    &rank.b,
                                    &mut sweep_res[..n_owned],
                                );
                                for row in 0..n_owned {
                                    let res = sweep_res[row];
                                    sweep_values
                                        .push(rank.x[row] + omega * rank.local.diag_inv[row] * res);
                                }
                            }
                            for (l, v) in sweep_values.iter().enumerate() {
                                ranks[r].x[l] = *v;
                                x_global[ranks[r].local.global_owned[l]] = *v;
                            }
                            n_owned
                        }
                        ResolvedMethod::Richardson2 { omega, beta } => {
                            // Heavy-ball over the owned block; the momentum
                            // term compares against the owner's previous
                            // committed value, never a ghost.
                            sweep_values.clear();
                            {
                                let rank = &ranks[r];
                                kernels[r].residuals_into(
                                    &rank.local.matrix,
                                    &rank.x,
                                    &rank.b,
                                    &mut sweep_res[..n_owned],
                                );
                                for row in 0..n_owned {
                                    let res = sweep_res[row];
                                    let g = rank.local.global_owned[row];
                                    sweep_values.push(
                                        rank.x[row]
                                            + omega * rank.local.diag_inv[row] * res
                                            + beta * (rank.x[row] - x_prev_global[g]),
                                    );
                                }
                            }
                            for (l, v) in sweep_values.iter().enumerate() {
                                let g = ranks[r].local.global_owned[l];
                                x_prev_global[g] = ranks[r].x[l];
                                ranks[r].x[l] = *v;
                                x_global[g] = *v;
                            }
                            n_owned
                        }
                        ResolvedMethod::RandomizedResidual { fraction, seed } => {
                            // Residual-weighted selection over the owned
                            // block; the stream index r+1 keeps rank draws
                            // independent (stream 0 is the sync engine's).
                            sweep_values.clear();
                            sweep_weights.clear();
                            {
                                let rank = &ranks[r];
                                kernels[r].residuals_into(
                                    &rank.local.matrix,
                                    &rank.x,
                                    &rank.b,
                                    &mut sweep_res[..n_owned],
                                );
                                sweep_values.extend_from_slice(&sweep_res[..n_owned]);
                                sweep_weights.extend(sweep_res[..n_owned].iter().map(|v| v.abs()));
                            }
                            let k = ((fraction * n_owned as f64).ceil() as usize).max(1);
                            let chosen = method::select_residual_weighted(
                                &sweep_weights,
                                k,
                                method::selection_seed(seed, r as u64 + 1, ranks[r].iterations),
                            );
                            let swept = chosen.len();
                            for l in chosen {
                                let v =
                                    ranks[r].x[l] + ranks[r].local.diag_inv[l] * sweep_values[l];
                                ranks[r].x[l] = v;
                                x_global[ranks[r].local.global_owned[l]] = v;
                            }
                            swept
                        }
                    },
                    LocalSolve::GaussSeidel => {
                        // In-place: each row sees its predecessors' updates.
                        let rank = &mut ranks[r];
                        for row in 0..n_owned {
                            let res = rank.b[row] - rank.local.matrix.row_dot(row, &rank.x);
                            rank.x[row] += cur_omega * rank.local.diag_inv[row] * res;
                            x_global[rank.local.global_owned[row]] = rank.x[row];
                        }
                        n_owned
                    }
                };
                ranks[r].iterations += 1;
                relaxations += swept as u64;
                if let Some(o) = obs.as_mut() {
                    if o.sweep_sampler.hit() {
                        for &gen in &ghost_gen[gen_base[r]..gen_base[r + 1]] {
                            o.record_staleness(r, tick - gen);
                        }
                        if let Some(prev) = o.last_sweep_end[r] {
                            o.record_sweep_period(r, tick - prev);
                        }
                        o.event(r, tick, SpanKind::SweepEnd);
                    }
                    o.last_sweep_end[r] = Some(tick);
                }
                if !ctrl_period.is_empty() {
                    ctrl_period[r] = tick - ctrl_last_commit[r];
                    ctrl_last_commit[r] = tick;
                }

                // One-sided puts toward every neighbour.
                for s in 0..ranks[r].sends.len() {
                    let (to, gen_idx, slots, vals, volume, lp) = {
                        let sp = &ranks[r].sends[s];
                        let mut vals = payload_pool.pop().unwrap_or_default();
                        vals.clear();
                        vals.extend(sp.source_local.iter().map(|&l| ranks[r].x[l]));
                        (
                            sp.to,
                            sp.gen_idx,
                            Rc::clone(&sp.target_slot),
                            vals,
                            sp.source_local.len(),
                            sp.faults,
                        )
                    };
                    comm.puts += 1;
                    comm.values += volume as u64;
                    let mut latency =
                        config.cost.put_latency + config.cost.per_value_comm * volume as f64;
                    // Link faults: the RNG is only consulted for faulty
                    // links, in event-processing order (deterministic).
                    let mut duplicated = false;
                    if !lp.is_clean() {
                        let fs = fault_state.as_mut().expect("faulty link without a plan");
                        if fs.draw() < lp.drop {
                            comm.drops += 1;
                            payload_pool.push(vals);
                            continue;
                        }
                        latency *= lp.latency_factor;
                        if fs.draw() < lp.reorder {
                            // An out-of-order put is just a put that took
                            // longer: one-sided windows are last-writer-wins
                            // per element, so older data landing later is
                            // the whole effect.
                            latency += fs.extra_delay(config.cost.put_latency);
                            comm.reorders += 1;
                        }
                        duplicated = fs.draw() < lp.duplicate;
                    }
                    let arrive = tick + ((latency * TICK_SCALE).max(1.0) as u64);
                    if duplicated {
                        // Duplicate delivery of an idempotent put: the copy
                        // lands later with identical contents.
                        comm.duplicates += 1;
                        let fs = fault_state.as_mut().expect("duplicate without a plan");
                        let extra = fs.extra_delay(config.cost.put_latency);
                        let mut copy = payload_pool.pop().unwrap_or_default();
                        copy.clear();
                        copy.extend_from_slice(&vals);
                        queue.push(
                            arrive + ((extra * TICK_SCALE).max(1.0) as u64),
                            Event::PutArrive {
                                rank: to,
                                gen_idx,
                                sent: tick,
                                slots: Rc::clone(&slots),
                                values: copy,
                            },
                        );
                    }
                    queue.push(
                        arrive,
                        Event::PutArrive {
                            rank: to,
                            gen_idx,
                            sent: tick,
                            slots,
                            values: vals,
                        },
                    );
                }
                if let Some(o) = obs.as_mut() {
                    if !ranks[r].sends.is_empty() && o.put_sampler.hit() {
                        o.event(r, tick, SpanKind::PutSend);
                    }
                }

                let samples_before = monitor.samples().len();
                let hit_tol = monitor.observe(now, relaxations, &x_global);
                if let Some(o) = obs.as_mut() {
                    // Queue depth is sampled exactly when the monitor takes
                    // a residual sample, so both series share the monitor's
                    // snapped relaxation grid.
                    if monitor.samples().len() > samples_before {
                        o.record_queue_depth(queue.len() as u64);
                    }
                }
                if let Some(c) = ctrl.as_mut() {
                    if monitor.samples().len() > samples_before {
                        // Staleness-at-use on the monitor's grid: the oldest
                        // live rank's commit age in units of the fastest live
                        // rank's sweep period (see the controller state note
                        // above for why this conforms with shmem).
                        let mut fast = u64::MAX;
                        for v in 0..nparts {
                            if !c.is_shed(v) && ctrl_period[v] > 0 {
                                fast = fast.min(ctrl_period[v]);
                            }
                        }
                        let mut worst = 0usize;
                        let mut staleness = 0.0f64;
                        if fast != u64::MAX {
                            for v in 0..nparts {
                                if c.is_shed(v) {
                                    continue;
                                }
                                let age = (tick - ctrl_last_commit[v]) as f64 / fast as f64;
                                if age > staleness {
                                    staleness = age;
                                    worst = v;
                                }
                            }
                        }
                        let residual = monitor.samples().last().map_or(f64::NAN, |s| s.residual);
                        if let Some(d) = c.observe(Observation {
                            residual,
                            staleness,
                            worst,
                        }) {
                            let (m, w0) = Controller::retune(cur_method, cur_omega, &d);
                            cur_method = m;
                            cur_omega = w0;
                            if let Some(o) = obs.as_mut() {
                                o.event(0, tick, decision_kind(&d));
                            }
                            if c.rescue_requested() {
                                // Stop here; the driver escalates to an
                                // outer rescue.
                                done = true;
                            }
                        }
                    }
                }
                match config.stop {
                    StopRule::Tolerance => {
                        // With the protocol active, the omniscient monitor
                        // only records; stopping is the protocol's job.
                        if hit_tol && config.termination.is_none() {
                            done = true;
                        }
                    }
                    StopRule::FixedIterations(k) => {
                        if ranks.iter().all(|rk| rk.iterations >= k) {
                            done = true;
                        }
                    }
                }
                // Periodic residual report toward the root.
                if let Some(proto) = config.termination {
                    if !ranks[r].stopped
                        && ranks[r]
                            .iterations
                            .is_multiple_of(proto.check_interval.max(1))
                    {
                        let rank = &ranks[r];
                        let mut local_norm = 0.0;
                        for row in 0..rank.local.n_owned() {
                            local_norm +=
                                (rank.b[row] - rank.local.matrix.row_dot(row, &rank.x)).abs();
                        }
                        term_stats.reports_sent += 1;
                        // Reports ride the same lossy link toward the root
                        // (duplication is a no-op for a latest-value
                        // aggregator, so only drop and latency apply).
                        let lp = ranks[r].report_faults;
                        let mut latency = config.cost.put_latency;
                        let mut dropped = false;
                        if !lp.is_clean() {
                            let fs = fault_state.as_mut().expect("faulty link without a plan");
                            if fs.draw() < lp.drop {
                                dropped = true;
                            } else {
                                latency *= lp.latency_factor;
                            }
                        }
                        if dropped {
                            term_stats.reports_dropped += 1;
                        } else {
                            queue.push(
                                tick + ((latency * TICK_SCALE).max(1.0) as u64),
                                Event::Report {
                                    rank: r,
                                    norm: local_norm,
                                },
                            );
                        }
                    }
                }
                if !done && !ranks[r].stopped && ranks[r].iterations < config.max_iterations {
                    // Eager variant: park until a neighbour's put brings
                    // new information (ranks without neighbours never park).
                    if config.variant == DistVariant::Eager
                        && !ranks[r].dirty
                        && !ranks[r].sends.is_empty()
                    {
                        ranks[r].parked = true;
                    } else {
                        ranks[r].dirty = false;
                        schedule_sweep(&mut queue, tick, r, &mut ranks[r], config);
                    }
                }
            }
            Event::PutArrive {
                rank: r,
                gen_idx,
                sent,
                slots,
                values,
            } => {
                if !ranks[r].alive {
                    // The target's window died with its process; the put
                    // vanishes (MPI would surface an RMA error — the
                    // solver's answer either way is "that data is gone").
                    if let Some(fs) = fault_state.as_mut() {
                        fs.stats.dead_window_drops += 1;
                    }
                    payload_pool.push(values);
                    continue;
                }
                let n_owned = ranks[r].local.n_owned();
                for (&slot, &v) in slots.iter().zip(values.iter()) {
                    ranks[r].x[n_owned + slot] = v;
                }
                payload_pool.push(values);
                if let Some(o) = obs.as_mut() {
                    // Last writer wins, exactly like the window itself: a
                    // reordered put landing late overwrites the generation
                    // tick the same way it overwrites the ghost values.
                    ghost_gen[gen_idx as usize] = sent;
                    if o.put_sampler.hit() {
                        o.record_put_latency(tick - sent);
                        o.event(r, tick, SpanKind::PutArrive);
                    }
                }
                ranks[r].dirty = true;
                if ranks[r].parked && !ranks[r].stopped {
                    ranks[r].parked = false;
                    ranks[r].dirty = false;
                    schedule_sweep(&mut queue, tick, r, &mut ranks[r], config);
                }
            }
            Event::Report { rank, norm } => {
                if let Some(o) = obs.as_mut() {
                    o.term_reports += 1;
                    // Protocol rounds show on the root's timeline (rank 0).
                    if o.put_sampler.hit() {
                        o.event(0, tick, SpanKind::TermRound);
                    }
                }
                if let Some(agg) = aggregator.as_mut() {
                    if let Some(rel) = agg.ingest(rank, norm, now) {
                        // Root decides: broadcast the stop to every rank.
                        term_stats.detected_at = Some(now);
                        term_stats.detected_residual = Some(rel);
                        term_stats.excluded_ranks = agg.excluded_ranks().to_vec();
                        for target in 0..nparts {
                            term_stats.stops_sent += 1;
                            let arrive =
                                tick + ((config.cost.put_latency * TICK_SCALE).max(1.0) as u64);
                            queue.push(arrive, Event::StopArrive { rank: target });
                        }
                    }
                }
            }
            Event::StopArrive { rank } => {
                // Stop broadcasts are modelled reliable (MPI would retry a
                // collective until completion) and a dead rank is trivially
                // "stopped", so the count always reaches `nparts`.
                if !ranks[rank].stopped {
                    ranks[rank].stopped = true;
                    stopped_count += 1;
                    if stopped_count == nparts {
                        done = true;
                    }
                }
            }
            Event::Crash {
                rank,
                recover_after,
            } => {
                if ranks[rank].alive {
                    ranks[rank].alive = false;
                    if let Some(o) = obs.as_mut() {
                        o.event(rank, tick, SpanKind::Crash);
                    }
                    // Orphan the in-flight sweep so a recovery can't leave
                    // two sweep chains running for this rank.
                    ranks[rank].sweep_epoch += 1;
                    if let Some(fs) = fault_state.as_mut() {
                        fs.stats.crash_times.push((rank, now));
                        fs.stats.alive[rank] = false;
                    }
                    if let Some(rec) = recover_after {
                        queue.push(tick + rec, Event::Recover { rank });
                    }
                }
            }
            Event::Recover { rank } => {
                if !ranks[rank].alive {
                    ranks[rank].alive = true;
                    if let Some(o) = obs.as_mut() {
                        o.event(rank, tick, SpanKind::Recover);
                    }
                    if let Some(fs) = fault_state.as_mut() {
                        fs.stats.recovery_times.push((rank, now));
                        fs.stats.alive[rank] = true;
                    }
                    if !ranks[rank].stopped {
                        // Restart from the last committed local state: the
                        // rank's `x` (owned + ghost window) as of the
                        // crash. Stale ghosts are exactly what Theorem 1
                        // tolerates; neighbours' next puts refresh them.
                        ranks[rank].parked = false;
                        ranks[rank].dirty = true;
                        schedule_sweep(&mut queue, tick, rank, &mut ranks[rank], config);
                    }
                }
            }
            Event::Stall { rank, until } => {
                if ranks[rank].alive {
                    ranks[rank].stalled_until = ranks[rank].stalled_until.max(until);
                    if let Some(o) = obs.as_mut() {
                        o.event(rank, tick, SpanKind::Stall);
                    }
                }
            }
        }
    }
    monitor.finalize(now, relaxations, &x_global);
    let converged = monitor.converged();
    let obs_snapshot = obs.map(|o| {
        let mut snap = o.into_snapshot(Some(&comm));
        snap.set_counter("relaxations", relaxations);
        snap.set_counter("ranks", nparts as u64);
        snap.set_counter(&format!("method/{}", config.method.name()), 1);
        if let Some(fs) = fault_state.as_ref() {
            snap.set_counter("crashes", fs.stats.crash_times.len() as u64);
            snap.set_counter("recoveries", fs.stats.recovery_times.len() as u64);
            snap.set_counter("skipped_sweeps", fs.stats.skipped_sweeps);
            snap.set_counter("stalled_sweeps", fs.stats.stalled_sweeps);
            snap.set_counter("dead_window_drops", fs.stats.dead_window_drops);
        }
        snap.set_gauge("sim_time", now);
        snap.set_gauge(
            "final_residual",
            monitor.samples().last().map_or(f64::NAN, |s| s.residual),
        );
        snap
    });
    SimOutcome {
        samples: monitor.into_samples(),
        x: x_global,
        time: now,
        relaxations,
        worker_iterations: ranks.iter().map(|r| r.iterations).collect(),
        converged,
        termination: config.termination.map(|_| term_stats),
        comm,
        faults: fault_state.map(|fs| fs.stats),
        obs: obs_snapshot,
        control: ctrl.map(Controller::into_stats),
    }
}

/// Runs **synchronous** distributed Jacobi: one global Jacobi iteration per
/// step; simulated time per step is the slowest rank's sweep plus the
/// point-to-point exchange (latency + bandwidth on the largest message).
pub fn run_dist_sync(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    partition: &Partition,
    config: &DistConfig,
) -> SimOutcome {
    run_dist_sync_plan(a, b, x0, &CommPlan::build(a, partition), config)
}

/// [`run_dist_sync`] with a prebuilt communication plan (see
/// [`run_dist_async_plan`] for when that pays off).
pub fn run_dist_sync_plan(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    plan: &CommPlan,
    config: &DistConfig,
) -> SimOutcome {
    let n = a.nrows();
    let nparts = plan.nparts();
    let diag_inv: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
    let rank_nnz: Vec<usize> = (0..nparts)
        .map(|p| plan.plan(p).owned.iter().map(|&i| a.row_nnz(i)).sum())
        .collect();
    let max_send: usize = (0..nparts)
        .map(|p| {
            plan.plan(p)
                .send_to
                .iter()
                .map(|(_, v)| v.len())
                .sum::<usize>()
        })
        .max()
        .unwrap_or(0);
    let msgs_per_iter: u64 = (0..nparts).map(|p| plan.plan(p).send_to.len() as u64).sum();
    let values_per_iter: u64 = plan.total_volume() as u64;
    let mut jitters: Vec<WorkerJitter> = (0..nparts)
        .map(|p| WorkerJitter::new(&config.cost.jitter, p))
        .collect();

    let mut x = x0.to_vec();
    let mut x_next = vec![0.0; n];
    // Previous-iterate buffer for momentum; empty (never read) otherwise.
    let mut x_prev = if matches!(config.method, ResolvedMethod::Jacobi) {
        Vec::new()
    } else {
        x0.to_vec()
    };
    let mut now = 0.0f64;
    let mut iters = 0u64;
    let mut relaxations = 0u64;
    let mut monitor = ResidualMonitor::new(a, b, config.norm, config.tol, config.sample_every);
    monitor.observe(0.0, 0, &x);

    loop {
        match config.stop {
            StopRule::Tolerance => {
                if monitor.converged() {
                    break;
                }
            }
            StopRule::FixedIterations(k) => {
                if iters >= k {
                    break;
                }
            }
        }
        if now > config.max_time || iters >= config.max_iterations {
            break;
        }
        let mut slowest = 0.0f64;
        for r in 0..nparts {
            let mut cost = config.cost.sweep_cost(rank_nnz[r]) * jitters[r].next_factor();
            if let Some(d) = config.delay {
                if d.worker == r {
                    cost += d.extra_ticks;
                }
            }
            slowest = slowest.max(cost);
        }
        let exchange = config.cost.put_latency + config.cost.per_value_comm * max_send as f64;
        let swept = match config.method {
            ResolvedMethod::Jacobi => {
                // The pre-method path, untouched for bit-identity (and the
                // only one where the legacy `omega` knob still applies).
                aj_linalg::sweeps::weighted_jacobi_iteration(
                    a,
                    b,
                    &diag_inv,
                    config.omega,
                    &x,
                    &mut x_next,
                );
                std::mem::swap(&mut x, &mut x_next);
                n
            }
            _ => {
                // Synchronous mode is exactly one global dense-reference
                // iteration per step, so every method-capable engine agrees
                // bit-for-bit in sync mode.
                let swept = method::method_iteration(
                    a,
                    b,
                    &diag_inv,
                    &config.method,
                    iters,
                    &x,
                    &x_prev,
                    &mut x_next,
                );
                std::mem::swap(&mut x_prev, &mut x);
                std::mem::swap(&mut x, &mut x_next);
                swept
            }
        };
        now += slowest + exchange;
        iters += 1;
        relaxations += swept as u64;
        monitor.observe(now, relaxations, &x);
    }
    monitor.finalize(now, relaxations, &x);
    let converged = monitor.converged();
    SimOutcome {
        samples: monitor.into_samples(),
        x,
        time: now,
        relaxations,
        worker_iterations: vec![iters; nparts],
        converged,
        termination: None,
        comm: crate::monitor::CommVolume {
            puts: msgs_per_iter * iters,
            values: values_per_iter * iters,
            ..Default::default()
        },
        faults: None,
        obs: None,
        control: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_matrices::{fd, rhs};
    use aj_partition::block_partition;

    fn problem(nx: usize, ny: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = fd::laplacian_2d(nx, ny).scale_to_unit_diagonal().unwrap();
        let (b, x0) = rhs::paper_problem(a.nrows(), 99);
        (a, b, x0)
    }

    #[test]
    fn async_distributed_converges() {
        let (a, b, x0) = problem(12, 12);
        let p = block_partition(a.nrows(), 8);
        let cfg = DistConfig::new(a.nrows(), 1);
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        assert!(out.converged, "residual {}", out.final_residual());
        assert!(out.worker_iterations.iter().all(|&i| i > 0));
    }

    #[test]
    fn sync_distributed_matches_global_jacobi_relaxation_count() {
        let (a, b, x0) = problem(10, 10);
        let p = block_partition(a.nrows(), 4);
        let cfg = DistConfig::new(a.nrows(), 2);
        let out = run_dist_sync(&a, &b, &x0, &p, &cfg);
        assert!(out.converged);
        // Reference sequential Jacobi with the same tolerance/norm.
        let (_, hist) =
            aj_linalg::sweeps::jacobi_solve(&a, &b, &x0, cfg.tol, 100_000, cfg.norm).unwrap();
        let sync_iters = out.worker_iterations[0];
        assert_eq!(
            sync_iters as usize,
            hist.len() - 1,
            "sync dist must be exactly global Jacobi"
        );
    }

    #[test]
    fn async_needs_no_more_relaxations_than_sync() {
        // The Figure 7 headline: asynchronous Jacobi tends to converge in
        // fewer relaxations.
        let (a, b, x0) = problem(16, 16);
        let p = block_partition(a.nrows(), 16);
        let cfg = DistConfig::new(a.nrows(), 3);
        let asy = run_dist_async(&a, &b, &x0, &p, &cfg);
        let syn = run_dist_sync(&a, &b, &x0, &p, &cfg);
        assert!(asy.converged && syn.converged);
        let ra = asy.relaxations_to_tolerance(cfg.tol).unwrap();
        let rs = syn.relaxations_to_tolerance(cfg.tol).unwrap();
        assert!(ra <= rs * 1.15, "async {ra} vs sync {rs} relaxations/n");
    }

    #[test]
    fn delayed_rank_hurts_sync_much_more() {
        let (a, b, x0) = problem(12, 12);
        let p = block_partition(a.nrows(), 12);
        let mut cfg = DistConfig::new(a.nrows(), 4);
        cfg.delay = Some(SimDelay {
            worker: 5,
            extra_ticks: 1e6,
        });
        let asy = run_dist_async(&a, &b, &x0, &p, &cfg);
        let syn = run_dist_sync(&a, &b, &x0, &p, &cfg);
        assert!(asy.converged && syn.converged);
        let ta = asy.time_to_tolerance(cfg.tol).unwrap();
        let ts = syn.time_to_tolerance(cfg.tol).unwrap();
        assert!(ts > 2.0 * ta, "sync {ts} vs async {ta}");
    }

    #[test]
    fn ghost_values_propagate_through_puts() {
        // With exactly two ranks on a chain, rank 1's interface value must
        // reach rank 0's window, otherwise rank 0 converges to the wrong
        // solution. Convergence of the global residual proves delivery.
        let a = fd::laplacian_1d(20).scale_to_unit_diagonal().unwrap();
        let (b, x0) = rhs::paper_problem(20, 5);
        let p = block_partition(20, 2);
        let mut cfg = DistConfig::new(20, 5);
        cfg.tol = 1e-8;
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        assert!(out.converged);
        assert!(a.relative_residual(&out.x, &b, Norm::L1) < 1e-7);
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, b, x0) = problem(8, 8);
        let p = block_partition(64, 4);
        let cfg = DistConfig::new(64, 6);
        let o1 = run_dist_async(&a, &b, &x0, &p, &cfg);
        let o2 = run_dist_async(&a, &b, &x0, &p, &cfg);
        assert_eq!(o1.time, o2.time);
        assert_eq!(o1.x, o2.x);
    }

    #[test]
    fn eager_variant_converges_with_fewer_wasted_relaxations() {
        // Eager ranks skip sweeps that would reuse stale ghosts, so at a
        // high put latency they spend no more relaxations than racy ranks.
        let (a, b, x0) = problem(12, 12);
        let p = block_partition(a.nrows(), 12);
        let mut racy = DistConfig::new(a.nrows(), 9);
        racy.cost.put_latency = 3_000.0;
        let mut eager = racy.clone();
        eager.variant = DistVariant::Eager;
        let o_racy = run_dist_async(&a, &b, &x0, &p, &racy);
        let o_eager = run_dist_async(&a, &b, &x0, &p, &eager);
        assert!(o_racy.converged && o_eager.converged);
        assert!(
            o_eager.relaxations <= o_racy.relaxations,
            "eager {} vs racy {}",
            o_eager.relaxations,
            o_racy.relaxations
        );
    }

    #[test]
    fn eager_single_rank_never_parks() {
        let (a, b, x0) = problem(6, 6);
        let p = block_partition(a.nrows(), 1);
        let mut cfg = DistConfig::new(a.nrows(), 2);
        cfg.variant = DistVariant::Eager;
        cfg.tol = 1e-6;
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        assert!(out.converged, "residual {}", out.final_residual());
    }

    #[test]
    fn gauss_seidel_local_solve_converges_faster_per_relaxation() {
        // Jager & Bradley's inexact block Jacobi: local GS sweeps propagate
        // information within the subdomain, so fewer relaxations are needed.
        let (a, b, x0) = problem(14, 14);
        let p = block_partition(a.nrows(), 7);
        let mut jac = DistConfig::new(a.nrows(), 3);
        jac.tol = 1e-4;
        let mut gs = jac.clone();
        gs.local_solve = LocalSolve::GaussSeidel;
        let oj = run_dist_async(&a, &b, &x0, &p, &jac);
        let og = run_dist_async(&a, &b, &x0, &p, &gs);
        assert!(oj.converged && og.converged);
        let rj = oj.relaxations_to_tolerance(1e-4).unwrap();
        let rg = og.relaxations_to_tolerance(1e-4).unwrap();
        assert!(
            rg < rj,
            "GS blocks {rg} vs Jacobi blocks {rj} relaxations/n"
        );
    }

    #[test]
    fn damped_omega_changes_but_preserves_convergence_on_spd() {
        let (a, b, x0) = problem(10, 10);
        let p = block_partition(a.nrows(), 5);
        let mut cfg = DistConfig::new(a.nrows(), 4);
        cfg.tol = 1e-4;
        cfg.omega = 0.7;
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        assert!(out.converged);
        // Damping slows convergence on this well-behaved matrix.
        let mut plain = DistConfig::new(a.nrows(), 4);
        plain.tol = 1e-4;
        let out_plain = run_dist_async(&a, &b, &x0, &p, &plain);
        assert!(
            out.relaxations > out_plain.relaxations,
            "ω=0.7 should need more relaxations ({} vs {})",
            out.relaxations,
            out_plain.relaxations
        );
    }

    #[test]
    fn termination_protocol_stops_all_ranks_at_tolerance() {
        let (a, b, x0) = problem(14, 14);
        let p = block_partition(a.nrows(), 7);
        let mut cfg = DistConfig::new(a.nrows(), 3);
        cfg.tol = 1e-4;
        cfg.termination = Some(crate::termination::TerminationProtocol::default());
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        let stats = out.termination.as_ref().expect("protocol stats present");
        assert!(stats.detected_at.is_some(), "root must detect convergence");
        assert!(stats.reports_sent > 0);
        assert_eq!(stats.stops_sent, 7);
        // Theorem 1 safety: the true residual at stop time meets the
        // tolerance the root saw (W.D.D. ⇒ non-increasing residual), up to
        // the inconsistency of per-rank ghost views in the reports.
        let true_res = a.relative_residual(&out.x, &b, Norm::L1);
        assert!(true_res < 2.0 * cfg.tol, "true residual {true_res}");
        // The protocol detects no earlier than the omniscient monitor.
        let mut oracle = cfg.clone();
        oracle.termination = None;
        let o = run_dist_async(&a, &b, &x0, &p, &oracle);
        let oracle_t = o.time_to_tolerance(cfg.tol).unwrap();
        assert!(
            stats.detected_at.unwrap() >= oracle_t * 0.9,
            "protocol {:?} vs oracle {oracle_t}",
            stats.detected_at
        );
    }

    #[test]
    fn termination_protocol_never_fires_on_non_converging_run() {
        let (a, b, x0) = problem(8, 8);
        let p = block_partition(a.nrows(), 4);
        let mut cfg = DistConfig::new(a.nrows(), 5);
        cfg.tol = 1e-30; // unreachable
        cfg.max_iterations = 200;
        cfg.termination = Some(crate::termination::TerminationProtocol::default());
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        let stats = out.termination.as_ref().unwrap();
        assert!(stats.detected_at.is_none());
        assert_eq!(stats.stops_sent, 0);
        assert!(out.worker_iterations.iter().all(|&i| i == 200));
    }

    #[test]
    fn communication_volume_is_accounted() {
        let (a, b, x0) = problem(8, 8);
        let p = block_partition(a.nrows(), 4);
        let mut cfg = DistConfig::new(a.nrows(), 6);
        cfg.stop = StopRule::FixedIterations(10);
        cfg.tol = 0.0;
        let asy = run_dist_async(&a, &b, &x0, &p, &cfg);
        // Every rank has ≤ 2 neighbours on a block-partitioned grid; each
        // iteration sends one put per neighbour.
        assert!(asy.comm.puts > 0);
        assert!(
            asy.comm.values >= asy.comm.puts,
            "each put carries ≥ 1 value"
        );
        let syn = run_dist_sync(&a, &b, &x0, &p, &cfg);
        assert!(syn.comm.puts > 0);
        assert_eq!(
            syn.comm.puts % 10,
            0,
            "sync sends the same messages every iteration"
        );
    }

    #[test]
    fn fixed_iterations_stop_in_distributed_mode() {
        let (a, b, x0) = problem(8, 8);
        let p = block_partition(64, 4);
        let mut cfg = DistConfig::new(64, 7);
        cfg.stop = StopRule::FixedIterations(25);
        cfg.tol = 0.0;
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        assert!(out.worker_iterations.iter().all(|&i| i >= 25));
    }

    fn all_methods() -> Vec<ResolvedMethod> {
        vec![
            ResolvedMethod::Jacobi,
            ResolvedMethod::Richardson1 { omega: 0.9 },
            ResolvedMethod::Richardson2 {
                omega: 1.0,
                beta: 0.3,
            },
            ResolvedMethod::RandomizedResidual {
                fraction: 0.5,
                seed: 7,
            },
        ]
    }

    #[test]
    fn every_method_converges_async_distributed() {
        let (a, b, x0) = problem(12, 12);
        let p = block_partition(a.nrows(), 6);
        for m in all_methods() {
            let mut cfg = DistConfig::new(a.nrows(), 11);
            cfg.method = m;
            let o1 = run_dist_async(&a, &b, &x0, &p, &cfg);
            assert!(
                o1.converged,
                "{} residual {}",
                m.name(),
                o1.final_residual()
            );
            // Every method keeps the event engine deterministic.
            let o2 = run_dist_async(&a, &b, &x0, &p, &cfg);
            assert_eq!(o1.x, o2.x, "{} must replay bitwise", m.name());
            assert_eq!(o1.time, o2.time);
        }
    }

    #[test]
    fn sync_method_run_matches_the_dense_reference_bitwise() {
        let (a, b, x0) = problem(10, 10);
        let p = block_partition(a.nrows(), 4);
        for m in all_methods().into_iter().skip(1) {
            let mut cfg = DistConfig::new(a.nrows(), 3);
            // Per-iteration sampling so the engine's stop check lands on
            // the same iterate as the reference's (rwr relaxes fewer than
            // n rows per sweep, which would desync the default cadence).
            cfg.sample_every = 1;
            cfg.method = m;
            let out = run_dist_sync(&a, &b, &x0, &p, &cfg);
            let reference = aj_linalg::method::method_solve(
                &a,
                &b,
                &x0,
                &m,
                cfg.tol,
                cfg.max_iterations as usize,
                cfg.norm,
            )
            .unwrap();
            assert!(out.converged && reference.converged, "{}", m.name());
            assert_eq!(
                out.x,
                reference.x,
                "sync dist {} must be the dense reference bit-for-bit",
                m.name()
            );
            assert_eq!(out.relaxations, reference.relaxations, "{}", m.name());
        }
    }

    #[test]
    fn rwr_relaxes_only_the_selected_rows_distributed() {
        let (a, b, x0) = problem(10, 10);
        let p = block_partition(a.nrows(), 4); // 25 owned rows per rank
        let mut cfg = DistConfig::new(a.nrows(), 13);
        cfg.method = ResolvedMethod::RandomizedResidual {
            fraction: 0.25,
            seed: 5,
        };
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        assert!(out.converged);
        // ⌈0.25 · 25⌉ = 7 rows per sweep, on every rank.
        let sweeps: u64 = out.worker_iterations.iter().sum();
        assert_eq!(out.relaxations, sweeps * 7);
    }

    #[test]
    #[should_panic(expected = "Gauss-Seidel")]
    fn non_jacobi_method_rejects_gauss_seidel_local_solve() {
        let (a, b, x0) = problem(6, 6);
        let p = block_partition(a.nrows(), 2);
        let mut cfg = DistConfig::new(a.nrows(), 1);
        cfg.local_solve = LocalSolve::GaussSeidel;
        cfg.method = ResolvedMethod::Richardson2 {
            omega: 1.0,
            beta: 0.3,
        };
        run_dist_async(&a, &b, &x0, &p, &cfg);
    }

    #[test]
    fn momentum_converges_under_faults_distributed() {
        // The fault path (crash + lossy links) composes with momentum: the
        // recovered rank restarts from its last committed x and x_prev.
        use crate::fault::{CrashFault, FaultPlan, LinkFault};
        let (a, b, x0) = problem(12, 12);
        let p = block_partition(a.nrows(), 6);
        let mut cfg = DistConfig::new(a.nrows(), 21);
        cfg.method = ResolvedMethod::Richardson2 {
            omega: 1.0,
            beta: 0.2,
        };
        let mut fp = FaultPlan::new(77);
        fp.crashes.push(CrashFault {
            rank: 2,
            at: 400.0,
            recover_after: Some(2_000.0),
        });
        fp.links.push(LinkFault {
            from: Some(1),
            to: None,
            drop: 0.2,
            duplicate: 0.1,
            reorder: 0.1,
            latency_factor: 2.0,
        });
        cfg.faults = Some(fp);
        let out = run_dist_async(&a, &b, &x0, &p, &cfg);
        assert!(out.converged, "residual {}", out.final_residual());
        let fs = out.faults.expect("fault stats recorded");
        assert_eq!(fs.crash_times.len(), 1);
    }
}
