//! Bounded-memory event queue with payload-slot recycling.
//!
//! The discrete-event engines order events by `(tick, order, slot)` in a
//! binary min-heap, with payloads parked out-of-line in a slot arena so the
//! heap entries stay `Copy`. The original arena only ever appended: every
//! scheduled event grew `payloads` by one slot for the lifetime of the run,
//! so long simulations (Figures 7–9 at thousands of ranks) held memory
//! proportional to *total events ever scheduled*. This queue recycles
//! consumed slots through a free list, bounding the arena by the maximum
//! number of *simultaneously pending* events instead.
//!
//! ## Determinism invariant
//!
//! Recycling must not change pop order. It cannot: `order` is assigned from
//! a strictly increasing counter, so no two heap entries ever tie on
//! `(tick, order)` and the `slot` component is never reached by a
//! comparison. Slot numbers may differ from the append-only behaviour, but
//! the sequence of `(tick, payload)` pairs popped is byte-identical — the
//! determinism regression tests pin this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic min-heap of `(tick, payload)` events; ties on `tick`
/// pop in insertion order.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    payloads: Vec<Option<T>>,
    free: Vec<usize>,
    order: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            order: 0,
        }
    }

    /// Schedules `payload` at `tick`. Events pushed at the same tick pop
    /// in push order.
    pub fn push(&mut self, tick: u64, payload: T) {
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.payloads[s].is_none(), "free list holds a live slot");
                self.payloads[s] = Some(payload);
                s
            }
            None => {
                self.payloads.push(Some(payload));
                self.payloads.len() - 1
            }
        };
        self.heap.push(Reverse((tick, self.order, slot)));
        self.order += 1;
    }

    /// Removes and returns the earliest event, releasing its slot.
    pub fn pop(&mut self) -> Option<(u64, T)> {
        let Reverse((tick, _, slot)) = self.heap.pop()?;
        let payload = self.payloads[slot].take().expect("event consumed twice");
        self.free.push(slot);
        Some((tick, payload))
    }

    /// Tick of the earliest pending event without consuming it. Lets an
    /// engine stop at a time horizon while leaving the over-horizon event
    /// (and its pooled payload) in the queue.
    pub fn peek_tick(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((tick, _, _))| *tick)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// High-water mark of the payload arena: the largest number of events
    /// that were ever pending at once (slots are recycled, never dropped).
    pub fn slot_count(&self) -> usize {
        self.payloads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::EventQueue;

    /// Reference behaviour: the original append-only arena.
    fn reference_order(events: &[(u64, u32)]) -> Vec<(u64, u32)> {
        let mut heap = std::collections::BinaryHeap::new();
        let mut payloads = Vec::new();
        for (order, &(tick, tag)) in events.iter().enumerate() {
            payloads.push(tag);
            heap.push(std::cmp::Reverse((tick, order as u64, payloads.len() - 1)));
        }
        let mut out = Vec::new();
        while let Some(std::cmp::Reverse((tick, _, slot))) = heap.pop() {
            out.push((tick, payloads[slot]));
        }
        out
    }

    #[test]
    fn pop_order_matches_append_only_reference() {
        // Adversarial ticks: duplicates, zeros, reverse runs.
        let events: Vec<(u64, u32)> = (0..200u32)
            .map(|i| {
                let tick = match i % 4 {
                    0 => 50,
                    1 => (200 - i) as u64,
                    2 => (i / 7) as u64,
                    _ => 0,
                };
                (tick, i)
            })
            .collect();
        let mut q = EventQueue::new();
        for &(tick, tag) in &events {
            q.push(tick, tag);
        }
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, reference_order(&events));
    }

    #[test]
    fn interleaved_push_pop_recycles_and_stays_ordered() {
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        // Sawtooth load: push 3, pop 2, forever advancing ticks — models a
        // simulator scheduling follow-up events from each handled event.
        for round in 0..1000u64 {
            let tick = round;
            for k in 0..3 {
                q.push(tick + k, round * 3 + k);
            }
            for _ in 0..2 {
                popped.push(q.pop().unwrap());
            }
        }
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert!(popped.windows(2).all(|w| w[0].0 <= w[1].0), "tick order");
        assert_eq!(popped.len(), 3000);
        // 1000 rounds × net +1 pending: high-water mark is ~1000 slots, not
        // the 3000 an append-only arena would hold.
        assert!(
            q.slot_count() <= 1003,
            "arena grew past the pending high-water mark: {}",
            q.slot_count()
        );
    }

    #[test]
    fn steady_state_uses_constant_slots() {
        let mut q = EventQueue::new();
        q.push(0, 0u64);
        q.push(0, 1u64);
        for i in 0..10_000u64 {
            let (tick, _) = q.pop().unwrap();
            q.push(tick + 1, i);
        }
        assert_eq!(q.slot_count(), 2, "1-for-1 replacement must not grow");
    }

    #[test]
    fn peek_tick_sees_the_next_pop_without_consuming() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_tick(), None);
        q.push(9, 'b');
        q.push(3, 'a');
        assert_eq!(q.peek_tick(), Some(3));
        assert_eq!(q.len(), 2, "peek must not consume");
        assert_eq!(q.pop(), Some((3, 'a')));
        assert_eq!(q.peek_tick(), Some(9));
    }

    #[test]
    fn same_tick_pops_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..50u64 {
            q.push(7, i);
        }
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, t)| t)).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
    }
}
