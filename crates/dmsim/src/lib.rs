//! # aj-dmsim
//!
//! A deterministic discrete-event simulator for shared-memory threads and
//! distributed-memory ranks running (a)synchronous Jacobi.
//!
//! ## Why a simulator
//!
//! The paper's shared-memory experiments use up to 272 hardware threads on a
//! Xeon Phi and its distributed experiments up to 4096 MPI ranks on Cori
//! with MPI-3 RMA (`MPI_Put` into passive-target windows). Neither is
//! available here (single-core host, no MPI), but the paper's convergence
//! claims depend only on *which version of neighbour data each relaxation
//! reads* and on *relative progress rates* — both of which a discrete-event
//! simulation reproduces exactly and deterministically:
//!
//! * each worker alternates compute phases (cost = per-nonzero work ×
//!   worker speed × stochastic jitter) and communication;
//! * in distributed mode, ghost values travel as one-sided puts that land
//!   in the target's window after a network latency — element-atomic, no
//!   tag matching, no receiver involvement, exactly the §VI RMA semantics;
//! * in shared-memory mode, a worker's committed values are immediately
//!   visible to everyone (cache-coherent shared arrays, §V);
//! * synchronous variants insert a barrier: every iteration lasts as long
//!   as its slowest worker plus the exchange.
//!
//! The jitter is the physical source of asynchrony's advantage: staggered
//! workers read *fresher* neighbour values, pushing asynchronous Jacobi
//! toward multiplicative (Gauss–Seidel-like) behaviour — the paper's §IV-B
//! mechanism. With jitter set to zero, asynchronous and synchronous runs
//! coincide step for step, a property the tests exploit.
//!
//! Modules: [`cost`] (cost model and jitter), [`monitor`] (residual
//! sampling), [`shmem_sim`] (simulated threads, Figures 2–6),
//! [`dist`] (simulated ranks, Figures 7–9), [`fault`] (deterministic
//! crash/stall/lossy-link injection for the distributed engine).

// Index-based loops over coupled arrays are the clearest form for these
// numeric kernels; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]

pub mod cost;
pub mod dist;
pub mod event;
pub mod fault;
pub mod monitor;
mod obsrec;
pub mod shmem_sim;
pub mod termination;

pub use aj_obs::ObsConfig;
pub use cost::{CostModel, Jitter};
pub use dist::{
    run_dist_async, run_dist_async_plan, run_dist_sync, run_dist_sync_plan, DistConfig, DistVariant,
};
pub use event::EventQueue;
pub use fault::{CrashFault, FaultPlan, FaultStats, LinkFault, StallFault};
pub use monitor::{ResidualMonitor, SimOutcome};
pub use shmem_sim::{run_shmem_async, run_shmem_sync, ShmemSimConfig};
pub use termination::{TerminationProtocol, TerminationStats};
