//! Deterministic fault injection for the distributed simulator.
//!
//! The paper's headline robustness claim (Theorem 1) is that for weakly
//! diagonally dominant systems the residual 1-norm never increases no
//! matter how stale the neighbour data a relaxation reads. §VI-B
//! demonstrates it for benign slowness (one rank delayed "until
//! convergence"); this module extends the simulated distributed engine to
//! the *faulty* regime a production solver actually sees:
//!
//! * **rank crashes** at a scheduled simulated time — permanent, or with
//!   recovery after a fixed outage during which the rank's memory is
//!   unavailable (incoming puts are lost; on recovery it resumes from its
//!   last committed local state, ghost values included);
//! * **transient stalls** — the rank performs no sweeps for a window but
//!   its window memory stays live, so puts keep landing (the paper's
//!   delayed-rank experiment as a time-bounded event);
//! * **lossy links** — per-link probabilities for put **drop**,
//!   **duplication** and **reordering**, plus a degraded-link latency
//!   multiplier. Reordering is modelled as an extra random delivery delay,
//!   which permutes arrival order relative to issue order on that link.
//!
//! Every fault is an ordinary event in the discrete-event queue, and all
//! randomness comes from one [`rand::rngs::StdRng`] seeded from
//! [`FaultPlan::seed`] and drawn in event-processing order, so a faulted
//! run is bit-for-bit reproducible — the determinism regression tests pin
//! golden fingerprints for faulted configurations exactly as they do for
//! clean ones.
//!
//! Why asynchronous Jacobi tolerates all of this: a dropped or reordered
//! put only changes *which previous committed iterate* a neighbour reads,
//! and Theorem 1 covers arbitrary staleness; a duplicated put rewrites a
//! window slot with the value it already holds (puts are idempotent
//! last-writer-wins writes); a permanently crashed rank freezes its
//! subdomain, and the live ranks converge to the solution of their
//! sub-system with Dirichlet data given by the frozen interface — the
//! *frozen-subdomain limit*, the natural reference solution for a run that
//! lost a rank (see DESIGN.md §10).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduled rank crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashFault {
    /// Rank to crash.
    pub rank: usize,
    /// Simulated time of the crash (same units as `DistConfig::max_time`).
    pub at: f64,
    /// Outage length after which the rank recovers, resuming from its last
    /// committed local state; `None` crashes it permanently.
    pub recover_after: Option<f64>,
}

/// A transient stall: the rank performs no sweeps in `[at, at + duration)`
/// but its window memory stays live (puts keep landing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallFault {
    /// Rank to stall.
    pub rank: usize,
    /// Simulated time the stall begins.
    pub at: f64,
    /// Stall length in simulated time.
    pub duration: f64,
}

/// Message-level faults on directed links. `from`/`to` of `None` are
/// wildcards, so a single rule can degrade every link at once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Sender rank the rule applies to (`None` = any).
    pub from: Option<usize>,
    /// Receiver rank the rule applies to (`None` = any).
    pub to: Option<usize>,
    /// Probability a put on this link is silently lost.
    pub drop: f64,
    /// Probability a put is delivered twice (second copy arrives later).
    pub duplicate: f64,
    /// Probability a put picks up an extra random delay, reordering it
    /// relative to later puts on the same link.
    pub reorder: f64,
    /// Multiplier on the base put latency (degraded link).
    pub latency_factor: f64,
}

impl LinkFault {
    /// A clean rule matching every link — a starting point for builders.
    pub fn everywhere() -> Self {
        LinkFault {
            from: None,
            to: None,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            latency_factor: 1.0,
        }
    }

    fn matches(&self, from: usize, to: usize) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Resolved fault parameters for one directed link (no matching rule =
/// clean link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Drop probability.
    pub drop: f64,
    /// Duplication probability.
    pub duplicate: f64,
    /// Reordering probability.
    pub reorder: f64,
    /// Latency multiplier.
    pub latency_factor: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            latency_factor: 1.0,
        }
    }
}

impl LinkParams {
    /// Whether this link behaves like a fault-free one.
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.latency_factor == 1.0
    }
}

/// A deterministic, seeded schedule of faults for one distributed run.
///
/// The plan is pure data: the engine turns crashes and stalls into queue
/// events at setup and consults [`FaultPlan::link_params`] on the put path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic fault decision.
    pub seed: u64,
    /// Scheduled crashes (at most one per rank is meaningful).
    pub crashes: Vec<CrashFault>,
    /// Scheduled transient stalls.
    pub stalls: Vec<StallFault>,
    /// Link rules; the **first matching rule wins** per directed link.
    pub links: Vec<LinkFault>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Whether the plan injects nothing (the engine then skips all fault
    /// bookkeeping, keeping clean runs byte-identical to pre-fault builds).
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.stalls.is_empty() && self.links.is_empty()
    }

    /// Adds a crash (builder style).
    pub fn with_crash(mut self, rank: usize, at: f64, recover_after: Option<f64>) -> Self {
        self.crashes.push(CrashFault {
            rank,
            at,
            recover_after,
        });
        self
    }

    /// Adds a stall (builder style).
    pub fn with_stall(mut self, rank: usize, at: f64, duration: f64) -> Self {
        self.stalls.push(StallFault { rank, at, duration });
        self
    }

    /// Adds a link rule (builder style).
    pub fn with_link(mut self, rule: LinkFault) -> Self {
        self.links.push(rule);
        self
    }

    /// Resolves the fault parameters for the directed link `from → to`
    /// (first matching rule wins; clean when nothing matches).
    pub fn link_params(&self, from: usize, to: usize) -> LinkParams {
        for rule in &self.links {
            if rule.matches(from, to) {
                return LinkParams {
                    drop: rule.drop,
                    duplicate: rule.duplicate,
                    reorder: rule.reorder,
                    latency_factor: rule.latency_factor,
                };
            }
        }
        LinkParams::default()
    }

    /// Largest rank index any fault references, for validation.
    pub fn max_rank(&self) -> Option<usize> {
        self.crashes
            .iter()
            .map(|c| c.rank)
            .chain(self.stalls.iter().map(|s| s.rank))
            .chain(self.links.iter().flat_map(|l| l.from.into_iter()))
            .chain(self.links.iter().flat_map(|l| l.to.into_iter()))
            .max()
    }
}

/// What the injected faults did during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// `(rank, simulated time)` of each crash that fired.
    pub crash_times: Vec<(usize, f64)>,
    /// `(rank, simulated time)` of each recovery.
    pub recovery_times: Vec<(usize, f64)>,
    /// Sweeps deferred because the rank was inside a stall window.
    pub stalled_sweeps: u64,
    /// Sweeps discarded because the rank was crashed when they fired.
    pub skipped_sweeps: u64,
    /// Puts lost because the target rank's window was crashed on arrival
    /// (link-level drops are counted in `CommVolume::drops` instead).
    pub dead_window_drops: u64,
    /// Per-rank liveness when the run ended (`false` = still crashed).
    pub alive: Vec<bool>,
}

impl FaultStats {
    /// Ranks still dead at the end of the run.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.alive
            .iter()
            .enumerate()
            .filter_map(|(r, &a)| (!a).then_some(r))
            .collect()
    }
}

/// Runtime fault state threaded through the event loop: the seeded RNG for
/// probabilistic link decisions plus the accounting that ends up in
/// [`FaultStats`].
#[derive(Debug)]
pub struct FaultState {
    rng: StdRng,
    /// Accounting filled in by the engine.
    pub stats: FaultStats,
}

impl FaultState {
    /// Builds the runtime state for `nparts` ranks.
    ///
    /// # Panics
    /// Panics when the plan references a rank `>= nparts`.
    pub fn new(plan: &FaultPlan, nparts: usize) -> Self {
        if let Some(max) = plan.max_rank() {
            assert!(
                max < nparts,
                "fault plan references rank {max} but the run has {nparts} ranks"
            );
        }
        FaultState {
            rng: StdRng::seed_from_u64(plan.seed ^ 0xfa17_fa17_fa17_fa17),
            stats: FaultStats {
                alive: vec![true; nparts],
                ..Default::default()
            },
        }
    }

    /// One uniform draw in `[0, 1)`; the engine calls this in
    /// event-processing order, which is what makes faulted runs
    /// deterministic.
    pub fn draw(&mut self) -> f64 {
        self.rng.random_range(0.0..1.0)
    }

    /// Extra delivery delay for a reordered or duplicated put: uniform in
    /// `(0, 4 × base_latency]`, long enough to overtake several subsequent
    /// puts on the same link but bounded so reordered data stays merely
    /// stale, not ancient.
    pub fn extra_delay(&mut self, base_latency: f64) -> f64 {
        (1.0 - self.draw()) * 4.0 * base_latency.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_rules_first_match_wins() {
        let plan = FaultPlan::new(1)
            .with_link(LinkFault {
                from: Some(0),
                to: Some(1),
                drop: 0.5,
                ..LinkFault::everywhere()
            })
            .with_link(LinkFault {
                drop: 0.1,
                latency_factor: 3.0,
                ..LinkFault::everywhere()
            });
        assert_eq!(plan.link_params(0, 1).drop, 0.5);
        assert_eq!(plan.link_params(0, 1).latency_factor, 1.0);
        assert_eq!(plan.link_params(2, 3).drop, 0.1);
        assert_eq!(plan.link_params(2, 3).latency_factor, 3.0);
        assert!(!plan.link_params(0, 1).is_clean());
        assert!(FaultPlan::new(9).link_params(4, 5).is_clean());
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new(7).is_empty());
        assert!(!FaultPlan::new(7).with_stall(0, 10.0, 5.0).is_empty());
    }

    #[test]
    fn max_rank_spans_all_fault_kinds() {
        let plan = FaultPlan::new(0)
            .with_crash(3, 1.0, None)
            .with_stall(5, 1.0, 1.0)
            .with_link(LinkFault {
                from: Some(7),
                to: Some(2),
                ..LinkFault::everywhere()
            });
        assert_eq!(plan.max_rank(), Some(7));
        assert_eq!(FaultPlan::new(0).max_rank(), None);
    }

    #[test]
    #[should_panic(expected = "references rank 9")]
    fn state_rejects_out_of_range_ranks() {
        let plan = FaultPlan::new(0).with_crash(9, 1.0, None);
        FaultState::new(&plan, 4);
    }

    #[test]
    fn draws_are_deterministic_in_the_seed() {
        let plan = FaultPlan::new(42).with_stall(0, 1.0, 1.0);
        let mut a = FaultState::new(&plan, 2);
        let mut b = FaultState::new(&plan, 2);
        for _ in 0..10 {
            assert_eq!(a.draw(), b.draw());
        }
        let mut c = FaultState::new(&FaultPlan::new(43), 2);
        assert_ne!(a.draw(), c.draw());
    }

    #[test]
    fn extra_delay_is_positive_and_bounded() {
        let plan = FaultPlan::new(3);
        let mut s = FaultState::new(&plan, 1);
        for _ in 0..100 {
            let d = s.extra_delay(50.0);
            assert!(d > 0.0 && d <= 200.0, "delay {d}");
        }
    }

    #[test]
    fn dead_ranks_reports_the_unrecovered() {
        let stats = FaultStats {
            alive: vec![true, false, true, false],
            ..Default::default()
        };
        assert_eq!(stats.dead_ranks(), vec![1, 3]);
    }
}
