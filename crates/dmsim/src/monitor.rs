//! Residual monitoring for simulated runs.
//!
//! The figures need two x-axes: *relaxations / n* (Figures 6, 7, 9) and
//! *wall-clock (simulated) time* (Figures 4, 5, 8). The monitor samples the
//! true global residual whenever the run crosses a relaxation-count
//! checkpoint, recording both coordinates.

use aj_linalg::vecops::{self, Norm};
use aj_linalg::CsrMatrix;

/// One residual sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulated time in ticks.
    pub time: f64,
    /// Total relaxations performed so far, divided by `n`.
    pub relaxations_per_n: f64,
    /// Relative residual `‖b − Ax‖ / ‖b‖`.
    pub residual: f64,
}

/// Outcome of a simulated run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Residual samples in time order (first entry is the initial state).
    pub samples: Vec<Sample>,
    /// Final iterate.
    pub x: Vec<f64>,
    /// Simulated finish time (ticks).
    pub time: f64,
    /// Total row relaxations.
    pub relaxations: u64,
    /// Iterations per worker.
    pub worker_iterations: Vec<u64>,
    /// True on tolerance-met termination.
    pub converged: bool,
    /// Termination-detection statistics, when the distributed protocol ran
    /// (see [`crate::termination`]); `None` for oracle-monitored runs.
    pub termination: Option<crate::termination::TerminationStats>,
    /// Communication accounting (distributed runs; zeros in shared memory).
    pub comm: CommVolume,
    /// Fault-injection accounting, when a non-empty
    /// [`crate::fault::FaultPlan`] was configured; `None` for clean runs.
    pub faults: Option<crate::fault::FaultStats>,
    /// Observability snapshot (staleness histograms, timelines, comm
    /// counters), when the config's [`aj_obs::ObsConfig`] enabled
    /// recording; `None` for un-instrumented runs.
    pub obs: Option<aj_obs::Snapshot>,
    /// Closed-loop controller summary (decision timeline, final
    /// parameters), when a controller was configured; `None` for
    /// uncontrolled runs — the default, which is bit-identical to the
    /// pre-controller engines.
    pub control: Option<aj_control::ControlStats>,
}

/// Message/volume counters for distributed runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommVolume {
    /// One-sided puts issued.
    pub puts: u64,
    /// Total values carried by those puts.
    pub values: u64,
    /// Puts lost to link faults (never delivered).
    pub drops: u64,
    /// Extra deliveries injected by link duplication faults.
    pub duplicates: u64,
    /// Puts delivered out of issue order by link reordering faults.
    pub reorders: u64,
}

impl SimOutcome {
    /// First simulated time at which the sampled residual fell below `tol`.
    pub fn time_to_tolerance(&self, tol: f64) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.residual < tol)
            .map(|s| s.time)
    }

    /// First relaxations/n at which the sampled residual fell below `tol`.
    pub fn relaxations_to_tolerance(&self, tol: f64) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.residual < tol)
            .map(|s| s.relaxations_per_n)
    }

    /// Final sampled residual.
    pub fn final_residual(&self) -> f64 {
        self.samples.last().map_or(f64::NAN, |s| s.residual)
    }

    /// Simulated time at which the residual first dropped below
    /// `factor × initial residual`, linearly interpolated on
    /// `log10(residual)` as the paper does for its Figure 8 wall-clock
    /// numbers. `None` when the run never got there.
    pub fn time_to_reduction(&self, factor: f64) -> Option<f64> {
        let target = self.samples.first()?.residual * factor;
        if target <= 0.0 {
            return None;
        }
        let lt = target.log10();
        let mut prev = self.samples.first()?;
        if prev.residual <= target {
            return Some(prev.time);
        }
        for s in &self.samples[1..] {
            if s.residual <= target {
                // An exact-zero sample has no log10; its own time is the
                // best crossing estimate (same guard as
                // `aj_core::interp::crossing_log10`). Without it the -inf
                // weight collapses to -0.0 and the *previous* sample's time
                // is returned.
                if s.residual <= 0.0 {
                    return Some(s.time);
                }
                let (l0, l1) = (prev.residual.log10(), s.residual.log10());
                if (l1 - l0).abs() < 1e-300 {
                    return Some(s.time);
                }
                let w = (lt - l0) / (l1 - l0);
                return Some(prev.time + w * (s.time - prev.time));
            }
            prev = s;
        }
        None
    }
}

/// Samples the residual every `sample_every` relaxations.
#[derive(Debug)]
pub struct ResidualMonitor<'a> {
    a: &'a CsrMatrix,
    b: &'a [f64],
    nb: f64,
    norm: Norm,
    tol: f64,
    sample_every: u64,
    next_checkpoint: u64,
    samples: Vec<Sample>,
    converged: bool,
}

impl<'a> ResidualMonitor<'a> {
    /// Creates a monitor; `sample_every` is in units of row relaxations
    /// (a value around `n` samples once per "global iteration equivalent").
    pub fn new(a: &'a CsrMatrix, b: &'a [f64], norm: Norm, tol: f64, sample_every: u64) -> Self {
        let nb = vecops::norm(b, norm).max(f64::MIN_POSITIVE);
        ResidualMonitor {
            a,
            b,
            nb,
            norm,
            tol,
            sample_every: sample_every.max(1),
            next_checkpoint: 0,
            samples: Vec::new(),
            converged: false,
        }
    }

    /// Whether the tolerance has been observed.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Samples collected so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consumes the monitor, returning its samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }

    /// Called by simulators after relaxations were performed; takes a sample
    /// when a checkpoint is crossed. Returns `true` when the tolerance has
    /// been met (the caller decides whether to stop).
    ///
    /// The residual is evaluated with the fused [`CsrMatrix::residual_norm`]
    /// kernel, so a checkpoint allocates nothing.
    pub fn observe(&mut self, time: f64, total_relaxations: u64, x: &[f64]) -> bool {
        if total_relaxations >= self.next_checkpoint {
            let res = self.a.residual_norm(x, self.b, self.norm) / self.nb;
            self.samples.push(Sample {
                time,
                relaxations_per_n: total_relaxations as f64 / self.a.nrows() as f64,
                residual: res,
            });
            // Snap to the next multiple of `sample_every` so a burst of
            // relaxations (one big sweep crossing a checkpoint) cannot
            // shift the sampling grid; sync and async runs of the same
            // config then sample on the same relaxation grid.
            self.next_checkpoint = (total_relaxations / self.sample_every + 1) * self.sample_every;
            if res < self.tol {
                self.converged = true;
            }
        }
        self.converged
    }

    /// Final sample at termination time. Skipped when `observe` already
    /// sampled this exact state (same time and relaxation count) — the
    /// residual is a pure function of `x`, so sampling again would only
    /// duplicate the last entry.
    pub fn finalize(&mut self, time: f64, total_relaxations: u64, x: &[f64]) {
        let relaxations_per_n = total_relaxations as f64 / self.a.nrows() as f64;
        if let Some(last) = self.samples.last() {
            if last.time == time && last.relaxations_per_n == relaxations_per_n {
                return;
            }
        }
        let res = self.a.residual_norm(x, self.b, self.norm) / self.nb;
        self.samples.push(Sample {
            time,
            relaxations_per_n,
            residual: res,
        });
        if res < self.tol {
            self.converged = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_matrices::fd;

    #[test]
    fn monitor_samples_at_checkpoints() {
        let a = fd::laplacian_1d(4);
        let b = vec![1.0; 4];
        let x = vec![0.0; 4];
        let mut m = ResidualMonitor::new(&a, &b, Norm::L1, 1e-10, 8);
        assert!(!m.observe(0.0, 0, &x)); // initial sample at checkpoint 0
        assert_eq!(m.samples().len(), 1);
        assert!(!m.observe(1.0, 4, &x)); // below next checkpoint: no sample
        assert_eq!(m.samples().len(), 1);
        assert!(!m.observe(2.0, 8, &x));
        assert_eq!(m.samples().len(), 2);
    }

    #[test]
    fn finalize_skips_duplicate_of_last_observed_sample() {
        let a = fd::laplacian_1d(4);
        let b = vec![1.0; 4];
        let x = vec![0.0; 4];
        let mut m = ResidualMonitor::new(&a, &b, Norm::L1, 1e-10, 4);
        m.observe(0.0, 0, &x);
        m.observe(2.5, 8, &x); // checkpoint sample at (t=2.5, 8 relaxations)
        assert_eq!(m.samples().len(), 2);
        // Terminating at the exact state just sampled adds nothing…
        m.finalize(2.5, 8, &x);
        assert_eq!(m.samples().len(), 2, "duplicate final sample");
        // …but terminating later (same time, more relaxations — or vice
        // versa) still records the true final state.
        m.finalize(2.5, 9, &x);
        assert_eq!(m.samples().len(), 3);
        let (s2, s3) = (m.samples()[1], m.samples()[2]);
        assert_eq!(s2.residual, s3.residual);
        assert!(s3.relaxations_per_n > s2.relaxations_per_n);
    }

    #[test]
    fn monitor_detects_convergence() {
        let a = fd::laplacian_1d(3);
        let b = a.spmv(&[1.0, 1.0, 1.0]);
        let mut m = ResidualMonitor::new(&a, &b, Norm::L1, 1e-8, 1);
        assert!(m.observe(0.0, 0, &[1.0, 1.0, 1.0]));
        assert!(m.converged());
    }

    #[test]
    fn time_to_reduction_interpolates_logarithmically() {
        let outcome = SimOutcome {
            samples: vec![
                Sample {
                    time: 0.0,
                    relaxations_per_n: 0.0,
                    residual: 1.0,
                },
                Sample {
                    time: 10.0,
                    relaxations_per_n: 1.0,
                    residual: 1e-2,
                },
            ],
            x: vec![],
            time: 10.0,
            relaxations: 0,
            worker_iterations: vec![],
            converged: true,
            termination: None,
            comm: CommVolume::default(),
            faults: None,
            obs: None,
            control: None,
        };
        // 10× reduction on a log-linear path from 1 to 1e-2 over t∈[0,10]
        // happens exactly at t = 5.
        let t = outcome.time_to_reduction(0.1).unwrap();
        assert!((t - 5.0).abs() < 1e-12, "t = {t}");
        // Unreachable factor.
        assert!(outcome.time_to_reduction(1e-6).is_none());
    }

    #[test]
    fn time_to_reduction_handles_exact_zero_samples() {
        // A sample whose residual is exactly 0.0 has log10 = -inf; the
        // crossing must be reported at that sample's own time, not the
        // previous sample's.
        let outcome = SimOutcome {
            samples: vec![
                Sample {
                    time: 0.0,
                    relaxations_per_n: 0.0,
                    residual: 1.0,
                },
                Sample {
                    time: 4.0,
                    relaxations_per_n: 1.0,
                    residual: 0.5,
                },
                Sample {
                    time: 10.0,
                    relaxations_per_n: 2.0,
                    residual: 0.0,
                },
            ],
            x: vec![],
            time: 10.0,
            relaxations: 0,
            worker_iterations: vec![],
            converged: true,
            termination: None,
            comm: CommVolume::default(),
            faults: None,
            obs: None,
            control: None,
        };
        assert_eq!(outcome.time_to_reduction(0.1), Some(10.0));
    }

    #[test]
    fn observe_snaps_checkpoints_to_the_sample_grid() {
        // A burst crossing a checkpoint must not shift the grid: after
        // observing at 13 relaxations (grid 8), the next checkpoint is 16,
        // not 13 + 8 = 21.
        let a = fd::laplacian_1d(4);
        let b = vec![1.0; 4];
        let x = vec![0.0; 4];
        let mut m = ResidualMonitor::new(&a, &b, Norm::L1, 1e-10, 8);
        m.observe(0.0, 0, &x);
        m.observe(1.0, 13, &x); // burst past checkpoint 8
        assert_eq!(m.samples().len(), 2);
        m.observe(2.0, 16, &x); // grid-aligned checkpoint still fires
        assert_eq!(m.samples().len(), 3, "grid must stay on multiples of 8");
        m.observe(3.0, 17, &x); // off-grid, below next checkpoint 24
        assert_eq!(m.samples().len(), 3);
    }

    #[test]
    fn outcome_tolerance_queries() {
        let outcome = SimOutcome {
            samples: vec![
                Sample {
                    time: 0.0,
                    relaxations_per_n: 0.0,
                    residual: 1.0,
                },
                Sample {
                    time: 3.0,
                    relaxations_per_n: 2.0,
                    residual: 1e-4,
                },
            ],
            x: vec![],
            time: 3.0,
            relaxations: 8,
            worker_iterations: vec![4, 4],
            converged: true,
            termination: None,
            comm: CommVolume::default(),
            faults: None,
            obs: None,
            control: None,
        };
        assert_eq!(outcome.time_to_tolerance(1e-3), Some(3.0));
        assert_eq!(outcome.relaxations_to_tolerance(1e-3), Some(2.0));
        assert_eq!(outcome.time_to_tolerance(1e-9), None);
        assert_eq!(outcome.final_residual(), 1e-4);
    }
}
