//! Cost model: how long compute and communication take in simulated ticks.
//!
//! All durations are abstract ticks (think nanoseconds). Absolute values are
//! irrelevant to the paper's claims; *ratios* (compute vs. barrier vs.
//! network latency) set where the Figure 5/8 crossovers fall, and the
//! defaults are tuned to the communication-dominated regime the paper
//! deliberately chose ("this small matrix was chosen such that most of the
//! time was spent writing/reading from memory rather than computing").

use rand::rngs::StdRng;

/// Sub-tick resolution: engines convert f64 costs to integer event ticks by
/// multiplying with this scale, so that sub-tick cost differences (small
/// jitter on small windows) still order events instead of colliding on the
/// same tick. All reported times are divided back by this factor.
pub const TICK_SCALE: f64 = 1024.0;
use rand::{Rng, SeedableRng};

/// Multiplicative noise on compute times.
///
/// Two components, both log-normal-ish and deterministic in the seed:
/// a *static* per-worker speed factor (hardware variation between cores /
/// NUMA placement) and a *dynamic* per-iteration factor (cache misses, OS
/// noise). The dynamic part is what staggers equally-loaded workers and
/// gives asynchronous runs their multiplicative character.
#[derive(Debug, Clone, Copy)]
pub struct Jitter {
    /// Standard deviation of `ln(static per-worker factor)`.
    pub static_sigma: f64,
    /// Standard deviation of `ln(per-iteration factor)`.
    pub dynamic_sigma: f64,
    /// Seed for all jitter streams.
    pub seed: u64,
}

impl Jitter {
    /// No noise at all: async degenerates to lock-step.
    pub fn none() -> Self {
        Jitter {
            static_sigma: 0.0,
            dynamic_sigma: 0.0,
            seed: 0,
        }
    }

    /// The default used by the figure benches: mild static spread plus
    /// per-iteration noise of a few percent, the scale of cache/OS noise on
    /// dedicated HPC cores.
    pub fn default_noise(seed: u64) -> Self {
        Jitter {
            static_sigma: 0.02,
            dynamic_sigma: 0.05,
            seed,
        }
    }
}

/// Compute/communication cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Ticks per matrix nonzero processed in a relaxation sweep.
    pub per_nonzero: f64,
    /// Fixed ticks per local iteration (loop overhead, residual check).
    pub per_iteration: f64,
    /// Ticks per value read from / written to shared memory or put into a
    /// remote window (bandwidth term).
    pub per_value_comm: f64,
    /// One-sided put latency in ticks (distributed mode only).
    pub put_latency: f64,
    /// Barrier cost as a function of worker count: `barrier_base +
    /// barrier_per_worker · workers + barrier_log · ln(workers)` ticks.
    pub barrier_base: f64,
    /// Linear barrier scaling (contention).
    pub barrier_per_worker: f64,
    /// Logarithmic barrier scaling (tree reduction depth).
    pub barrier_log: f64,
    /// Stochastic noise.
    pub jitter: Jitter,
    /// Physical cores backing the workers. When more workers than cores
    /// run (the paper's 272 threads on 68 KNL cores), compute slows by
    /// `(workers/cores)^0.5` (hyperthreads hide some latency) and barriers
    /// by `(workers/cores)^2` (contention compounds at the rendezvous).
    /// Use `usize::MAX` when every worker has its own core (distributed
    /// ranks).
    pub physical_cores: usize,
}

impl CostModel {
    /// Shared-memory defaults (§VII-B regime: memory-bound small matrix).
    pub fn shared_memory(seed: u64) -> Self {
        CostModel {
            per_nonzero: 1.0,
            per_iteration: 40.0,
            per_value_comm: 0.5,
            put_latency: 0.0,
            barrier_base: 5.0,
            barrier_per_worker: 0.1,
            barrier_log: 2.0,
            jitter: Jitter::default_noise(seed),
            physical_cores: 68,
        }
    }

    /// Distributed-memory defaults (§VII-C regime: multi-node network).
    ///
    /// The latency-to-iteration ratio is calibrated so that a rank's ghost
    /// data lags by roughly one local iteration, matching the regime in
    /// which the paper observed asynchronous Jacobi converging in *fewer*
    /// relaxations than synchronous (Figure 7). Much larger latencies push
    /// the simulation into the stale-ghost regime where ranks spin on old
    /// data — the behaviour Bethune et al. reported at their largest core
    /// counts — which the `ablation_latency` bench explores deliberately.
    pub fn distributed(seed: u64) -> Self {
        CostModel {
            per_nonzero: 1.0,
            per_iteration: 300.0,
            per_value_comm: 1.0,
            put_latency: 50.0,
            barrier_base: 1_000.0,
            barrier_per_worker: 0.0,
            barrier_log: 1_200.0,
            jitter: Jitter::default_noise(seed),
            physical_cores: usize::MAX,
        }
    }

    /// Oversubscription slowdown on compute for `workers` workers.
    pub fn compute_oversub(&self, workers: usize) -> f64 {
        if workers <= self.physical_cores {
            1.0
        } else {
            (workers as f64 / self.physical_cores as f64).sqrt()
        }
    }

    /// Oversubscription slowdown on barriers.
    pub fn barrier_oversub(&self, workers: usize) -> f64 {
        if workers <= self.physical_cores {
            1.0
        } else {
            let r = workers as f64 / self.physical_cores as f64;
            r * r
        }
    }

    /// Barrier duration for `workers` participants (includes
    /// oversubscription).
    pub fn barrier_cost(&self, workers: usize) -> f64 {
        let w = workers as f64;
        (self.barrier_base + self.barrier_per_worker * w + self.barrier_log * w.max(1.0).ln())
            * self.barrier_oversub(workers)
    }

    /// Compute cost of one local sweep over `nnz` nonzeros, before jitter.
    pub fn sweep_cost(&self, nnz: usize) -> f64 {
        self.per_iteration + self.per_nonzero * nnz as f64
    }
}

/// Per-worker jitter stream: a static factor drawn once and a fresh dynamic
/// factor per iteration.
#[derive(Debug, Clone)]
pub struct WorkerJitter {
    static_factor: f64,
    dynamic_sigma: f64,
    rng: StdRng,
}

impl WorkerJitter {
    /// Builds the stream for `worker` under `jitter`.
    pub fn new(jitter: &Jitter, worker: usize) -> Self {
        let mut seeder =
            StdRng::seed_from_u64(jitter.seed ^ (worker as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let static_factor = lognormal(&mut seeder, jitter.static_sigma);
        WorkerJitter {
            static_factor,
            dynamic_sigma: jitter.dynamic_sigma,
            rng: seeder,
        }
    }

    /// This worker's static speed factor (1.0 when noise is off).
    pub fn static_factor(&self) -> f64 {
        self.static_factor
    }

    /// The multiplicative factor for the next iteration.
    pub fn next_factor(&mut self) -> f64 {
        self.static_factor * lognormal(&mut self.rng, self.dynamic_sigma)
    }
}

/// A log-normal sample with `ln`-standard-deviation `sigma`, mean-of-log 0.
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    // Box–Muller from two uniforms.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jitter_is_exactly_one() {
        let mut wj = WorkerJitter::new(&Jitter::none(), 3);
        assert_eq!(wj.static_factor(), 1.0);
        for _ in 0..10 {
            assert_eq!(wj.next_factor(), 1.0);
        }
    }

    #[test]
    fn jitter_is_deterministic_per_worker() {
        let j = Jitter::default_noise(5);
        let mut a = WorkerJitter::new(&j, 0);
        let mut b = WorkerJitter::new(&j, 0);
        for _ in 0..5 {
            assert_eq!(a.next_factor(), b.next_factor());
        }
        let mut c = WorkerJitter::new(&j, 1);
        assert_ne!(a.next_factor(), c.next_factor());
    }

    #[test]
    fn jitter_factors_are_positive_and_near_one() {
        let j = Jitter {
            static_sigma: 0.1,
            dynamic_sigma: 0.2,
            seed: 9,
        };
        let mut wj = WorkerJitter::new(&j, 7);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f = wj.next_factor();
            assert!(f > 0.0);
            sum += f;
        }
        let mean = sum / 1000.0;
        assert!((0.8..1.3).contains(&mean), "mean factor {mean}");
    }

    #[test]
    fn barrier_cost_grows_with_workers() {
        let m = CostModel::shared_memory(1);
        assert!(m.barrier_cost(272) > m.barrier_cost(68));
        assert!(m.barrier_cost(2) > 0.0);
    }

    #[test]
    fn sweep_cost_is_affine_in_nnz() {
        let m = CostModel::distributed(1);
        assert_eq!(m.sweep_cost(0), m.per_iteration);
        assert_eq!(m.sweep_cost(100) - m.sweep_cost(0), 100.0 * m.per_nonzero);
    }
}
