//! Simulated shared-memory threads (§V semantics, event-driven).
//!
//! Threads own contiguous row blocks of a global solution array. An
//! iteration snapshots the shared array when it *starts*, computes new
//! values for the owned rows, and commits them when it *ends* (start time +
//! compute cost × jitter + injected delay). Commits are immediately visible
//! to every thread — the cache-coherent shared-array model of the paper's
//! OpenMP implementation. The synchronous variant runs lock-step
//! iterations whose duration is the slowest thread plus a barrier.

use crate::cost::{CostModel, WorkerJitter, TICK_SCALE};
use crate::monitor::{ResidualMonitor, SimOutcome};
use crate::obsrec::{decision_kind, EngineObs};
use aj_control::{ControlSpec, Controller, Observation};
use aj_linalg::method::{self, ResolvedMethod};
use aj_linalg::vecops::Norm;
use aj_linalg::{CsrMatrix, StorageFormat, SweepKernel};
use aj_obs::{ObsConfig, SpanKind};
use aj_trace::{RelaxationEvent, Trace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Extra ticks added to every iteration of one worker (the paper's
/// sleep-injection experiment).
#[derive(Debug, Clone, Copy)]
pub struct SimDelay {
    /// Worker to slow down.
    pub worker: usize,
    /// Extra ticks per iteration.
    pub extra_ticks: f64,
}

/// When to stop a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Stop when the sampled relative residual drops below the tolerance.
    Tolerance,
    /// Stop when every worker has completed this many iterations (fast
    /// workers keep relaxing while they wait, as in §V/§VI).
    FixedIterations(u64),
}

/// Configuration for the simulated shared-memory solvers.
#[derive(Debug, Clone)]
pub struct ShmemSimConfig {
    /// Number of simulated threads (each owns a contiguous row block).
    pub num_threads: usize,
    /// Relative-residual tolerance.
    pub tol: f64,
    /// Norm for the tolerance test (paper: 1-norm).
    pub norm: Norm,
    /// Hard cap on simulated time (ticks).
    pub max_time: f64,
    /// Hard cap on any worker's iteration count.
    pub max_iterations: u64,
    /// Cost model.
    pub cost: CostModel,
    /// Optional slow worker.
    pub delay: Option<SimDelay>,
    /// Residual sampling cadence in relaxations (≈ `n` samples once per
    /// global-iteration equivalent).
    pub sample_every: u64,
    /// Termination rule.
    pub stop: StopRule,
    /// Relaxation weight ω (1.0 = plain Jacobi). Applies to the default
    /// [`ResolvedMethod::Jacobi`]; the Richardson methods carry their own ω.
    pub omega: f64,
    /// Relaxation method executed per sweep (default plain Jacobi; with
    /// the default the engine is bit-identical to its pre-method form).
    pub method: ResolvedMethod,
    /// Sweep storage format for the asynchronous block engine (default
    /// [`StorageFormat::Csr`], bit-identical to the classic loops). The
    /// synchronous and row-granular engines always run CSR; the driver
    /// rejects other selectors before they reach them.
    pub format: StorageFormat,
    /// Observability recording (off by default; the asynchronous block
    /// engine records per-worker staleness and sweep-period histograms and
    /// timelines into [`SimOutcome::obs`]).
    pub obs: ObsConfig,
    /// Online controller closing the loop from observed staleness back into
    /// the running parameters (asynchronous block engine only). `None` — the
    /// default — keeps the engine bit-identical to its uncontrolled form.
    pub control: Option<ControlSpec>,
}

impl ShmemSimConfig {
    /// Sensible defaults for an `n`-row problem with `threads` workers.
    pub fn new(threads: usize, n: usize, seed: u64) -> Self {
        ShmemSimConfig {
            num_threads: threads,
            tol: 1e-3,
            norm: Norm::L1,
            max_time: 1e12,
            max_iterations: 1_000_000,
            cost: CostModel::shared_memory(seed),
            delay: None,
            sample_every: n as u64,
            stop: StopRule::Tolerance,
            omega: 1.0,
            method: ResolvedMethod::Jacobi,
            format: StorageFormat::Csr,
            obs: ObsConfig::off(),
            control: None,
        }
    }
}

fn block_ranges(n: usize, t: usize) -> Vec<std::ops::Range<usize>> {
    aj_linalg::util::even_ranges(n, t)
}

/// Runs the **asynchronous** simulated shared-memory solver.
///
/// Each worker repeatedly sweeps its block; a sweep occupies a compute
/// window (cost × jitter) and its relaxation *takes effect* at the end of
/// the window, using the neighbour values current at that instant —
/// "whatever information is available", read just in time. This matches
/// the paper's model assumption that `s_ij(k)` maps to the most up-to-date
/// information, and is what lets staggered workers behave multiplicatively
/// (the §IV-B mechanism behind asynchronous Jacobi's per-relaxation
/// advantage). Workers that land on the same tick commit in worker order,
/// each seeing the previous one's values — a deterministic convention for
/// the physically ill-defined simultaneous case.
///
/// # Panics
/// Panics if `num_threads` is 0 or exceeds the number of rows.
pub fn run_shmem_async(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    config: &ShmemSimConfig,
) -> SimOutcome {
    let n = a.nrows();
    let t = config.num_threads;
    assert!(t > 0 && t <= n, "need 1 ≤ threads ≤ rows");
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    let diag_inv: Vec<f64> = a
        .diagonal()
        .iter()
        .map(|d| {
            assert!(*d != 0.0, "zero diagonal");
            1.0 / d
        })
        .collect();
    let ranges = block_ranges(n, t);
    // One sweep kernel per worker block in the configured storage format.
    // The cost model charges the *stored* nonzeros the kernel streams per
    // sweep — identical to the row-nnz sum for CSR (and the RCM-blocked
    // layout), padded for SELL-C-σ whose lanes compute the padding too.
    let mut kernels: Vec<SweepKernel> = ranges
        .iter()
        .map(|r| {
            SweepKernel::build(a, r.clone(), config.format)
                .expect("storage format rejected for this matrix")
        })
        .collect();
    let work_nnz: Vec<usize> = kernels.iter().map(|k| k.work_nnz(a)).collect();

    let mut x = x0.to_vec();
    let mut jitters: Vec<WorkerJitter> = (0..t)
        .map(|w| WorkerJitter::new(&config.cost.jitter, w))
        .collect();
    let mut iterations = vec![0u64; t];
    let mut relaxations = 0u64;
    let mut monitor = ResidualMonitor::new(a, b, config.norm, config.tol, config.sample_every);
    monitor.observe(0.0, 0, &x);

    // Observability shards, built only when recording is on so the off
    // path allocates nothing and checks one Option per sweep. A worker's
    // neighbours are the owners of off-block columns its rows touch; the
    // age of a neighbour's data at use is `commit tick − neighbour's last
    // commit tick` (values are visible the instant they commit).
    let mut obs = EngineObs::new(&config.obs, t);
    // Controller state. Commit-tick tracking is shared with observability:
    // either consumer being on turns it on; with both off the loop body is
    // unchanged from the uncontrolled engine.
    let mut ctrl = config
        .control
        .as_ref()
        .map(|spec| Controller::new(spec.cfg, config.method, config.omega, spec.interval));
    let track_commits = obs.is_some() || ctrl.is_some();
    let neighbors: Vec<Vec<usize>> = if obs.is_some() {
        let mut owner = vec![0usize; n];
        for (w, r) in ranges.iter().enumerate() {
            for i in r.clone() {
                owner[i] = w;
            }
        }
        ranges
            .iter()
            .enumerate()
            .map(|(w, r)| {
                let mut set = std::collections::BTreeSet::new();
                for i in r.clone() {
                    for (j, _) in a.row_iter(i) {
                        if owner[j] != w {
                            set.insert(owner[j]);
                        }
                    }
                }
                set.into_iter().collect()
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut last_commit = vec![0u64; if track_commits { t } else { 0 }];
    // Last observed commit-to-commit gap per worker; the fastest worker's
    // gap is the controller's staleness unit (ages are measured in "fastest
    // sweep periods", the paper's delay scale).
    let mut period = vec![0u64; if ctrl.is_some() { t } else { 0 }];

    // Priority queue of (commit tick, insertion order, worker); the order
    // component keeps simultaneous commits deterministic.
    let mut queue: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut order = 0u64;
    let draw_cost = |w: usize, jitters: &mut [WorkerJitter]| {
        let mut cost = config.cost.sweep_cost(work_nnz[w]) * jitters[w].next_factor();
        if let Some(d) = config.delay {
            if d.worker == w {
                cost += d.extra_ticks;
            }
        }
        (cost * TICK_SCALE).max(1.0) as u64
    };
    for w in 0..t {
        let c = draw_cost(w, &mut jitters);
        queue.push(Reverse((c, order, w)));
        order += 1;
    }

    let mut now = 0.0f64;
    let mut done = false;
    // Two-phase scratch, hoisted out of the event loop and reused by every
    // sweep: the engine allocates nothing per event in steady state (the
    // randomized-selection arm is the one exception — its weighted draw
    // buffers are per-sweep).
    let widest = ranges.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut values: Vec<f64> = Vec::with_capacity(widest);
    let mut res: Vec<f64> = vec![0.0; widest];
    let mut weights: Vec<f64> = Vec::new();
    // Momentum state: per-row value before the row's last relaxation, only
    // materialized when the method reads it.
    let mut x_prev = if config.method.needs_previous_iterate() {
        x0.to_vec()
    } else {
        Vec::new()
    };
    // The method/ω actually executed; controller decisions retarget these
    // mid-run. Without a controller they never change, so every sweep reads
    // exactly `config.method`/`config.omega` as before.
    let mut cur_method = config.method;
    let mut cur_omega = config.omega;
    while let Some(Reverse((tick, _, w))) = queue.pop() {
        if done {
            break;
        }
        now = tick as f64 / TICK_SCALE;
        if now > config.max_time {
            break;
        }
        // The sweep that finishes now takes effect using the freshest
        // available values (just-in-time reads). Two-phase within the
        // block: all residuals from the same state, then all corrections.
        let range = ranges[w].clone();
        let swept = match cur_method {
            ResolvedMethod::Jacobi | ResolvedMethod::Richardson1 { .. } => {
                let omega = match cur_method {
                    ResolvedMethod::Richardson1 { omega } => omega,
                    _ => cur_omega,
                };
                let blk = range.len();
                kernels[w].residuals_into(a, &x, &b[range.clone()], &mut res[..blk]);
                values.clear();
                for (offset, i) in range.clone().enumerate() {
                    values.push(x[i] + omega * diag_inv[i] * res[offset]);
                }
                for (offset, i) in range.clone().enumerate() {
                    x[i] = values[offset];
                }
                blk
            }
            ResolvedMethod::Richardson2 { omega, beta } => {
                let blk = range.len();
                kernels[w].residuals_into(a, &x, &b[range.clone()], &mut res[..blk]);
                values.clear();
                for (offset, i) in range.clone().enumerate() {
                    let r = res[offset];
                    values.push(x[i] + omega * diag_inv[i] * r + beta * (x[i] - x_prev[i]));
                }
                for (offset, i) in range.clone().enumerate() {
                    x_prev[i] = x[i];
                    x[i] = values[offset];
                }
                blk
            }
            ResolvedMethod::RandomizedResidual { fraction, seed } => {
                // Residual-weighted draw over the block, then plain Jacobi
                // on the chosen rows; all residuals read the same state.
                let blk = range.len();
                kernels[w].residuals_into(a, &x, &b[range.clone()], &mut res[..blk]);
                values.clear();
                values.extend_from_slice(&res[..blk]);
                weights.clear();
                weights.extend(values.iter().map(|r| r.abs()));
                let k = ((fraction * range.len() as f64).ceil() as usize).max(1);
                let chosen = method::select_residual_weighted(
                    &weights,
                    k,
                    method::selection_seed(seed, w as u64 + 1, iterations[w]),
                );
                for &c in &chosen {
                    let i = range.start + c;
                    x[i] += diag_inv[i] * values[c];
                }
                chosen.len()
            }
        };
        iterations[w] += 1;
        relaxations += swept as u64;
        if let Some(o) = obs.as_mut() {
            if o.sweep_sampler.hit() {
                for &nb in &neighbors[w] {
                    o.record_staleness(w, tick - last_commit[nb]);
                }
                if let Some(prev) = o.last_sweep_end[w] {
                    o.record_sweep_period(w, tick - prev);
                }
                o.event(w, tick, SpanKind::SweepEnd);
            }
            o.last_sweep_end[w] = Some(tick);
        }
        if !period.is_empty() {
            period[w] = tick - last_commit[w];
        }
        if track_commits {
            last_commit[w] = tick;
        }
        let samples_before = if ctrl.is_some() {
            monitor.samples().len()
        } else {
            0
        };
        let hit_tol = monitor.observe(now, relaxations, &x);
        if let Some(c) = ctrl.as_mut() {
            if monitor.samples().len() > samples_before {
                // Staleness-at-use on the monitor's grid: the oldest live
                // worker's commit age in units of the fastest live worker's
                // sweep period — the same coarse quantity both engines can
                // measure, so decision sequences conform across them.
                let mut fast = u64::MAX;
                for v in 0..t {
                    if !c.is_shed(v) && period[v] > 0 {
                        fast = fast.min(period[v]);
                    }
                }
                let mut worst = 0usize;
                let mut staleness = 0.0f64;
                if fast != u64::MAX {
                    for v in 0..t {
                        if c.is_shed(v) {
                            continue;
                        }
                        let age = (tick - last_commit[v]) as f64 / fast as f64;
                        if age > staleness {
                            staleness = age;
                            worst = v;
                        }
                    }
                }
                let residual = monitor.samples().last().map_or(f64::NAN, |s| s.residual);
                if let Some(d) = c.observe(Observation {
                    residual,
                    staleness,
                    worst,
                }) {
                    let (m, w0) = Controller::retune(cur_method, cur_omega, &d);
                    cur_method = m;
                    cur_omega = w0;
                    if let Some(o) = obs.as_mut() {
                        o.event(0, tick, decision_kind(&d));
                    }
                    if c.rescue_requested() {
                        // Stop here; the driver escalates to an outer rescue.
                        done = true;
                    }
                }
            }
        }
        match config.stop {
            StopRule::Tolerance => {
                if hit_tol {
                    done = true;
                }
            }
            StopRule::FixedIterations(k) => {
                if iterations.iter().all(|&it| it >= k) {
                    done = true;
                }
            }
        }
        if !done && iterations[w] < config.max_iterations {
            let c = draw_cost(w, &mut jitters);
            queue.push(Reverse((tick + c, order, w)));
            order += 1;
        }
    }
    monitor.finalize(now, relaxations, &x);
    let converged = monitor.converged();
    let obs_snapshot = obs.map(|o| {
        let mut snap = o.into_snapshot(None);
        snap.set_counter("relaxations", relaxations);
        snap.set_counter(&format!("method/{}", config.method.name()), 1);
        snap.set_counter("workers", t as u64);
        snap.set_gauge("sim_time", now);
        snap.set_gauge(
            "final_residual",
            monitor.samples().last().map_or(f64::NAN, |s| s.residual),
        );
        snap
    });
    SimOutcome {
        samples: monitor.into_samples(),
        x,
        time: now,
        relaxations,
        worker_iterations: iterations,
        converged,
        termination: None,
        comm: Default::default(),
        faults: None,
        obs: obs_snapshot,
        control: ctrl.map(Controller::into_stats),
    }
}

/// Runs asynchronous Jacobi at **row granularity** with the paper's §V
/// two-phase structure, recording every relaxation's neighbour reads for
/// the Figure 2 analysis.
///
/// A worker's iteration occupies a compute window `W`. Phase 1 (first half
/// of `W`) computes residuals: row `p` of an `m`-row block performs its
/// neighbour *reads* at `t₀ + (p+½)/m · W/2`. Phase 2 (second half) writes
/// the corrected values: row `p` *publishes* at `t₀ + W/2 + (p+½)/m · W/2`.
/// The read→write gap is what makes some relaxations inexpressible as
/// propagation matrices; it shrinks (relative to everything else) as rows
/// per worker shrink, reproducing the paper's Figure 2 trend of the
/// propagated fraction growing with thread count.
pub fn run_shmem_async_traced(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    config: &ShmemSimConfig,
) -> (SimOutcome, Trace) {
    let mut events = Vec::new();
    let outcome = rowwise_impl(a, b, x0, config, Some(&mut events));
    (outcome, Trace::from_events(a.nrows(), events))
}

/// The row-granular two-phase engine without trace collection: use this
/// when within-window read freshness matters to convergence (e.g. the
/// Figure 6 divergence-rescue experiment, which probes the Jacobi↔
/// Gauss–Seidel boundary), at ~2 events per row per iteration.
pub fn run_shmem_async_rowwise(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    config: &ShmemSimConfig,
) -> SimOutcome {
    rowwise_impl(a, b, x0, config, None)
}

fn rowwise_impl(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    config: &ShmemSimConfig,
    mut sink: Option<&mut Vec<RelaxationEvent>>,
) -> SimOutcome {
    let n = a.nrows();
    let t = config.num_threads;
    assert!(t > 0 && t <= n, "need 1 ≤ threads ≤ rows");
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    let diag_inv: Vec<f64> = a
        .diagonal()
        .iter()
        .map(|d| {
            assert!(*d != 0.0, "zero diagonal");
            1.0 / d
        })
        .collect();
    let ranges = block_ranges(n, t);
    let block_nnz: Vec<usize> = ranges
        .iter()
        .map(|r| r.clone().map(|i| a.row_nnz(i)).sum())
        .collect();

    let mut x = x0.to_vec();
    let mut versions = vec![0u64; n];
    let mut seq = 0u64;
    let mut jitters: Vec<WorkerJitter> = (0..t)
        .map(|w| WorkerJitter::new(&config.cost.jitter, w))
        .collect();
    let mut iterations = vec![0u64; t];
    // Sub-event cursor: 0..m are phase-1 reads, m..2m are phase-2 writes.
    let mut cursor = vec![0usize; t];
    // Phase 1 (residual SpMV) dominates the window; phase 2 (the x update)
    // is a short tail. The split controls the read→write gap and therefore
    // the propagated fraction; 80/20 reflects the relative work of the two
    // phases in the paper's solver structure.
    const PHASE1_FRAC: f64 = 0.8;
    let mut read_step = vec![0.0f64; t];
    let mut write_step = vec![0.0f64; t];
    // Ticks of per-iteration overhead (loop bookkeeping plus the §V
    // convergence check, which scans the whole residual array and performs
    // no writes to x). The overhead precedes the relax phases, so reads and
    // writes cluster in the window's tail — as they do in the real solver.
    let mut overhead = vec![0.0f64; t];
    // Phase-1 buffers: staged (new value, reads) per row of the block.
    type StagedRow = (f64, Vec<(usize, u64)>);
    let mut staged: Vec<Vec<StagedRow>> =
        ranges.iter().map(|r| Vec::with_capacity(r.len())).collect();
    let mut relaxations = 0u64;
    let mut monitor = ResidualMonitor::new(a, b, config.norm, config.tol, config.sample_every);
    monitor.observe(0.0, 0, &x);

    // Returns (overhead ticks, compute ticks) for one iteration of worker w.
    let draw_window =
        |w: usize, jitters: &mut [WorkerJitter], block_nnz: &[usize], config: &ShmemSimConfig| {
            let f = jitters[w].next_factor() * config.cost.compute_oversub(t);
            let mut over = config.cost.per_iteration * f;
            if let Some(d) = config.delay {
                if d.worker == w {
                    over += d.extra_ticks;
                }
            }
            let compute = (config.cost.per_nonzero * block_nnz[w] as f64 * f).max(1.0);
            (over, compute)
        };

    // (tick, insertion order, worker)
    let mut queue: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut order = 0u64;
    for w in 0..t {
        let (over, compute) = draw_window(w, &mut jitters, &block_nnz, config);
        let m = ranges[w].len() as f64;
        overhead[w] = over;
        read_step[w] = PHASE1_FRAC * compute / m;
        write_step[w] = (1.0 - PHASE1_FRAC) * compute / m;
        queue.push(Reverse((
            ((over + read_step[w]) * TICK_SCALE).max(1.0) as u64,
            order,
            w,
        )));
        order += 1;
    }

    let mut now = 0.0f64;
    while let Some(Reverse((tick, _, w))) = queue.pop() {
        now = tick as f64 / TICK_SCALE;
        if now > config.max_time {
            break;
        }
        let m = ranges[w].len();
        let mut stop = false;
        if cursor[w] < m {
            // Phase 1: residual read for row p.
            let i = ranges[w].start + cursor[w];
            let mut acc = 0.0;
            let mut reads = Vec::new();
            if sink.is_some() {
                reads.reserve(a.row_nnz(i).saturating_sub(1));
                for (j, v) in a.row_iter(i) {
                    if j == i {
                        continue;
                    }
                    acc += v * x[j];
                    reads.push((j, versions[j]));
                }
            } else {
                for (j, v) in a.row_iter(i) {
                    if j != i {
                        acc += v * x[j];
                    }
                }
            }
            // Weighted update x_i + ω((b_i − Σ_{j≠i} a_ij x_j)/a_ii − x_i);
            // the own-value term cancels entirely only at ω = 1.
            let target = (b[i] - acc) * diag_inv[i];
            staged[w].push((x[i] + config.omega * (target - x[i]), reads));
        } else {
            // Phase 2: publish row p's corrected value.
            let p = cursor[w] - m;
            let i = ranges[w].start + p;
            let (value, reads) = std::mem::take(&mut staged[w][p]);
            x[i] = value;
            versions[i] += 1;
            if let Some(sink) = sink.as_deref_mut() {
                sink.push(RelaxationEvent { row: i, seq, reads });
                seq += 1;
            }
            relaxations += 1;
        }
        cursor[w] += 1;
        if cursor[w] == 2 * m {
            // Iteration complete.
            cursor[w] = 0;
            staged[w].clear();
            iterations[w] += 1;
            let hit_tol = monitor.observe(now, relaxations, &x);
            stop = match config.stop {
                StopRule::Tolerance => hit_tol,
                StopRule::FixedIterations(k) => iterations.iter().all(|&it| it >= k),
            };
            if !stop && iterations[w] < config.max_iterations {
                let (over, compute) = draw_window(w, &mut jitters, &block_nnz, config);
                overhead[w] = over;
                read_step[w] = PHASE1_FRAC * compute / m as f64;
                write_step[w] = (1.0 - PHASE1_FRAC) * compute / m as f64;
            } else if !stop {
                continue; // worker retires at its iteration cap
            }
        }
        if stop {
            break;
        }
        // First read of a fresh iteration pays the overhead phase first.
        let step = if cursor[w] == 0 {
            overhead[w] + read_step[w]
        } else if cursor[w] < m {
            read_step[w]
        } else {
            write_step[w]
        };
        queue.push(Reverse((
            tick + ((step * TICK_SCALE).max(1.0) as u64),
            order,
            w,
        )));
        order += 1;
    }
    monitor.finalize(now, relaxations, &x);
    let converged = monitor.converged();
    SimOutcome {
        samples: monitor.into_samples(),
        x,
        time: now,
        relaxations,
        worker_iterations: iterations,
        converged,
        termination: None,
        comm: Default::default(),
        faults: None,
        obs: None,
        control: None,
    }
}

/// Runs the **synchronous** simulated shared-memory solver: lock-step
/// Jacobi where each iteration costs the slowest worker's compute time plus
/// a barrier.
pub fn run_shmem_sync(a: &CsrMatrix, b: &[f64], x0: &[f64], config: &ShmemSimConfig) -> SimOutcome {
    let n = a.nrows();
    let t = config.num_threads;
    assert!(t > 0 && t <= n, "need 1 ≤ threads ≤ rows");
    let diag_inv: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
    let ranges = block_ranges(n, t);
    let block_nnz: Vec<usize> = ranges
        .iter()
        .map(|r| r.clone().map(|i| a.row_nnz(i)).sum())
        .collect();
    let mut jitters: Vec<WorkerJitter> = (0..t)
        .map(|w| WorkerJitter::new(&config.cost.jitter, w))
        .collect();
    let barrier = config.cost.barrier_cost(t);

    let mut x = x0.to_vec();
    let mut x_next = vec![0.0; n];
    let mut x_prev = x0.to_vec();
    let mut now = 0.0f64;
    let mut relaxations = 0u64;
    let mut iters = 0u64;
    let mut monitor = ResidualMonitor::new(a, b, config.norm, config.tol, config.sample_every);
    monitor.observe(0.0, 0, &x);

    loop {
        match config.stop {
            StopRule::Tolerance => {
                if monitor.converged() {
                    break;
                }
            }
            StopRule::FixedIterations(k) => {
                if iters >= k {
                    break;
                }
            }
        }
        if now > config.max_time || iters >= config.max_iterations {
            break;
        }
        // Slowest worker (plus injected delay) sets the pace.
        let oversub = config.cost.compute_oversub(t);
        let mut slowest = 0.0f64;
        for w in 0..t {
            let mut cost =
                config.cost.sweep_cost(block_nnz[w]) * jitters[w].next_factor() * oversub;
            if let Some(d) = config.delay {
                if d.worker == w {
                    cost += d.extra_ticks;
                }
            }
            slowest = slowest.max(cost);
        }
        let swept = match config.method {
            // The classic path, untouched: lock-step (damped) Jacobi.
            ResolvedMethod::Jacobi => {
                aj_linalg::sweeps::weighted_jacobi_iteration(
                    a,
                    b,
                    &diag_inv,
                    config.omega,
                    &x,
                    &mut x_next,
                );
                std::mem::swap(&mut x, &mut x_next);
                n
            }
            // Every other method routes through the shared dense reference
            // iteration, so a synchronous simulated run is bit-identical to
            // `aj_linalg::method::method_solve`.
            m => {
                let swept =
                    method::method_iteration(a, b, &diag_inv, &m, iters, &x, &x_prev, &mut x_next);
                std::mem::swap(&mut x_prev, &mut x);
                std::mem::swap(&mut x, &mut x_next);
                swept
            }
        };
        now += slowest + barrier;
        iters += 1;
        relaxations += swept as u64;
        monitor.observe(now, relaxations, &x);
    }
    monitor.finalize(now, relaxations, &x);
    let converged = monitor.converged();
    SimOutcome {
        samples: monitor.into_samples(),
        x,
        time: now,
        relaxations,
        worker_iterations: vec![iters; t],
        converged,
        termination: None,
        comm: Default::default(),
        faults: None,
        obs: None,
        control: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Jitter;
    use aj_matrices::{fd, rhs};

    fn fd68() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = fd::paper_fd("fd68")
            .unwrap()
            .scale_to_unit_diagonal()
            .unwrap();
        let (b, x0) = rhs::paper_problem(a.nrows(), 2018);
        (a, b, x0)
    }

    #[test]
    fn zero_jitter_async_is_multiplicative_and_beats_sync() {
        // With zero jitter all workers commit on the same ticks; the
        // deterministic commit order makes each see its predecessors' fresh
        // values — block Gauss–Seidel — so asynchronous Jacobi needs *fewer*
        // relaxations than synchronous (the §IV-B multiplicative mechanism
        // in its purest form).
        let (a, b, x0) = fd68();
        let mut cfg = ShmemSimConfig::new(4, 68, 1);
        cfg.cost.jitter = Jitter::none();
        cfg.cost.barrier_base = 0.0;
        cfg.cost.barrier_per_worker = 0.0;
        cfg.cost.barrier_log = 0.0;
        cfg.cost.per_nonzero = 0.0;
        let asy = run_shmem_async(&a, &b, &x0, &cfg);
        let syn = run_shmem_sync(&a, &b, &x0, &cfg);
        assert!(asy.converged && syn.converged);
        assert!(
            asy.relaxations < syn.relaxations,
            "async {} vs sync {}",
            asy.relaxations,
            syn.relaxations
        );
    }

    #[test]
    fn async_with_jitter_converges() {
        let (a, b, x0) = fd68();
        let cfg = ShmemSimConfig::new(17, 68, 3);
        let out = run_shmem_async(&a, &b, &x0, &cfg);
        assert!(out.converged, "residual {}", out.final_residual());
        assert!(out.relaxations > 0);
        assert!(out.worker_iterations.iter().all(|&i| i > 0));
    }

    #[test]
    fn delayed_worker_slows_sync_more_than_async() {
        let (a, b, x0) = fd68();
        let delay = SimDelay {
            worker: 3,
            extra_ticks: 50_000.0,
        };
        let mut cfg = ShmemSimConfig::new(68, 68, 5);
        cfg.delay = Some(delay);
        let asy = run_shmem_async(&a, &b, &x0, &cfg);
        let syn = run_shmem_sync(&a, &b, &x0, &cfg);
        assert!(asy.converged, "async residual {}", asy.final_residual());
        assert!(syn.converged);
        let ta = asy.time_to_tolerance(cfg.tol).unwrap();
        let ts = syn.time_to_tolerance(cfg.tol).unwrap();
        assert!(
            ts > 3.0 * ta,
            "sync {ts} should be much slower than async {ta} under delay"
        );
    }

    #[test]
    fn fixed_iterations_stop_rule_counts_slowest_worker() {
        let (a, b, x0) = fd68();
        let mut cfg = ShmemSimConfig::new(4, 68, 7);
        cfg.stop = StopRule::FixedIterations(50);
        cfg.tol = 0.0; // never triggers
        let out = run_shmem_async(&a, &b, &x0, &cfg);
        assert!(out.worker_iterations.iter().all(|&i| i >= 50));
        let syn = run_shmem_sync(&a, &b, &x0, &cfg);
        assert_eq!(syn.worker_iterations, vec![50; 4]);
    }

    #[test]
    fn damped_sync_rescues_the_fe_matrix() {
        // ρ(G) ≈ 1.43 on the FE matrix, but λ(A) ⊂ (0, 2.43) so ω = 0.7
        // maps the damped spectrum inside the unit disc: synchronous damped
        // Jacobi converges where plain Jacobi diverges — the classical
        // counterpart of the paper's asynchronous rescue.
        let a = aj_matrices::fe::fe_matrix(12, 12, 0.45, 3);
        let (b, x0) = aj_matrices::rhs::paper_problem(a.nrows(), 5);
        let mut plain = ShmemSimConfig::new(8, a.nrows(), 1);
        plain.stop = StopRule::FixedIterations(400);
        plain.tol = 0.0;
        plain.max_time = 1e14;
        let mut damped = plain.clone();
        damped.omega = 0.7;
        let o_plain = run_shmem_sync(&a, &b, &x0, &plain);
        let o_damped = run_shmem_sync(&a, &b, &x0, &damped);
        assert!(
            o_plain.final_residual() > 1e3,
            "plain diverges: {}",
            o_plain.final_residual()
        );
        assert!(
            o_damped.final_residual() < 1e-2,
            "damped converges: {}",
            o_damped.final_residual()
        );
    }

    #[test]
    fn omega_zero_freezes_the_iterate() {
        // ω = 0 makes every relaxation a no-op: the solution must stay at
        // x0 in both engines (a degenerate but well-defined configuration).
        let (a, b, x0) = fd68();
        let mut cfg = ShmemSimConfig::new(4, 68, 1);
        cfg.stop = StopRule::FixedIterations(5);
        cfg.tol = 0.0;
        cfg.omega = 0.0;
        let out = run_shmem_async(&a, &b, &x0, &cfg);
        assert_eq!(out.x, x0);
        let (out_rw, _) = run_shmem_async_traced(&a, &b, &x0, &cfg);
        assert_eq!(out_rw.x, x0);
    }

    #[test]
    fn runs_are_deterministic() {
        let (a, b, x0) = fd68();
        let cfg = ShmemSimConfig::new(8, 68, 11);
        let o1 = run_shmem_async(&a, &b, &x0, &cfg);
        let o2 = run_shmem_async(&a, &b, &x0, &cfg);
        assert_eq!(o1.time, o2.time);
        assert_eq!(o1.relaxations, o2.relaxations);
        assert_eq!(o1.x, o2.x);
    }

    #[test]
    fn traced_run_produces_consistent_trace() {
        let (a, b, x0) = fd68();
        let mut cfg = ShmemSimConfig::new(17, 68, 13);
        cfg.stop = StopRule::FixedIterations(10);
        cfg.tol = 0.0;
        let (out, trace) = run_shmem_async_traced(&a, &b, &x0, &cfg);
        assert_eq!(trace.len() as u64, out.relaxations);
        // A sizeable share of relaxations is expressible even at 4 rows per
        // worker (the hardest regime for the reconstruction)…
        let analysis = aj_trace::reconstruct(&trace);
        assert!(
            analysis.fraction() > 0.4,
            "fraction {}",
            analysis.fraction()
        );
        // …and with one row per worker nearly everything is, the upper end
        // of the paper's Figure 2 range.
        let mut cfg1 = ShmemSimConfig::new(68, 68, 13);
        cfg1.stop = StopRule::FixedIterations(10);
        cfg1.tol = 0.0;
        let (_, trace1) = run_shmem_async_traced(&a, &b, &x0, &cfg1);
        let analysis1 = aj_trace::reconstruct(&trace1);
        assert!(
            analysis1.fraction() > 0.9,
            "fraction {}",
            analysis1.fraction()
        );
        assert!(analysis1.fraction() >= analysis.fraction());
    }

    #[test]
    fn every_method_converges_asynchronously() {
        let (a, b, x0) = fd68();
        for method in [
            ResolvedMethod::Richardson1 { omega: 0.9 },
            ResolvedMethod::Richardson2 {
                omega: 0.9,
                beta: 0.3,
            },
            ResolvedMethod::RandomizedResidual {
                fraction: 0.5,
                seed: 2,
            },
        ] {
            let mut cfg = ShmemSimConfig::new(8, 68, 3);
            cfg.method = method;
            let out = run_shmem_async(&a, &b, &x0, &cfg);
            assert!(
                out.converged,
                "{} stalled at {}",
                method.name(),
                out.final_residual()
            );
            let o2 = run_shmem_async(&a, &b, &x0, &cfg);
            assert_eq!(out.x, o2.x, "{} is not deterministic", method.name());
        }
    }

    #[test]
    fn momentum_needs_fewer_relaxations_than_jacobi() {
        let (a, b, x0) = fd68();
        let mut plain = ShmemSimConfig::new(8, 68, 9);
        plain.tol = 1e-6;
        let mut momentum = plain.clone();
        // ω/β from the fd68 spectrum via the auto rule.
        momentum.method = aj_linalg::method::Method::Richardson2 {
            omega: aj_linalg::method::OmegaSpec::Auto,
            beta: None,
        }
        .resolve(&a, 0)
        .unwrap();
        let o_plain = run_shmem_async(&a, &b, &x0, &plain);
        let o_momentum = run_shmem_async(&a, &b, &x0, &momentum);
        assert!(o_plain.converged && o_momentum.converged);
        // The asynchronous block engine is already multiplicative
        // (Gauss–Seidel-like), which eats part of momentum's synchronous
        // advantage; it still has to win measurably.
        assert!(
            o_momentum.relaxations * 10 < o_plain.relaxations * 9,
            "momentum {} vs jacobi {} relaxations",
            o_momentum.relaxations,
            o_plain.relaxations
        );
    }

    #[test]
    fn rwr_counts_only_the_selected_rows() {
        let (a, b, x0) = fd68();
        let mut cfg = ShmemSimConfig::new(4, 68, 5);
        cfg.method = ResolvedMethod::RandomizedResidual {
            fraction: 0.25,
            seed: 11,
        };
        cfg.stop = StopRule::FixedIterations(10);
        cfg.tol = 0.0;
        let out = run_shmem_async(&a, &b, &x0, &cfg);
        let sweeps: u64 = out.worker_iterations.iter().sum();
        // Each 17-row block relaxes ⌈0.25·17⌉ = 5 rows per sweep.
        assert_eq!(out.relaxations, sweeps * 5);
    }

    #[test]
    fn sync_method_run_matches_the_dense_reference_bitwise() {
        let (a, b, x0) = fd68();
        for method in [
            ResolvedMethod::Richardson1 { omega: 0.85 },
            ResolvedMethod::Richardson2 {
                omega: 0.9,
                beta: 0.35,
            },
            ResolvedMethod::RandomizedResidual {
                fraction: 0.5,
                seed: 6,
            },
        ] {
            let mut cfg = ShmemSimConfig::new(4, 68, 7);
            cfg.tol = 1e-6;
            cfg.method = method;
            // Check convergence after every sweep, as the reference does —
            // rwr relaxes fewer than `n` rows per sweep, so the default
            // once-per-n-relaxations cadence would stop later.
            cfg.sample_every = 1;
            let out = run_shmem_sync(&a, &b, &x0, &cfg);
            let reference = aj_linalg::method::method_solve(
                &a,
                &b,
                &x0,
                &method,
                cfg.tol,
                cfg.max_iterations as usize,
                cfg.norm,
            )
            .unwrap();
            assert!(out.converged && reference.converged, "{}", method.name());
            assert_eq!(out.x, reference.x, "{} drifted bitwise", method.name());
            assert_eq!(out.relaxations, reference.relaxations);
        }
    }

    #[test]
    fn more_threads_do_not_hurt_async_relaxation_efficiency() {
        // The §VII-B observation: async convergence (per relaxation)
        // improves (or at least does not degrade) with concurrency.
        let (a, b, x0) = fd68();
        let mut few = ShmemSimConfig::new(4, 68, 17);
        few.tol = 1e-3;
        let mut many = ShmemSimConfig::new(68, 68, 17);
        many.tol = 1e-3;
        let o_few = run_shmem_async(&a, &b, &x0, &few);
        let o_many = run_shmem_async(&a, &b, &x0, &many);
        assert!(o_few.converged && o_many.converged);
        let r_few = o_few.relaxations_to_tolerance(1e-3).unwrap();
        let r_many = o_many.relaxations_to_tolerance(1e-3).unwrap();
        assert!(
            r_many <= r_few * 1.5,
            "per-relaxation efficiency collapsed: {r_many} vs {r_few}"
        );
    }
}
