//! Engine-side observability recorder.
//!
//! One [`EngineObs`] instance lives inside a simulator run when
//! [`aj_obs::ObsConfig`] enables recording; every touchpoint in the event
//! loops is a single `if let Some(o) = obs.as_mut()` — when recording is
//! off the engines skip all of it through one `Option` check and allocate
//! none of the shard state, keeping the off-mode overhead at zero.
//!
//! The **staleness** histograms hold, per rank, the age in ticks of each
//! neighbour's data at the moment a sweep uses it (one sample per sweep ×
//! neighbour). Both engines define age against the tick at which the
//! neighbour *generated* the data (its sweep/commit tick), not the tick it
//! arrived — so the shared-memory simulator (instant visibility) and the
//! distributed simulator (puts in flight) measure the same quantity and
//! can be cross-validated against each other.

use crate::monitor::CommVolume;
use aj_control::Decision;
use aj_obs::{Histogram, ObsConfig, Sampler, Snapshot, SpanKind, Timeline};

/// Timeline span kind for a controller decision. Both simulator engines
/// stamp decisions on rank 0's timeline through this single mapping so the
/// cross-engine conformance test can compare event streams verbatim.
pub(crate) fn decision_kind(d: &Decision) -> SpanKind {
    match d {
        Decision::Shrink { .. } => SpanKind::CtrlShrink,
        Decision::Widen { .. } => SpanKind::CtrlWiden,
        Decision::Switch { .. } => SpanKind::CtrlSwitch,
        Decision::Shed { .. } => SpanKind::CtrlShed,
        Decision::Rescue => SpanKind::CtrlRescue,
    }
}

/// Per-run recording state shared by the simulator engines.
pub(crate) struct EngineObs {
    /// Per-rank neighbour-data age at use (ticks).
    staleness: Vec<Histogram>,
    /// Per-rank gap between consecutive sweep completions (ticks).
    sweep_period: Vec<Histogram>,
    /// Network latency of landed puts (ticks); distributed engine only.
    put_latency: Histogram,
    /// Pending event-queue depth, sampled on the residual monitor's grid.
    queue_depth: Histogram,
    /// Per-rank span-event rings.
    timelines: Vec<Timeline>,
    /// 1-in-N gate for sweep-frequency records (staleness, periods).
    pub sweep_sampler: Sampler,
    /// 1-in-N gate for put-frequency records (latency, send/arrive spans).
    pub put_sampler: Sampler,
    /// Last sweep-completion tick per rank (state, updated every sweep).
    pub last_sweep_end: Vec<Option<u64>>,
    /// Termination-protocol reports seen by the root.
    pub term_reports: u64,
}

impl EngineObs {
    /// Builds the recorder, or `None` when the config disables recording.
    pub fn new(cfg: &ObsConfig, nranks: usize) -> Option<EngineObs> {
        if !cfg.is_on() {
            return None;
        }
        Some(EngineObs {
            staleness: vec![Histogram::new(); nranks],
            sweep_period: vec![Histogram::new(); nranks],
            put_latency: Histogram::new(),
            queue_depth: Histogram::new(),
            timelines: (0..nranks)
                .map(|_| Timeline::new(cfg.timeline_capacity))
                .collect(),
            sweep_sampler: cfg.sampler(),
            put_sampler: cfg.sampler(),
            last_sweep_end: vec![None; nranks],
            term_reports: 0,
        })
    }

    /// Records one neighbour-age sample for `rank`.
    #[inline]
    pub fn record_staleness(&mut self, rank: usize, age_ticks: u64) {
        self.staleness[rank].record(age_ticks);
    }

    /// Records a sweep-to-sweep gap for `rank`.
    #[inline]
    pub fn record_sweep_period(&mut self, rank: usize, gap_ticks: u64) {
        self.sweep_period[rank].record(gap_ticks);
    }

    /// Records a landed put's network latency.
    #[inline]
    pub fn record_put_latency(&mut self, latency_ticks: u64) {
        self.put_latency.record(latency_ticks);
    }

    /// Records the event-queue depth (call on the monitor's sample grid).
    #[inline]
    pub fn record_queue_depth(&mut self, depth: u64) {
        self.queue_depth.record(depth);
    }

    /// Appends a span event to `rank`'s timeline.
    #[inline]
    pub fn event(&mut self, rank: usize, tick: u64, kind: SpanKind) {
        self.timelines[rank].push(tick, kind);
    }

    /// Assembles the merged snapshot. Empty histograms are omitted so
    /// fault-free runs don't carry dead keys; `comm` totals, when present,
    /// become counters.
    pub fn into_snapshot(self, comm: Option<&CommVolume>) -> Snapshot {
        let mut snap = Snapshot::new();
        for (r, h) in self.staleness.iter().enumerate() {
            if h.count() > 0 {
                snap.merge_histogram(&format!("staleness/rank{r}"), h);
            }
        }
        for (r, h) in self.sweep_period.iter().enumerate() {
            if h.count() > 0 {
                snap.merge_histogram(&format!("sweep_period/rank{r}"), h);
            }
        }
        if self.put_latency.count() > 0 {
            snap.merge_histogram("put_latency", &self.put_latency);
        }
        if self.queue_depth.count() > 0 {
            snap.merge_histogram("queue_depth", &self.queue_depth);
        }
        for (r, tl) in self.timelines.iter().enumerate() {
            if !tl.is_empty() || tl.dropped() > 0 {
                snap.push_timeline(r, tl);
            }
        }
        if self.term_reports > 0 {
            snap.set_counter("term_reports", self.term_reports);
        }
        if let Some(c) = comm {
            snap.set_counter("puts_sent", c.puts);
            snap.set_counter("put_values", c.values);
            if c.drops > 0 {
                snap.set_counter("put_drops", c.drops);
            }
            if c.duplicates > 0 {
                snap.set_counter("put_duplicates", c.duplicates);
            }
            if c.reorders > 0 {
                snap.set_counter("put_reorders", c.reorders);
            }
        }
        snap
    }
}
