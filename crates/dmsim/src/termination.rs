//! Distributed termination detection (the paper's §VI future work).
//!
//! The paper's distributed solver stops after a fixed iteration count
//! because "if it is desired that some global criteria is met … a more
//! sophisticated scheme must be employed. … we leave this latter topic for
//! future research." This module supplies that scheme for the simulator.
//!
//! ## Protocol
//!
//! A root rank (0) aggregates periodic asynchronous residual reports:
//!
//! 1. every `check_interval` local iterations, each rank computes the
//!    L1-norm contribution of its *owned* residual rows (using its current
//!    ghost values) and sends it to the root — one small message, no
//!    barrier, no synchronisation of iteration counts;
//! 2. the root keeps the latest report per rank; once a **complete round**
//!    is in — a fresh report from every rank considered alive since the
//!    previous round was judged — it sums the latest norms and checks
//!    `Σ ‖r_owned‖₁ < tol·‖b‖₁`. After `confirmations` consecutive
//!    below-tolerance rounds it broadcasts a stop message;
//! 3. a rank receiving the stop finishes its in-flight sweep and retires.
//!
//! Counting *rounds* rather than *reports* matters: reports arrive one at a
//! time, and two consecutive below-tolerance ingests can come from the same
//! reporting round (even from the same rank). An earlier version credited a
//! confirmation per below-tolerance *report* once initial coverage was
//! reached, so `confirmations: 2` could be satisfied without any rank
//! reporting twice — exactly the stale-snapshot race the confirmation knob
//! exists to rule out.
//!
//! ## Staleness timeouts and dead-rank exclusion
//!
//! Under fault injection ([`crate::fault`]) a rank can crash and never
//! report again. Waiting for a fresh report from *every* rank would then
//! deadlock detection forever, so the root applies a **staleness timeout**:
//! a rank whose last report (or the start of the run, if it never reported)
//! is older than `staleness_timeout` is *presumed dead* — it is excluded
//! both from round coverage and from the aggregate sum. The live ranks
//! converge to the frozen-subdomain limit (DESIGN.md §10), their owned
//! residuals go to zero, and detection fires on the live sum. A presumed
//! dead rank that reports again (crash with recovery, or a very long stall)
//! is re-included automatically — presumed death is re-evaluated from
//! report times at every ingest, never latched.
//!
//! ## Why one confirmation round suffices for W.D.D. systems
//!
//! Reports are stale by up to `check_interval` iterations plus a network
//! latency, so the root's sum is a snapshot of the *past*. The paper's own
//! Theorem 1 closes the gap: for weakly diagonally dominant systems the
//! global residual 1-norm is non-increasing under any relaxation schedule,
//! so a past global norm below tolerance implies the present one is too —
//! the protocol never stops early. (Per-rank reports taken at different
//! times with inconsistent ghost views can misestimate the instantaneous
//! global norm; [`TerminationStats::detected_residual`] vs the true final
//! residual quantifies that gap, and the integration tests bound it.)
//! For non-W.D.D. systems the root demands `confirmations` consecutive
//! below-tolerance rounds before stopping, trading detection latency for
//! robustness.

/// Configuration of the detection protocol.
#[derive(Debug, Clone, Copy)]
pub struct TerminationProtocol {
    /// Local iterations between residual reports.
    pub check_interval: u64,
    /// Consecutive below-tolerance aggregate rounds the root requires
    /// before broadcasting the stop (1 is safe for W.D.D. systems by
    /// Theorem 1; use ≥ 2 otherwise). Each round needs a fresh report from
    /// every rank not presumed dead.
    pub confirmations: u32,
    /// The root stops at `aggregate < safety_factor × tol`. Per-rank
    /// reports are taken at different instants with different ghost views,
    /// so their sum can *underestimate* the instantaneous global norm; a
    /// factor of 0.5 absorbs that inconsistency in practice (the
    /// integration tests check the true residual at stop).
    pub safety_factor: f64,
    /// Simulated time without a report after which the root presumes a rank
    /// dead and excludes it from detection (`f64::INFINITY` = never — the
    /// pre-fault behaviour, where one crashed rank blocks detection
    /// forever). Calibrate to several `check_interval` sweeps plus network
    /// latency; [`TerminationProtocol::with_staleness_timeout`] helps.
    pub staleness_timeout: f64,
}

impl Default for TerminationProtocol {
    fn default() -> Self {
        TerminationProtocol {
            check_interval: 5,
            confirmations: 1,
            safety_factor: 0.5,
            staleness_timeout: f64::INFINITY,
        }
    }
}

impl TerminationProtocol {
    /// The default protocol with a staleness timeout (simulated time).
    pub fn with_staleness_timeout(timeout: f64) -> Self {
        TerminationProtocol {
            staleness_timeout: timeout,
            ..Default::default()
        }
    }
}

/// What the protocol observed during a run.
#[derive(Debug, Clone, Default)]
pub struct TerminationStats {
    /// Report messages sent toward the root.
    pub reports_sent: u64,
    /// Report messages lost to link faults on the way to the root.
    pub reports_dropped: u64,
    /// Stop broadcasts issued (0 when the run ended by other means).
    pub stops_sent: u64,
    /// Simulated time at which the root decided to stop, if it did.
    pub detected_at: Option<f64>,
    /// The aggregate relative residual the root saw when it decided.
    pub detected_residual: Option<f64>,
    /// Ranks presumed dead (stale beyond the timeout) at decision time —
    /// non-empty exactly when detection went through the staleness path.
    pub excluded_ranks: Vec<usize>,
}

/// Root-side aggregation state.
#[derive(Debug)]
pub struct RootAggregator {
    /// Latest reported norm per rank.
    latest: Vec<Option<f64>>,
    /// Time of each rank's last report (run start when never reported).
    last_report: Vec<f64>,
    /// Whether the rank reported since the last judged round.
    fresh: Vec<bool>,
    norm_b: f64,
    tol: f64,
    confirmations_needed: u32,
    confirmations_seen: u32,
    staleness_timeout: f64,
    excluded_at_decision: Vec<usize>,
    decided: bool,
}

impl RootAggregator {
    /// Creates the aggregator for `nparts` ranks with tolerance `tol`
    /// relative to `norm_b = ‖b‖₁`.
    pub fn new(
        nparts: usize,
        tol: f64,
        norm_b: f64,
        confirmations: u32,
        staleness_timeout: f64,
    ) -> Self {
        RootAggregator {
            latest: vec![None; nparts],
            last_report: vec![0.0; nparts],
            fresh: vec![false; nparts],
            norm_b: norm_b.max(f64::MIN_POSITIVE),
            tol,
            confirmations_needed: confirmations.max(1),
            confirmations_seen: 0,
            staleness_timeout: if staleness_timeout > 0.0 {
                staleness_timeout
            } else {
                f64::INFINITY
            },
            excluded_at_decision: Vec::new(),
            decided: false,
        }
    }

    /// Whether `rank` is presumed dead at time `now` (no report within the
    /// staleness timeout).
    pub fn presumed_dead(&self, rank: usize, now: f64) -> bool {
        now - self.last_report[rank] > self.staleness_timeout
    }

    /// Ingests a report arriving at simulated time `now`; returns
    /// `Some(aggregate relative residual)` when this report completes the
    /// below-tolerance round that reaches the confirmation count — i.e. the
    /// root should broadcast the stop now.
    pub fn ingest(&mut self, rank: usize, local_norm: f64, now: f64) -> Option<f64> {
        if self.decided {
            return None;
        }
        self.latest[rank] = Some(local_norm);
        self.last_report[rank] = now;
        self.fresh[rank] = true;

        // A round is judged once every rank either reported since the last
        // judgement or is presumed dead. Presumed death is recomputed from
        // report times on every ingest, so a resurrected rank (recovery,
        // long stall) is pulled back into coverage automatically.
        let covered = (0..self.latest.len()).all(|q| self.fresh[q] || self.presumed_dead(q, now));
        if !covered {
            return None;
        }
        let total: f64 = (0..self.latest.len())
            .filter(|&q| !self.presumed_dead(q, now))
            .filter_map(|q| self.latest[q])
            .sum();
        let rel = total / self.norm_b;
        self.fresh.iter_mut().for_each(|f| *f = false);
        if rel < self.tol {
            self.confirmations_seen += 1;
            if self.confirmations_seen >= self.confirmations_needed {
                self.decided = true;
                self.excluded_at_decision = (0..self.latest.len())
                    .filter(|&q| self.presumed_dead(q, now))
                    .collect();
                return Some(rel);
            }
        } else {
            self.confirmations_seen = 0;
        }
        None
    }

    /// Whether the stop decision has been made.
    pub fn decided(&self) -> bool {
        self.decided
    }

    /// Ranks that were presumed dead when the stop decision fired (empty
    /// before the decision, and for decisions with full coverage).
    pub fn excluded_ranks(&self) -> &[usize] {
        &self.excluded_at_decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEVER: f64 = f64::INFINITY;

    #[test]
    fn waits_for_every_rank_before_judging() {
        let mut agg = RootAggregator::new(3, 1e-3, 1.0, 1, NEVER);
        assert!(agg.ingest(0, 0.0, 1.0).is_none());
        assert!(agg.ingest(1, 0.0, 2.0).is_none());
        // Last rank completes the round; everything is below tolerance.
        let rel = agg.ingest(2, 1e-5, 3.0).expect("should decide");
        assert!(rel < 1e-3);
        assert!(agg.decided());
        assert!(agg.excluded_ranks().is_empty());
    }

    #[test]
    fn confirmations_require_a_fresh_round_each() {
        // Two confirmations = two *complete* below-tolerance rounds; extra
        // below-tolerance reports inside one round must not double-count.
        let mut agg = RootAggregator::new(2, 1e-2, 1.0, 2, NEVER);
        assert!(agg.ingest(0, 1e-4, 1.0).is_none());
        assert!(agg.ingest(0, 1e-4, 2.0).is_none()); // same round, same rank
        assert!(agg.ingest(1, 1e-4, 3.0).is_none()); // round 1 → 1st confirmation
        assert!(agg.ingest(0, 1e-4, 4.0).is_none()); // round 2 incomplete
        assert!(agg.ingest(0, 1e-4, 5.0).is_none()); // still incomplete
        let rel = agg.ingest(1, 1e-4, 6.0).expect("round 2 → decide");
        assert!(rel < 1e-2);
    }

    #[test]
    fn above_tolerance_rounds_reset_confirmations() {
        let mut agg = RootAggregator::new(2, 1e-2, 1.0, 2, NEVER);
        assert!(agg.ingest(0, 1e-4, 1.0).is_none());
        assert!(agg.ingest(1, 1e-4, 2.0).is_none()); // 1st confirmation
        assert!(agg.ingest(0, 1.0, 3.0).is_none()); // round 2 incomplete
        assert!(agg.ingest(1, 1e-4, 4.0).is_none()); // round 2 above tol: reset
        assert!(agg.ingest(0, 1e-4, 5.0).is_none());
        assert!(agg.ingest(1, 1e-4, 6.0).is_none()); // 1st again
        assert!(agg.ingest(0, 1e-4, 7.0).is_none());
        assert!(agg.ingest(1, 1e-4, 8.0).is_some()); // 2nd → decide
    }

    #[test]
    fn ingest_after_decision_is_inert() {
        let mut agg = RootAggregator::new(1, 1.0, 1.0, 1, NEVER);
        assert!(agg.ingest(0, 0.0, 1.0).is_some());
        assert!(agg.ingest(0, 0.0, 2.0).is_none());
    }

    #[test]
    fn zero_norm_b_is_guarded() {
        let mut agg = RootAggregator::new(1, 1e-8, 0.0, 1, NEVER);
        // Does not divide by zero; a zero residual still terminates.
        assert!(agg.ingest(0, 0.0, 1.0).is_some());
    }

    #[test]
    fn dead_rank_is_excluded_after_the_staleness_timeout() {
        // Rank 1 reports once and dies; without the timeout the root would
        // wait for it forever. With it, detection fires on ranks {0, 2}.
        let mut agg = RootAggregator::new(3, 1e-3, 1.0, 1, 100.0);
        assert!(agg.ingest(1, 0.5, 10.0).is_none());
        assert!(agg.ingest(0, 1e-5, 20.0).is_none());
        assert!(agg.ingest(2, 1e-5, 30.0).is_none()); // round judged: 0.5 keeps it above tol
        assert!(agg.ingest(0, 1e-5, 120.0).is_none()); // round reset consumed freshness
        let rel = agg
            .ingest(2, 1e-5, 150.0)
            .expect("rank 1 now 140 ticks stale → excluded, live round decides");
        // Rank 1's 0.5 contribution is excluded from the aggregate.
        assert!(rel < 1e-3, "aggregate {rel}");
        assert_eq!(agg.excluded_ranks(), &[1]);
    }

    #[test]
    fn never_reporting_rank_times_out_from_run_start() {
        let mut agg = RootAggregator::new(2, 1e-3, 1.0, 1, 50.0);
        assert!(agg.ingest(0, 1e-6, 10.0).is_none()); // rank 1 not stale yet
        let rel = agg.ingest(0, 1e-6, 90.0).expect("rank 1 presumed dead");
        assert!(rel < 1e-3);
        assert_eq!(agg.excluded_ranks(), &[1]);
    }

    #[test]
    fn resurrected_rank_rejoins_coverage_and_the_aggregate() {
        let mut agg = RootAggregator::new(2, 1e-3, 1.0, 1, 50.0);
        assert!(agg.ingest(0, 1e-6, 10.0).is_none());
        // Rank 1 recovers and reports an above-tolerance norm: it must be
        // counted again, blocking detection.
        assert!(agg.ingest(1, 0.7, 60.0).is_none());
        assert!(!agg.decided());
        // Both converge; the next full round decides with no exclusions.
        assert!(agg.ingest(0, 1e-6, 70.0).is_none()); // round incomplete
        assert!(agg.ingest(1, 1e-6, 80.0).is_some()); // full round, below tol
        assert!(agg.excluded_ranks().is_empty());
    }
}
