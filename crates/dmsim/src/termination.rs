//! Distributed termination detection (the paper's §VI future work).
//!
//! The paper's distributed solver stops after a fixed iteration count
//! because "if it is desired that some global criteria is met … a more
//! sophisticated scheme must be employed. … we leave this latter topic for
//! future research." This module supplies that scheme for the simulator.
//!
//! ## Protocol
//!
//! A root rank (0) aggregates periodic asynchronous residual reports:
//!
//! 1. every `check_interval` local iterations, each rank computes the
//!    L1-norm contribution of its *owned* residual rows (using its current
//!    ghost values) and sends it to the root — one small message, no
//!    barrier, no synchronisation of iteration counts;
//! 2. the root keeps the latest report per rank; when every rank has
//!    reported and the summed norm satisfies `Σ ‖r_owned‖₁ < tol·‖b‖₁`,
//!    it broadcasts a stop message;
//! 3. a rank receiving the stop finishes its in-flight sweep and retires.
//!
//! ## Why one confirmation round suffices here
//!
//! Reports are stale by up to `check_interval` iterations plus a network
//! latency, so the root's sum is a snapshot of the *past*. The paper's own
//! Theorem 1 closes the gap: for weakly diagonally dominant systems the
//! global residual 1-norm is non-increasing under any relaxation schedule,
//! so a past global norm below tolerance implies the present one is too —
//! the protocol never stops early. (Per-rank reports taken at different
//! times with inconsistent ghost views can misestimate the instantaneous
//! global norm; [`TerminationStats::detected_residual`] vs the true final
//! residual quantifies that gap, and the integration tests bound it.)
//! For non-W.D.D. systems the root demands `confirmations` consecutive
//! below-tolerance rounds before stopping, trading detection latency for
//! robustness.

/// Configuration of the detection protocol.
#[derive(Debug, Clone, Copy)]
pub struct TerminationProtocol {
    /// Local iterations between residual reports.
    pub check_interval: u64,
    /// Consecutive below-tolerance aggregate rounds the root requires
    /// before broadcasting the stop (1 is safe for W.D.D. systems by
    /// Theorem 1; use ≥ 2 otherwise).
    pub confirmations: u32,
    /// The root stops at `aggregate < safety_factor × tol`. Per-rank
    /// reports are taken at different instants with different ghost views,
    /// so their sum can *underestimate* the instantaneous global norm; a
    /// factor of 0.5 absorbs that inconsistency in practice (the
    /// integration tests check the true residual at stop).
    pub safety_factor: f64,
}

impl Default for TerminationProtocol {
    fn default() -> Self {
        TerminationProtocol {
            check_interval: 5,
            confirmations: 1,
            safety_factor: 0.5,
        }
    }
}

/// What the protocol observed during a run.
#[derive(Debug, Clone, Default)]
pub struct TerminationStats {
    /// Report messages sent to the root.
    pub reports_sent: u64,
    /// Stop broadcasts issued (0 when the run ended by other means).
    pub stops_sent: u64,
    /// Simulated time at which the root decided to stop, if it did.
    pub detected_at: Option<f64>,
    /// The aggregate relative residual the root saw when it decided.
    pub detected_residual: Option<f64>,
}

/// Root-side aggregation state.
#[derive(Debug)]
pub struct RootAggregator {
    latest: Vec<Option<f64>>,
    norm_b: f64,
    tol: f64,
    confirmations_needed: u32,
    confirmations_seen: u32,
    decided: bool,
}

impl RootAggregator {
    /// Creates the aggregator for `nparts` ranks with tolerance `tol`
    /// relative to `norm_b = ‖b‖₁`.
    pub fn new(nparts: usize, tol: f64, norm_b: f64, confirmations: u32) -> Self {
        RootAggregator {
            latest: vec![None; nparts],
            norm_b: norm_b.max(f64::MIN_POSITIVE),
            tol,
            confirmations_needed: confirmations.max(1),
            confirmations_seen: 0,
            decided: false,
        }
    }

    /// Ingests a report; returns `Some(aggregate relative residual)` when
    /// this report completes a below-tolerance round that reaches the
    /// confirmation count — i.e. the root should broadcast the stop now.
    pub fn ingest(&mut self, rank: usize, local_norm: f64) -> Option<f64> {
        if self.decided {
            return None;
        }
        self.latest[rank] = Some(local_norm);
        if self.latest.iter().any(|v| v.is_none()) {
            return None;
        }
        let total: f64 = self.latest.iter().map(|v| v.unwrap()).sum();
        let rel = total / self.norm_b;
        if rel < self.tol {
            self.confirmations_seen += 1;
            if self.confirmations_seen >= self.confirmations_needed {
                self.decided = true;
                return Some(rel);
            }
        } else {
            self.confirmations_seen = 0;
        }
        None
    }

    /// Whether the stop decision has been made.
    pub fn decided(&self) -> bool {
        self.decided
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waits_for_every_rank_before_judging() {
        let mut agg = RootAggregator::new(3, 1e-3, 1.0, 1);
        assert!(agg.ingest(0, 0.0).is_none());
        assert!(agg.ingest(1, 0.0).is_none());
        // Last rank completes the round; everything is below tolerance.
        let rel = agg.ingest(2, 1e-5).expect("should decide");
        assert!(rel < 1e-3);
        assert!(agg.decided());
    }

    #[test]
    fn above_tolerance_rounds_reset_confirmations() {
        let mut agg = RootAggregator::new(2, 1e-2, 1.0, 2);
        assert!(agg.ingest(0, 1e-4).is_none());
        assert!(agg.ingest(1, 1e-4).is_none()); // 1st confirmation
        assert!(agg.ingest(0, 1.0).is_none()); // resets
        assert!(agg.ingest(0, 1e-4).is_none()); // 1st again
        assert!(agg.ingest(1, 1e-4).is_some()); // 2nd → decide
    }

    #[test]
    fn ingest_after_decision_is_inert() {
        let mut agg = RootAggregator::new(1, 1.0, 1.0, 1);
        assert!(agg.ingest(0, 0.0).is_some());
        assert!(agg.ingest(0, 0.0).is_none());
    }

    #[test]
    fn zero_norm_b_is_guarded() {
        let mut agg = RootAggregator::new(1, 1e-8, 0.0, 1);
        // Does not divide by zero; a zero residual still terminates.
        assert!(agg.ingest(0, 0.0).is_some());
    }
}
