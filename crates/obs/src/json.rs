//! Minimal JSON value model and recursive-descent parser.
//!
//! The workspace's vendored `serde` is an inert marker stub, so snapshots
//! are written by hand (deterministically — see `snapshot.rs`) and read
//! back through this parser for `aj obs summary` and CI validation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects use [`BTreeMap`] so re-serialization is
/// deterministic too.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Parses a JSON document. Errors carry the byte offset of the failure.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Appends `s` as a JSON string literal (with escaping) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` deterministically: integral values print without a
/// fractional part, others use shortest-roundtrip `{}` formatting.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        let _ = write!(out, "{:.1}", v);
    } else if v.is_finite() {
        let _ = write!(out, "{}", v);
    } else {
        // JSON has no Inf/NaN; encode as null.
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"x": true, "y": null}, "s": "hi\n"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("x"), Some(&Value::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi\n"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\u{0001}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{0001}"));
    }

    #[test]
    fn f64_formatting() {
        let mut out = String::new();
        write_f64(&mut out, 3.0);
        assert_eq!(out, "3.0");
        out.clear();
        write_f64(&mut out, 0.25);
        assert_eq!(out, "0.25");
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
