//! Fixed-bucket base-2 log-scale histogram with exact merge.

/// Number of buckets: one for zero plus one per bit position of a `u64`.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index for a value: `0` holds exactly the value 0, bucket `k ≥ 1`
/// holds values in `[2^(k-1), 2^k)`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Lower/upper bounds (inclusive) of a bucket's value range.
fn bucket_range(k: usize) -> (u64, u64) {
    if k == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (k - 1);
        let hi = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
        (lo, hi)
    }
}

/// A base-2 log-scale histogram over `u64` samples.
///
/// Merging is bucket-wise addition, which makes it exact (no re-sampling
/// error), associative and commutative — per-thread or per-rank shards can
/// be merged in any order and produce the same aggregate. Quantile queries
/// return *bounds* `(lo, hi)`: the true sample quantile is guaranteed to
/// lie in `[lo, hi]`, where the interval is a single bucket's value range
/// tightened by the observed min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// Records one sample. Never allocates.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Merges another histogram into this one (exact: bucket-wise add).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Bounds `(lo, hi)` on the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the
    /// recorded samples: the true sample quantile lies in `[lo, hi]`.
    /// Returns `None` when empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the quantile sample, 1-based, nearest-rank definition.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_range(k);
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        // Unreachable when counts are consistent; fall back to max.
        Some((self.max, self.max))
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (k, c))
            .collect()
    }

    /// Rebuilds a histogram from snapshot fields (used by JSON parsing).
    pub fn from_parts(count: u64, sum: u64, min: u64, max: u64, pairs: &[(usize, u64)]) -> Self {
        let mut buckets = [0u64; HIST_BUCKETS];
        for &(k, c) in pairs {
            if k < HIST_BUCKETS {
                buckets[k] = c;
            }
        }
        Histogram {
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for k in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_range(k);
            assert_eq!(bucket_of(lo), k);
            assert_eq!(bucket_of(hi), k);
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile_bounds(0.5), None);
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 21.2).abs() < 1e-12);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..50u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 0..70u64 {
            b.record(v * 7 + 1);
            whole.record(v * 7 + 1);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
    }

    #[test]
    fn quantile_bounds_contain_true_quantile() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i % 977).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            let truth = sorted[rank];
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert!(
                lo <= truth && truth <= hi,
                "q={q}: true {truth} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn roundtrip_from_parts() {
        let mut h = Histogram::new();
        for v in [5, 9, 9, 1 << 40] {
            h.record(v);
        }
        let back = Histogram::from_parts(
            h.count(),
            h.sum(),
            h.min().unwrap(),
            h.max().unwrap(),
            &h.nonzero_buckets(),
        );
        assert_eq!(back, h);
    }
}
