//! Bounded per-rank span-event ring buffer.

use std::collections::VecDeque;

/// What happened at a point in a rank's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A sweep (one pass over the rank's rows) began.
    SweepStart,
    /// A sweep finished.
    SweepEnd,
    /// A boundary put was sent to a neighbour.
    PutSend,
    /// A boundary put landed from a neighbour.
    PutArrive,
    /// The rank stalled waiting on data (async staleness timeout path).
    Stall,
    /// The rank crashed (fault injection).
    Crash,
    /// The rank recovered from a crash.
    Recover,
    /// A termination-protocol round advanced.
    TermRound,
    /// The controller shrank the relaxation parameters toward the
    /// delay-safe floor.
    CtrlShrink,
    /// The controller widened the parameters back toward their base.
    CtrlWiden,
    /// The controller switched a stalled momentum method to first-order.
    CtrlSwitch,
    /// The controller shed a persistently stale worker from its aggregate.
    CtrlShed,
    /// The controller requested an outer rescue and stopped the run.
    CtrlRescue,
}

impl SpanKind {
    /// Stable lowercase name used in JSON and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::SweepStart => "sweep_start",
            SpanKind::SweepEnd => "sweep_end",
            SpanKind::PutSend => "put_send",
            SpanKind::PutArrive => "put_arrive",
            SpanKind::Stall => "stall",
            SpanKind::Crash => "crash",
            SpanKind::Recover => "recover",
            SpanKind::TermRound => "term_round",
            SpanKind::CtrlShrink => "ctrl_shrink",
            SpanKind::CtrlWiden => "ctrl_widen",
            SpanKind::CtrlSwitch => "ctrl_switch",
            SpanKind::CtrlShed => "ctrl_shed",
            SpanKind::CtrlRescue => "ctrl_rescue",
        }
    }

    /// Parses the stable name back (inverse of [`SpanKind::name`]).
    pub fn from_name(s: &str) -> Option<SpanKind> {
        Some(match s {
            "sweep_start" => SpanKind::SweepStart,
            "sweep_end" => SpanKind::SweepEnd,
            "put_send" => SpanKind::PutSend,
            "put_arrive" => SpanKind::PutArrive,
            "stall" => SpanKind::Stall,
            "crash" => SpanKind::Crash,
            "recover" => SpanKind::Recover,
            "term_round" => SpanKind::TermRound,
            "ctrl_shrink" => SpanKind::CtrlShrink,
            "ctrl_widen" => SpanKind::CtrlWiden,
            "ctrl_switch" => SpanKind::CtrlSwitch,
            "ctrl_shed" => SpanKind::CtrlShed,
            "ctrl_rescue" => SpanKind::CtrlRescue,
            _ => return None,
        })
    }

    /// One-character glyph for ASCII timeline rendering.
    pub fn glyph(&self) -> char {
        match self {
            SpanKind::SweepStart => '(',
            SpanKind::SweepEnd => ')',
            SpanKind::PutSend => '>',
            SpanKind::PutArrive => '<',
            SpanKind::Stall => '~',
            SpanKind::Crash => 'X',
            SpanKind::Recover => '^',
            SpanKind::TermRound => 'T',
            SpanKind::CtrlShrink => 'v',
            SpanKind::CtrlWiden => 'w',
            SpanKind::CtrlSwitch => 's',
            SpanKind::CtrlShed => '-',
            SpanKind::CtrlRescue => 'R',
        }
    }
}

/// One timeline entry: an event at a virtual-time tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Virtual-time tick (or wall-clock ns for real-thread engines).
    pub tick: u64,
    /// What happened.
    pub kind: SpanKind,
}

/// A bounded ring of [`SpanEvent`]s for one rank. Pushes are O(1) and
/// allocation-free after construction; once full, the oldest event is
/// dropped (and counted) so the ring always holds the most recent window.
/// Events are stored in push order, which for a single-owner rank is
/// non-decreasing tick order.
#[derive(Debug, Clone)]
pub struct Timeline {
    events: VecDeque<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

impl Timeline {
    /// A ring holding at most `capacity` events (0 disables recording).
    pub fn new(capacity: usize) -> Self {
        Timeline {
            events: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, tick: u64, kind: SpanKind) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(SpanEvent { tick, kind });
    }

    /// Events oldest-first.
    pub fn events(&self) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted (or discarded when capacity is 0).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut t = Timeline::new(3);
        for i in 0..5u64 {
            t.push(i, SpanKind::SweepEnd);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let ticks: Vec<u64> = t.events().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Timeline::new(0);
        t.push(1, SpanKind::Crash);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in [
            SpanKind::SweepStart,
            SpanKind::SweepEnd,
            SpanKind::PutSend,
            SpanKind::PutArrive,
            SpanKind::Stall,
            SpanKind::Crash,
            SpanKind::Recover,
            SpanKind::TermRound,
            SpanKind::CtrlShrink,
            SpanKind::CtrlWiden,
            SpanKind::CtrlSwitch,
            SpanKind::CtrlShed,
            SpanKind::CtrlRescue,
        ] {
            assert_eq!(SpanKind::from_name(k.name()), Some(k));
        }
        assert_eq!(SpanKind::from_name("bogus"), None);
    }
}
