//! Lock-free scalar metrics shared across real threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter (relaxed atomics: totals are exact
/// once all writers have finished, which is when snapshots are taken).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins floating-point gauge stored as `f64` bits.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                    c.add(10);
                });
            }
        });
        assert_eq!(c.get(), 4 * 1010);
    }

    #[test]
    fn gauge_holds_last_value() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }
}
