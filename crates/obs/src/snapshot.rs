//! Immutable merged result of a run: counters, gauges, histograms and
//! per-rank timelines, serializable to deterministic JSON and CSV.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::json::{self, Value};
use crate::timeline::{SpanEvent, SpanKind, Timeline};

/// Schema tag embedded in every snapshot JSON document.
pub const SCHEMA: &str = "aj-obs/1";

/// One rank's retained timeline window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSnapshot {
    /// Rank (or worker/thread) index.
    pub rank: usize,
    /// Events evicted from the ring before the snapshot.
    pub dropped: u64,
    /// Retained events, oldest first, non-decreasing tick order.
    pub events: Vec<SpanEvent>,
}

/// The merged, immutable observability result of a run.
///
/// All maps are [`BTreeMap`] and timelines are sorted by rank, so
/// [`Snapshot::to_json`] is byte-deterministic: identical runs produce
/// bit-identical documents (a property pinned by the golden snapshot test
/// in `crates/dmsim/tests/determinism.rs`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Named monotonic totals (e.g. `relaxations`, `puts_sent`).
    pub counters: BTreeMap<String, u64>,
    /// Named point-in-time values (e.g. `final_residual`).
    pub gauges: BTreeMap<String, f64>,
    /// Named distributions; per-rank shards use `name/rank{N}` keys.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-rank event windows, sorted by rank.
    pub timelines: Vec<TimelineSnapshot>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Sets a counter total.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Adds to a counter total (creating it at zero).
    pub fn add_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Sets a gauge value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Merges a histogram shard into the named aggregate.
    pub fn merge_histogram(&mut self, name: &str, shard: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(shard);
    }

    /// Records one rank's timeline (call in rank order, or rely on the
    /// sort in [`Snapshot::to_json`]).
    pub fn push_timeline(&mut self, rank: usize, timeline: &Timeline) {
        self.timelines.push(TimelineSnapshot {
            rank,
            dropped: timeline.dropped(),
            events: timeline.events().copied().collect(),
        });
        self.timelines.sort_by_key(|t| t.rank);
    }

    /// The per-rank shards of a histogram family: keys of the form
    /// `"{family}/rank{N}"`, returned as `(N, histogram)` sorted by rank.
    pub fn per_rank(&self, family: &str) -> Vec<(usize, &Histogram)> {
        let prefix = format!("{family}/rank");
        let mut out: Vec<(usize, &Histogram)> = self
            .histograms
            .iter()
            .filter_map(|(k, h)| {
                k.strip_prefix(&prefix)
                    .and_then(|r| r.parse::<usize>().ok())
                    .map(|r| (r, h))
            })
            .collect();
        out.sort_by_key(|(r, _)| *r);
        out
    }

    /// The aggregate of a histogram family across all its per-rank shards
    /// (plus the bare `family` key if present).
    pub fn family_total(&self, family: &str) -> Histogram {
        let mut total = self.histograms.get(family).cloned().unwrap_or_default();
        for (_, h) in self.per_rank(family) {
            total.merge(h);
        }
        total
    }

    /// Distinct histogram family names (`"a/rank0"` and `"a/rank1"` are
    /// one family `"a"`; a bare key is its own family).
    pub fn families(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .histograms
            .keys()
            .map(|k| match k.rfind("/rank") {
                Some(i) if k[i + 5..].chars().all(|c| c.is_ascii_digit()) && i + 5 < k.len() => {
                    k[..i].to_string()
                }
                _ => k.clone(),
            })
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Serializes to deterministic JSON (single line, sorted keys, sparse
    /// histogram buckets as `[bucket, count]` pairs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":");
        json::write_escaped(&mut out, SCHEMA);
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(&mut out, k);
            out.push(':');
            json::write_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_escaped(&mut out, k);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0)
            );
            for (j, (b, c)) in h.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{b},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("},\"timelines\":[");
        for (i, t) in self.timelines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rank\":{},\"dropped\":{},\"events\":[",
                t.rank, t.dropped
            );
            for (j, e) in t.events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},\"{}\"]", e.tick, e.kind.name());
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`].
    pub fn from_json(input: &str) -> Result<Snapshot, String> {
        let doc = json::parse(input)?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing schema tag")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (want '{SCHEMA}')"));
        }
        let mut snap = Snapshot::new();
        if let Some(obj) = doc.get("counters").and_then(Value::as_obj) {
            for (k, v) in obj {
                let n = v
                    .as_u64()
                    .ok_or_else(|| format!("counter '{k}' not a u64"))?;
                snap.counters.insert(k.clone(), n);
            }
        }
        if let Some(obj) = doc.get("gauges").and_then(Value::as_obj) {
            for (k, v) in obj {
                let n = v
                    .as_f64()
                    .ok_or_else(|| format!("gauge '{k}' not a number"))?;
                snap.gauges.insert(k.clone(), n);
            }
        }
        if let Some(obj) = doc.get("histograms").and_then(Value::as_obj) {
            for (k, v) in obj {
                let get = |f: &str| {
                    v.get(f)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("histogram '{k}' missing '{f}'"))
                };
                let (count, sum, min, max) = (get("count")?, get("sum")?, get("min")?, get("max")?);
                let mut pairs = Vec::new();
                for pair in v
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("histogram '{k}' missing buckets"))?
                {
                    let p = pair.as_arr().ok_or("bucket entry not a pair")?;
                    if p.len() != 2 {
                        return Err("bucket entry not a pair".into());
                    }
                    pairs.push((
                        p[0].as_u64().ok_or("bad bucket index")? as usize,
                        p[1].as_u64().ok_or("bad bucket count")?,
                    ));
                }
                snap.histograms.insert(
                    k.clone(),
                    Histogram::from_parts(count, sum, min, max, &pairs),
                );
            }
        }
        if let Some(arr) = doc.get("timelines").and_then(Value::as_arr) {
            for t in arr {
                let rank = t
                    .get("rank")
                    .and_then(Value::as_u64)
                    .ok_or("timeline missing rank")? as usize;
                let dropped = t
                    .get("dropped")
                    .and_then(Value::as_u64)
                    .ok_or("timeline missing dropped")?;
                let mut events = Vec::new();
                for e in t
                    .get("events")
                    .and_then(Value::as_arr)
                    .ok_or("timeline missing events")?
                {
                    let pair = e.as_arr().ok_or("event not a pair")?;
                    if pair.len() != 2 {
                        return Err("event not a pair".into());
                    }
                    let tick = pair[0].as_u64().ok_or("bad event tick")?;
                    let kind = pair[1]
                        .as_str()
                        .and_then(SpanKind::from_name)
                        .ok_or("unknown event kind")?;
                    events.push(SpanEvent { tick, kind });
                }
                snap.timelines.push(TimelineSnapshot {
                    rank,
                    dropped,
                    events,
                });
            }
            snap.timelines.sort_by_key(|t| t.rank);
        }
        Ok(snap)
    }

    /// Long-form CSV: one row per scalar/field/event, deterministic order.
    /// Columns: `kind,name,field,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter,{k},,{v}");
        }
        for (k, v) in &self.gauges {
            let mut num = String::new();
            json::write_f64(&mut num, *v);
            let _ = writeln!(out, "gauge,{k},,{num}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(out, "hist,{k},count,{}", h.count());
            let _ = writeln!(out, "hist,{k},sum,{}", h.sum());
            let _ = writeln!(out, "hist,{k},min,{}", h.min().unwrap_or(0));
            let _ = writeln!(out, "hist,{k},max,{}", h.max().unwrap_or(0));
            for (b, c) in h.nonzero_buckets() {
                let _ = writeln!(out, "hist,{k},bucket{b},{c}");
            }
        }
        for t in &self.timelines {
            for e in &t.events {
                let _ = writeln!(out, "timeline,rank{},{},{}", t.rank, e.kind.name(), e.tick);
            }
        }
        out
    }

    /// Renders per-rank p50/p95/max quantile-bound lines for each histogram
    /// family plus an ASCII timeline — the body of `aj obs summary`.
    pub fn render_summary(&self, width: usize) -> String {
        let mut out = String::new();
        for family in self.families() {
            let per_rank = self.per_rank(&family);
            let total = self.family_total(&family);
            if total.count() == 0 {
                continue;
            }
            let _ = writeln!(out, "histogram {family} ({} samples)", total.count());
            let mut row = |label: &str, h: &Histogram| {
                let p50 = h.quantile_bounds(0.50);
                let p95 = h.quantile_bounds(0.95);
                let fmt = |b: Option<(u64, u64)>| match b {
                    Some((lo, hi)) if lo == hi => format!("{lo}"),
                    Some((lo, hi)) => format!("{lo}..{hi}"),
                    None => "-".into(),
                };
                let _ = writeln!(
                    out,
                    "  {label:<10} n={:<8} p50={:<12} p95={:<12} max={}",
                    h.count(),
                    fmt(p50),
                    fmt(p95),
                    h.max().map(|m| m.to_string()).unwrap_or_else(|| "-".into())
                );
            };
            for (rank, h) in &per_rank {
                row(&format!("rank{rank}"), h);
            }
            if per_rank.len() > 1 || per_rank.is_empty() {
                row("all", &total);
            }
        }
        out.push_str(&self.render_timelines(width));
        out
    }

    /// ASCII per-rank timelines: one lane per rank, events placed
    /// proportionally to their tick across `width` columns.
    pub fn render_timelines(&self, width: usize) -> String {
        let width = width.max(16);
        let mut out = String::new();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for t in &self.timelines {
            for e in &t.events {
                lo = lo.min(e.tick);
                hi = hi.max(e.tick);
            }
        }
        if lo > hi {
            return out;
        }
        let span = (hi - lo).max(1);
        let _ = writeln!(
            out,
            "timeline ticks {lo}..{hi}  ( ( sweep-start  ) sweep-end  > put-send  < put-arrive  ~ stall  X crash  ^ recover  T term-round )"
        );
        for t in &self.timelines {
            let mut lane = vec![b'-'; width];
            for e in &t.events {
                let col = ((e.tick - lo) as u128 * (width as u128 - 1) / span as u128) as usize;
                lane[col] = e.kind.glyph() as u8;
            }
            let dropped = if t.dropped > 0 {
                format!("  (+{} dropped)", t.dropped)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  rank{:<4} |{}|{}",
                t.rank,
                String::from_utf8(lane).unwrap(),
                dropped
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::new();
        snap.set_counter("relaxations", 42);
        snap.add_counter("puts_sent", 7);
        snap.set_gauge("final_residual", 1.25e-3);
        let mut h = Histogram::new();
        for v in [0, 1, 5, 9, 300] {
            h.record(v);
        }
        snap.merge_histogram("staleness/rank0", &h);
        snap.merge_histogram("staleness/rank1", &h);
        let mut tl = Timeline::new(8);
        tl.push(10, SpanKind::SweepStart);
        tl.push(20, SpanKind::SweepEnd);
        tl.push(25, SpanKind::Crash);
        snap.push_timeline(0, &tl);
        snap
    }

    #[test]
    fn json_roundtrip_is_lossless_and_deterministic() {
        let snap = sample_snapshot();
        let j1 = snap.to_json();
        let j2 = snap.to_json();
        assert_eq!(j1, j2);
        let back = Snapshot::from_json(&j1).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), j1);
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(Snapshot::from_json(r#"{"schema":"nope"}"#).is_err());
        assert!(Snapshot::from_json("[]").is_err());
    }

    #[test]
    fn per_rank_and_family_total() {
        let snap = sample_snapshot();
        let shards = snap.per_rank("staleness");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].0, 0);
        assert_eq!(snap.family_total("staleness").count(), 10);
        assert_eq!(snap.families(), vec!["staleness".to_string()]);
    }

    #[test]
    fn csv_has_expected_rows() {
        let csv = sample_snapshot().to_csv();
        assert!(csv.starts_with("kind,name,field,value\n"));
        assert!(csv.contains("counter,relaxations,,42\n"));
        assert!(csv.contains("hist,staleness/rank0,count,5\n"));
        assert!(csv.contains("timeline,rank0,crash,25\n"));
    }

    #[test]
    fn summary_renders_quantiles_and_lanes() {
        let text = sample_snapshot().render_summary(40);
        assert!(text.contains("histogram staleness"));
        assert!(text.contains("rank0"));
        assert!(text.contains("p95="));
        assert!(text.contains("|"));
        assert!(text.contains("X"));
    }

    #[test]
    fn empty_snapshot_renders_nothing() {
        let snap = Snapshot::new();
        assert_eq!(snap.render_timelines(40), "");
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
    }
}
