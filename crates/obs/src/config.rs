//! Recording configuration: off / sampled 1-in-N / full.

/// How much an engine records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// Record nothing; engines skip every obs branch (zero overhead).
    Off,
    /// Record roughly one in `N` high-frequency observations (sweeps,
    /// reads). Low-frequency events (crashes, termination decisions) are
    /// always recorded. `Sampled(1)` is equivalent to `Full`.
    Sampled(u32),
    /// Record every observation.
    Full,
}

/// Observability configuration carried by solver configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Recording mode.
    pub mode: ObsMode,
    /// Ring-buffer capacity of each rank's [`crate::Timeline`]. Older
    /// events are overwritten (and counted as dropped) once full.
    pub timeline_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::off()
    }
}

impl ObsConfig {
    /// No recording at all.
    pub fn off() -> Self {
        ObsConfig {
            mode: ObsMode::Off,
            timeline_capacity: 0,
        }
    }

    /// Record one in `n` high-frequency observations (the overhead-budget
    /// mode; the bench guard pins `sampled(16)` to ≤ 5 % on
    /// `dmsim_baseline`).
    pub fn sampled(n: u32) -> Self {
        ObsConfig {
            mode: ObsMode::Sampled(n.max(1)),
            timeline_capacity: 512,
        }
    }

    /// Record everything.
    pub fn full() -> Self {
        ObsConfig {
            mode: ObsMode::Full,
            timeline_capacity: 4096,
        }
    }

    /// Whether any recording happens.
    pub fn is_on(&self) -> bool {
        self.mode != ObsMode::Off
    }

    /// Sampling stride: `0` = off, `1` = every observation, `n` = 1-in-n.
    pub fn stride(&self) -> u64 {
        match self.mode {
            ObsMode::Off => 0,
            ObsMode::Sampled(n) => n.max(1) as u64,
            ObsMode::Full => 1,
        }
    }

    /// A deterministic 1-in-N sampler for this config.
    pub fn sampler(&self) -> Sampler {
        Sampler::new(self.stride())
    }
}

/// Deterministic stride sampler: `hit()` returns `true` on every `stride`th
/// call (and never for stride 0). Each shard owns its own sampler so the
/// decision sequence is independent of other shards' activity.
#[derive(Debug, Clone)]
pub struct Sampler {
    stride: u64,
    until_hit: u64,
}

impl Sampler {
    /// A sampler firing every `stride` calls (`0` = never).
    pub fn new(stride: u64) -> Self {
        Sampler {
            stride,
            // Fire on the *first* observation so short runs still record.
            until_hit: stride.min(1),
        }
    }

    /// Advances the sampler; `true` when this observation should record.
    #[inline]
    pub fn hit(&mut self) -> bool {
        if self.stride == 0 {
            return false;
        }
        self.until_hit -= 1;
        if self.until_hit == 0 {
            self.until_hit = self.stride;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_never_hits() {
        let mut s = ObsConfig::off().sampler();
        assert!(!ObsConfig::off().is_on());
        for _ in 0..100 {
            assert!(!s.hit());
        }
    }

    #[test]
    fn full_always_hits() {
        let mut s = ObsConfig::full().sampler();
        for _ in 0..100 {
            assert!(s.hit());
        }
    }

    #[test]
    fn sampled_hits_one_in_n_starting_with_the_first() {
        let mut s = ObsConfig::sampled(4).sampler();
        let hits: Vec<bool> = (0..9).map(|_| s.hit()).collect();
        assert_eq!(
            hits,
            vec![true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn sampled_zero_clamps_to_one() {
        assert_eq!(ObsConfig::sampled(0).stride(), 1);
    }
}
