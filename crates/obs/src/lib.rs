//! # aj-obs
//!
//! Unified observability for every execution engine in the workspace.
//!
//! The paper's empirical claims (§IV–§VI) are statements about
//! *distributions* — how stale the neighbour values each relaxation reads
//! are, how delays shift those distributions — yet point aggregates
//! (final residual, total puts) cannot answer them. This crate provides the
//! shared measurement substrate:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomics, shareable across real
//!   threads;
//! * [`Histogram`] — fixed-bucket base-2 log-scale histogram with **exact
//!   merge** (bucket-wise addition, so merging per-thread/per-rank shards is
//!   associative and commutative) and quantile *bounds* rather than fake
//!   point estimates;
//! * [`Timeline`] — a bounded ring buffer of per-rank span events (sweep
//!   end, put arrival, crash, recover, stall, …) that never reorders events
//!   within a rank;
//! * [`Snapshot`] — the merged, immutable result of a run, serializable to
//!   deterministic JSON (bit-identical for identical runs) and CSV, and
//!   parseable back for offline summaries;
//! * [`ObsConfig`] / [`Sampler`] — off / sampled 1-in-N / full recording,
//!   so instrumentation stays within a fixed overhead budget (off = zero
//!   cost: engines skip every obs branch through one `Option`).
//!
//! Steady-state recording allocates nothing: histograms are fixed arrays,
//! timelines are pre-sized rings, counters are single atomics. Allocation
//! happens only at setup (shard construction) and snapshot assembly.

mod config;
mod hist;
pub mod json;
mod metrics;
mod snapshot;
mod timeline;

pub use config::{ObsConfig, ObsMode, Sampler};
pub use hist::{Histogram, HIST_BUCKETS};
pub use metrics::{Counter, Gauge};
pub use snapshot::{Snapshot, TimelineSnapshot};
pub use timeline::{SpanEvent, SpanKind, Timeline};
