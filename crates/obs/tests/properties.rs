//! Property tests for the observability primitives.
//!
//! The histogram's exactness claims — merge is a lossless bucket-wise sum
//! (associative, commutative) and quantile *bounds* always bracket the true
//! nearest-rank sample quantile — are what let per-thread shards be merged
//! in any order and still report honest percentiles. The timeline's claim
//! is that a ring buffer never reorders: what survives is exactly the most
//! recent events, in push order.

use aj_obs::{Histogram, SpanKind, Timeline};
use proptest::prelude::*;

/// Samples spanning many orders of magnitude: a raw 64-bit draw shifted
/// right by 0..64 bits, so every bucket of the log-scale histogram gets
/// exercised (including 0 and u64::MAX).
fn samples(raw: &[(u64, usize)]) -> Vec<u64> {
    raw.iter().map(|&(v, shift)| v >> (shift % 64)).collect()
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// True nearest-rank quantile of a sample set (the definition
/// `quantile_bounds` promises to bracket).
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative_and_associative(
        ra in collection::vec((0u64..u64::MAX, 0usize..64), 0..120),
        rb in collection::vec((0u64..u64::MAX, 0usize..64), 0..120),
        rc in collection::vec((0u64..u64::MAX, 0usize..64), 0..120),
    ) {
        let (a, b, c) = (
            hist_of(&samples(&ra)),
            hist_of(&samples(&rb)),
            hist_of(&samples(&rc)),
        );

        // Commutative: a ⊕ b == b ⊕ a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Merging is lossless: the merged histogram equals recording the
        // concatenation directly.
        let mut all = samples(&ra);
        all.extend(samples(&rb));
        all.extend(samples(&rc));
        prop_assert_eq!(&ab_c, &hist_of(&all));
    }

    #[test]
    fn quantile_bounds_bracket_the_true_quantile(
        raw in collection::vec((0u64..u64::MAX, 0usize..64), 1..200),
        q_scan in 0.0f64..1.0,
    ) {
        let values = samples(&raw);
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [q_scan.max(1e-9), 0.5, 0.95, 1.0] {
            let truth = nearest_rank(&sorted, q);
            let (lo, hi) = h.quantile_bounds(q).expect("non-empty histogram");
            prop_assert!(
                lo <= truth && truth <= hi,
                "q={} truth {} outside bounds {}..{}", q, truth, lo, hi
            );
        }
        // The bounds are also clamped by the observed extremes.
        let (lo, _) = h.quantile_bounds(1e-9).unwrap();
        prop_assert!(lo >= *sorted.first().unwrap() || lo == h.min().unwrap());
    }

    #[test]
    fn timeline_keeps_the_newest_events_in_push_order(
        ticks in collection::vec(0u64..1_000_000, 0..150),
        capacity in 0usize..64,
        kind_picks in collection::vec(0usize..8, 0..150),
    ) {
        let kinds = [
            SpanKind::SweepStart,
            SpanKind::SweepEnd,
            SpanKind::PutSend,
            SpanKind::PutArrive,
            SpanKind::Stall,
            SpanKind::Crash,
            SpanKind::Recover,
            SpanKind::TermRound,
        ];
        let pushed: Vec<(u64, SpanKind)> = ticks
            .iter()
            .zip(kind_picks.iter().cycle())
            .map(|(&t, &k)| (t, kinds[k]))
            .collect();

        let mut tl = Timeline::new(capacity);
        for &(t, k) in &pushed {
            tl.push(t, k);
        }

        // The ring holds exactly the newest `capacity` events...
        let kept: Vec<(u64, SpanKind)> = tl.events().map(|e| (e.tick, e.kind)).collect();
        let expect_start = pushed.len().saturating_sub(capacity);
        prop_assert_eq!(&kept[..], &pushed[expect_start..]);
        // ...in push order (never reordered), with the remainder counted.
        prop_assert_eq!(tl.dropped(), expect_start as u64);
    }
}
