//! The sequential model executor (paper §VII-B, Figures 3 and 4).
//!
//! The model is "a mathematical simplification of actual asynchronous
//! computations": time advances in unit steps, every step relaxes the rows
//! the [`DelaySchedule`] activates using fully up-to-date information, and
//! the synchronous comparison pays the barrier cost (δ time units per
//! iteration when a thread is δ-delayed).

use crate::mask::ActiveMask;
use crate::propagation::{apply_method_step, apply_step};
use crate::schedule::DelaySchedule;
use aj_linalg::method::{method_iteration, ResolvedMethod};
use aj_linalg::vecops::{self, Norm};
use aj_linalg::{CsrMatrix, LinalgError};

/// Result of one model run.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// `(model time, relative residual)` samples; entry 0 is the initial
    /// residual at time 0.
    pub residual_history: Vec<(u64, f64)>,
    /// Final iterate.
    pub x: Vec<f64>,
    /// Total number of row relaxations performed.
    pub relaxations: u64,
    /// Whether the tolerance was reached within the step budget.
    pub converged: bool,
    /// Model steps executed.
    pub steps: u64,
}

impl ModelRun {
    /// First model time at which the relative residual dropped below `tol`,
    /// or `None` if it never did.
    pub fn time_to_tolerance(&self, tol: f64) -> Option<u64> {
        self.residual_history
            .iter()
            .find(|&&(_, r)| r < tol)
            .map(|&(t, _)| t)
    }

    /// Final relative residual.
    pub fn final_residual(&self) -> f64 {
        self.residual_history.last().map_or(f64::NAN, |&(_, r)| r)
    }
}

fn diag_inv_of(a: &CsrMatrix) -> Result<Vec<f64>, LinalgError> {
    a.diagonal()
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            if d == 0.0 {
                Err(LinalgError::ZeroDiagonal { row: i })
            } else {
                Ok(1.0 / d)
            }
        })
        .collect()
}

/// Runs the **asynchronous** model: at step `k` the schedule's mask is
/// relaxed, model time advances by 1. Terminates when the relative residual
/// (in `norm`) drops below `tol` or after `max_steps`.
pub fn run_async_model(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    schedule: &DelaySchedule,
    tol: f64,
    max_steps: u64,
    norm: Norm,
) -> Result<ModelRun, LinalgError> {
    let n = a.nrows();
    let diag_inv = diag_inv_of(a)?;
    let mut x = x0.to_vec();
    let nb = vecops::norm(b, norm).max(f64::MIN_POSITIVE);
    let mut history = vec![(0u64, a.residual_norm(&x, b, norm) / nb)];
    let mut relaxations = 0u64;
    let mut steps = 0u64;
    let mut converged = history[0].1 < tol;
    while !converged && steps < max_steps {
        let k = steps + 1;
        let mask = schedule.mask_at(n, k);
        apply_step(a, b, &diag_inv, &mask, &mut x);
        relaxations += mask.num_active() as u64;
        steps = k;
        let r = a.residual_norm(&x, b, norm) / nb;
        history.push((k, r));
        converged = r < tol;
    }
    Ok(ModelRun {
        residual_history: history,
        x,
        relaxations,
        converged,
        steps,
    })
}

/// Runs the **synchronous** model: every iteration relaxes all rows, but the
/// barrier stretches each iteration to `schedule.sync_iteration_cost()`
/// model-time units (δ when one thread is δ-delayed).
pub fn run_sync_model(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    schedule: &DelaySchedule,
    tol: f64,
    max_steps: u64,
    norm: Norm,
) -> Result<ModelRun, LinalgError> {
    let n = a.nrows();
    let diag_inv = diag_inv_of(a)?;
    let cost = schedule.sync_iteration_cost();
    let mut x = x0.to_vec();
    let nb = vecops::norm(b, norm).max(f64::MIN_POSITIVE);
    let mut history = vec![(0u64, a.residual_norm(&x, b, norm) / nb)];
    let mut relaxations = 0u64;
    let mut steps = 0u64;
    let mask = ActiveMask::all(n);
    let mut converged = history[0].1 < tol;
    // `max_steps` bounds *model time* so sync and async runs are comparable.
    while !converged && (steps + 1) * cost <= max_steps {
        steps += 1;
        apply_step(a, b, &diag_inv, &mask, &mut x);
        relaxations += n as u64;
        let r = a.residual_norm(&x, b, norm) / nb;
        history.push((steps * cost, r));
        converged = r < tol;
    }
    Ok(ModelRun {
        residual_history: history,
        x,
        relaxations,
        converged,
        steps,
    })
}

/// Runs the **asynchronous** model for an arbitrary relaxation method:
/// like [`run_async_model`], but each masked step updates per `method`
/// (momentum rows carry their per-row previous value; randomized selection
/// draws a residual-weighted subset of the mask). With
/// [`ResolvedMethod::Jacobi`] this reproduces [`run_async_model`] exactly.
#[allow(clippy::too_many_arguments)] // mirrors the run_*_model signature plus the method
pub fn run_async_model_method(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    schedule: &DelaySchedule,
    method: &ResolvedMethod,
    tol: f64,
    max_steps: u64,
    norm: Norm,
) -> Result<ModelRun, LinalgError> {
    let n = a.nrows();
    let diag_inv = diag_inv_of(a)?;
    let mut x = x0.to_vec();
    let mut x_prev = x0.to_vec();
    let nb = vecops::norm(b, norm).max(f64::MIN_POSITIVE);
    let mut history = vec![(0u64, a.residual_norm(&x, b, norm) / nb)];
    let mut relaxations = 0u64;
    let mut steps = 0u64;
    let mut converged = history[0].1 < tol;
    while !converged && steps < max_steps {
        let k = steps + 1;
        let mask = schedule.mask_at(n, k);
        relaxations +=
            apply_method_step(a, b, &diag_inv, &mask, method, k, &mut x, &mut x_prev) as u64;
        steps = k;
        let r = a.residual_norm(&x, b, norm) / nb;
        history.push((k, r));
        converged = r < tol;
    }
    Ok(ModelRun {
        residual_history: history,
        x,
        relaxations,
        converged,
        steps,
    })
}

/// Runs the **synchronous** model for an arbitrary relaxation method. The
/// iterate sequence is bit-identical to the dense reference
/// [`method_iteration`] (it *is* that iteration); the schedule only
/// stretches model time per iteration as in [`run_sync_model`].
#[allow(clippy::too_many_arguments)] // mirrors the run_*_model signature plus the method
pub fn run_sync_model_method(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    schedule: &DelaySchedule,
    method: &ResolvedMethod,
    tol: f64,
    max_steps: u64,
    norm: Norm,
) -> Result<ModelRun, LinalgError> {
    let diag_inv = diag_inv_of(a)?;
    let cost = schedule.sync_iteration_cost();
    let mut x_prev = x0.to_vec();
    let mut x = x0.to_vec();
    let mut x_next = vec![0.0; x.len()];
    let nb = vecops::norm(b, norm).max(f64::MIN_POSITIVE);
    let mut history = vec![(0u64, a.residual_norm(&x, b, norm) / nb)];
    let mut relaxations = 0u64;
    let mut steps = 0u64;
    let mut converged = history[0].1 < tol;
    while !converged && (steps + 1) * cost <= max_steps {
        relaxations +=
            method_iteration(a, b, &diag_inv, method, steps, &x, &x_prev, &mut x_next) as u64;
        std::mem::swap(&mut x_prev, &mut x);
        std::mem::swap(&mut x, &mut x_next);
        steps += 1;
        let r = a.residual_norm(&x, b, norm) / nb;
        history.push((steps * cost, r));
        converged = r < tol;
    }
    Ok(ModelRun {
        residual_history: history,
        x,
        relaxations,
        converged,
        steps,
    })
}

/// The Figure 3 quantity: `speedup = (sync model time to tol) /
/// (async model time to tol)` for one δ-delayed row. Returns
/// `(sync_time, async_time, speedup)`; `None` when either run fails to reach
/// the tolerance within `max_steps` of model time.
pub fn model_speedup(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    row: usize,
    delta: u64,
    tol: f64,
    max_steps: u64,
) -> Result<Option<(u64, u64, f64)>, LinalgError> {
    let schedule = DelaySchedule::single_slow_row(row, delta);
    let sync = run_sync_model(a, b, x0, &schedule, tol, max_steps, Norm::L1)?;
    let async_ = run_async_model(a, b, x0, &schedule, tol, max_steps, Norm::L1)?;
    match (sync.time_to_tolerance(tol), async_.time_to_tolerance(tol)) {
        (Some(ts), Some(ta)) if ta > 0 => Ok(Some((ts, ta, ts as f64 / ta as f64))),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_matrices::{fd, rhs};

    fn paper68() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = fd::paper_fd("fd68")
            .unwrap()
            .scale_to_unit_diagonal()
            .unwrap();
        let (b, x0) = rhs::paper_problem(a.nrows(), 42);
        (a, b, x0)
    }

    #[test]
    fn async_with_no_delay_equals_sync() {
        let (a, b, x0) = paper68();
        let s = DelaySchedule::None;
        let sync = run_sync_model(&a, &b, &x0, &s, 1e-3, 10_000, Norm::L1).unwrap();
        let asyn = run_async_model(&a, &b, &x0, &s, 1e-3, 10_000, Norm::L1).unwrap();
        assert!(sync.converged && asyn.converged);
        assert_eq!(sync.steps, asyn.steps);
        assert!(vecops::rel_diff(&sync.x, &asyn.x) < 1e-14);
    }

    #[test]
    fn delayed_async_still_converges_and_sync_pays_barrier() {
        let (a, b, x0) = paper68();
        let s = DelaySchedule::single_slow_row(34, 20);
        let asyn = run_async_model(&a, &b, &x0, &s, 1e-3, 200_000, Norm::L1).unwrap();
        assert!(asyn.converged, "async residual {}", asyn.final_residual());
        let sync = run_sync_model(&a, &b, &x0, &s, 1e-3, 200_000, Norm::L1).unwrap();
        assert!(sync.converged);
        let ts = sync.time_to_tolerance(1e-3).unwrap();
        let ta = asyn.time_to_tolerance(1e-3).unwrap();
        assert!(ts > ta, "sync {ts} should exceed async {ta}");
    }

    #[test]
    fn speedup_grows_with_delay() {
        // The Figure 3 shape: larger δ ⇒ larger async-over-sync speedup.
        let (a, b, x0) = paper68();
        let s5 = model_speedup(&a, &b, &x0, 34, 5, 1e-3, 500_000)
            .unwrap()
            .unwrap();
        let s50 = model_speedup(&a, &b, &x0, 34, 50, 1e-3, 500_000)
            .unwrap()
            .unwrap();
        assert!(
            s50.2 > s5.2,
            "speedup(50) = {} vs speedup(5) = {}",
            s50.2,
            s5.2
        );
        assert!(s50.2 > 5.0, "expected a large speedup, got {}", s50.2);
    }

    #[test]
    fn residual_never_increases_in_l1_for_wdd_matrix() {
        // Theorem 1 consequence: ‖Ĥ‖₁ = 1 ⇒ the residual 1-norm is
        // non-increasing no matter the masks.
        let (a, b, x0) = paper68();
        let s = DelaySchedule::Random {
            density: 0.4,
            seed: 5,
        };
        let run = run_async_model(&a, &b, &x0, &s, 0.0, 300, Norm::L1).unwrap();
        for w in run.residual_history.windows(2) {
            assert!(w[1].1 <= w[0].1 * (1.0 + 1e-12), "residual grew: {:?}", w);
        }
    }

    #[test]
    fn history_starts_at_time_zero_and_is_monotone_in_time() {
        let (a, b, x0) = paper68();
        let s = DelaySchedule::single_slow_row(10, 7);
        let run = run_sync_model(&a, &b, &x0, &s, 1e-3, 50_000, Norm::L1).unwrap();
        assert_eq!(run.residual_history[0].0, 0);
        for w in run.residual_history.windows(2) {
            assert_eq!(w[1].0 - w[0].0, 7, "sync time stride must equal δ");
        }
    }

    #[test]
    fn relaxation_counts_are_tracked() {
        let (a, b, x0) = paper68();
        let run =
            run_async_model(&a, &b, &x0, &DelaySchedule::None, 1e-2, 1_000, Norm::L1).unwrap();
        assert_eq!(run.relaxations, run.steps * 68);
    }

    #[test]
    fn jacobi_method_run_reproduces_the_plain_run_bitwise() {
        let (a, b, x0) = paper68();
        let s = DelaySchedule::Random {
            density: 0.6,
            seed: 3,
        };
        let plain = run_async_model(&a, &b, &x0, &s, 1e-4, 50_000, Norm::L1).unwrap();
        let via_method = run_async_model_method(
            &a,
            &b,
            &x0,
            &s,
            &ResolvedMethod::Jacobi,
            1e-4,
            50_000,
            Norm::L1,
        )
        .unwrap();
        assert_eq!(plain.x, via_method.x);
        assert_eq!(plain.relaxations, via_method.relaxations);
        assert_eq!(plain.residual_history, via_method.residual_history);
    }

    #[test]
    fn every_method_converges_under_a_delayed_schedule() {
        let (a, b, x0) = paper68();
        let s = DelaySchedule::Random {
            density: 0.7,
            seed: 12,
        };
        for method in [
            ResolvedMethod::Richardson1 { omega: 0.9 },
            ResolvedMethod::Richardson2 {
                omega: 0.9,
                beta: 0.3,
            },
            ResolvedMethod::RandomizedResidual {
                fraction: 0.5,
                seed: 4,
            },
        ] {
            let run =
                run_async_model_method(&a, &b, &x0, &s, &method, 1e-4, 500_000, Norm::L1).unwrap();
            assert!(
                run.converged,
                "{} stalled at {}",
                method.name(),
                run.final_residual()
            );
            assert!(run.relaxations > 0);
        }
    }

    #[test]
    fn rwr_relaxes_only_the_selected_fraction() {
        let (a, b, x0) = paper68();
        let method = ResolvedMethod::RandomizedResidual {
            fraction: 0.25,
            seed: 8,
        };
        let run = run_async_model_method(
            &a,
            &b,
            &x0,
            &DelaySchedule::None,
            &method,
            1e-3,
            100_000,
            Norm::L1,
        )
        .unwrap();
        // ⌈0.25·68⌉ = 17 rows per full-mask step.
        assert_eq!(run.relaxations, run.steps * 17);
    }

    #[test]
    fn sync_method_run_is_bit_identical_to_the_dense_reference() {
        let (a, b, x0) = paper68();
        let methods = [
            ResolvedMethod::Richardson1 { omega: 0.85 },
            ResolvedMethod::Richardson2 {
                omega: 0.9,
                beta: 0.35,
            },
            ResolvedMethod::RandomizedResidual {
                fraction: 0.5,
                seed: 21,
            },
        ];
        for method in methods {
            let run = run_sync_model_method(
                &a,
                &b,
                &x0,
                &DelaySchedule::None,
                &method,
                1e-5,
                200_000,
                Norm::L1,
            )
            .unwrap();
            let reference =
                aj_linalg::method::method_solve(&a, &b, &x0, &method, 1e-5, 200_000, Norm::L1)
                    .unwrap();
            assert!(run.converged && reference.converged, "{}", method.name());
            assert_eq!(run.x, reference.x, "{} drifted bitwise", method.name());
            assert_eq!(run.relaxations, reference.relaxations);
        }
    }
}
