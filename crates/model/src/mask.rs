//! Active-row sets `Ψ(k)` and their 0/1 diagonal indicator `D̂(k)`.

use aj_linalg::CsrMatrix;

/// The set of rows relaxed at one model step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveMask {
    active: Vec<bool>,
    count: usize,
}

impl ActiveMask {
    /// All rows active (synchronous Jacobi step).
    pub fn all(n: usize) -> Self {
        ActiveMask {
            active: vec![true; n],
            count: n,
        }
    }

    /// No rows active (identity step).
    pub fn none(n: usize) -> Self {
        ActiveMask {
            active: vec![false; n],
            count: 0,
        }
    }

    /// Only the listed rows active.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn from_rows(n: usize, rows: &[usize]) -> Self {
        let mut active = vec![false; n];
        let mut count = 0;
        for &r in rows {
            assert!(r < n, "row {r} out of range ({n})");
            if !active[r] {
                active[r] = true;
                count += 1;
            }
        }
        ActiveMask { active, count }
    }

    /// All rows *except* the listed delayed ones.
    pub fn all_except(n: usize, delayed: &[usize]) -> Self {
        let mut mask = Self::all(n);
        for &r in delayed {
            assert!(r < n, "row {r} out of range ({n})");
            if mask.active[r] {
                mask.active[r] = false;
                mask.count -= 1;
            }
        }
        mask
    }

    /// Deterministic pseudo-random mask where each row is active with
    /// probability `density`.
    pub fn random(n: usize, density: f64, seed: u64) -> Self {
        let mut state = seed
            .wrapping_mul(0xa0761d6478bd642f)
            .wrapping_add(0x9e3779b97f4a7c15);
        let mut active = vec![false; n];
        let mut count = 0;
        for slot in active.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            if u < density {
                *slot = true;
                count += 1;
            }
        }
        ActiveMask { active, count }
    }

    /// Problem size.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True when no rows exist (not merely no active rows).
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Whether row `i` relaxes this step.
    #[inline]
    pub fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Number of active rows `|Ψ(k)|`.
    pub fn num_active(&self) -> usize {
        self.count
    }

    /// Number of delayed rows `n − |Ψ(k)|`.
    pub fn num_delayed(&self) -> usize {
        self.active.len() - self.count
    }

    /// Ascending list of active rows.
    pub fn active_rows(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&i| self.active[i]).collect()
    }

    /// Ascending list of delayed rows.
    pub fn delayed_rows(&self) -> Vec<usize> {
        (0..self.active.len())
            .filter(|&i| !self.active[i])
            .collect()
    }

    /// The indicator matrix `D̂` as CSR (diagonal of 0/1).
    pub fn indicator_csr(&self) -> CsrMatrix {
        let diag: Vec<f64> = self
            .active
            .iter()
            .map(|&a| if a { 1.0 } else { 0.0 })
            .collect();
        CsrMatrix::from_diagonal(&diag)
    }

    /// Complement mask.
    pub fn complement(&self) -> ActiveMask {
        ActiveMask {
            active: self.active.iter().map(|&a| !a).collect(),
            count: self.active.len() - self.count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_counts() {
        let all = ActiveMask::all(5);
        assert_eq!(all.num_active(), 5);
        assert_eq!(all.num_delayed(), 0);
        let none = ActiveMask::none(5);
        assert_eq!(none.num_active(), 0);
        let some = ActiveMask::from_rows(5, &[1, 3, 3]);
        assert_eq!(some.num_active(), 2);
        assert_eq!(some.active_rows(), vec![1, 3]);
        let except = ActiveMask::all_except(5, &[0]);
        assert_eq!(except.num_delayed(), 1);
        assert_eq!(except.delayed_rows(), vec![0]);
    }

    #[test]
    fn indicator_matrix_is_diagonal_01() {
        let m = ActiveMask::from_rows(3, &[0, 2]);
        let d = m.indicator_csr();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(d.get(2, 2), 1.0);
    }

    #[test]
    fn complement_flips() {
        let m = ActiveMask::from_rows(4, &[1]);
        let c = m.complement();
        assert_eq!(c.active_rows(), vec![0, 2, 3]);
        assert_eq!(c.complement(), m);
    }

    #[test]
    fn random_mask_density_and_determinism() {
        let m = ActiveMask::random(10_000, 0.3, 9);
        let frac = m.num_active() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "density {frac}");
        assert_eq!(m, ActiveMask::random(10_000, 0.3, 9));
        assert_ne!(m, ActiveMask::random(10_000, 0.3, 10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_panics() {
        ActiveMask::from_rows(3, &[3]);
    }
}
