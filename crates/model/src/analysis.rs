//! §IV-C/D spectral analysis: principal submatrices, interlacing, and
//! decoupled active blocks.
//!
//! When `m` rows stay active and the rest are delayed, the active part of
//! the propagation matrix is the principal submatrix `G̃ = G[active, active]`.
//! Cauchy interlacing bounds its eigenvalues by those of `G`
//! (`λ_i ≤ µ_i ≤ λ_{i+n−m}`), and removing rows can decouple `G̃` into
//! blocks whose spectral radii are smaller still — the paper's explanation
//! for why *more* concurrency makes asynchronous Jacobi converge faster,
//! and sometimes converge when synchronous Jacobi does not.

use aj_linalg::eigen;
use aj_linalg::{CsrMatrix, DenseMatrix, IterationMatrix, LinalgError};

/// The active principal submatrix `G̃ = G[rows, rows]` of the Jacobi
/// iteration matrix, as CSR.
pub fn active_submatrix_of_g(a: &CsrMatrix, active_rows: &[usize]) -> CsrMatrix {
    let g = IterationMatrix::new(a).to_csr();
    g.principal_submatrix(active_rows)
}

/// Checks Cauchy interlacing: for ascending eigenvalues `lambda` of the full
/// symmetric matrix (size `n`) and `mu` of an order-`m` principal submatrix,
/// verifies `λ_i ≤ µ_i ≤ λ_{i+n−m}` for all `i` (up to `tol`).
pub fn interlacing_holds(lambda: &[f64], mu: &[f64], tol: f64) -> bool {
    let n = lambda.len();
    let m = mu.len();
    if m > n {
        return false;
    }
    mu.iter()
        .enumerate()
        .all(|(i, &mu_i)| lambda[i] - tol <= mu_i && mu_i <= lambda[i + n - m] + tol)
}

/// Connected components of the subgraph induced by `rows` in the adjacency
/// of `a` (off-diagonal couplings only). Returns each component as a list of
/// *positions into `rows`* (so they index the principal submatrix directly).
pub fn active_components(a: &CsrMatrix, rows: &[usize]) -> Vec<Vec<usize>> {
    let mut pos_of = std::collections::HashMap::with_capacity(rows.len());
    for (p, &r) in rows.iter().enumerate() {
        pos_of.insert(r, p);
    }
    let mut seen = vec![false; rows.len()];
    let mut components = Vec::new();
    for start in 0..rows.len() {
        if seen[start] {
            continue;
        }
        let mut comp = vec![start];
        seen[start] = true;
        let mut stack = vec![start];
        while let Some(p) = stack.pop() {
            for (j, _) in a.row_iter(rows[p]) {
                if let Some(&q) = pos_of.get(&j) {
                    if !seen[q] && j != rows[p] {
                        seen[q] = true;
                        comp.push(q);
                        stack.push(q);
                    }
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

/// Summary of the delayed-rows spectral analysis for one active set.
#[derive(Debug, Clone)]
pub struct DelayAnalysis {
    /// ρ(G) of the full iteration matrix.
    pub rho_full: f64,
    /// ρ(G̃) of the active principal submatrix.
    pub rho_active: f64,
    /// Number of decoupled blocks in the active submatrix.
    pub num_blocks: usize,
    /// Spectral radius of each block, descending.
    pub block_radii: Vec<f64>,
}

/// Performs the full §IV-C/D analysis for symmetric `a` (dense eigensolves;
/// keep `n ≤ ~2000`).
pub fn analyze_delay(a: &CsrMatrix, active_rows: &[usize]) -> Result<DelayAnalysis, LinalgError> {
    let g = IterationMatrix::new(a).to_csr();
    let rho_full = symmetric_radius(&g.to_dense())?;
    let gsub = g.principal_submatrix(active_rows);
    let rho_active = symmetric_radius(&gsub.to_dense())?;
    let comps = active_components(a, active_rows);
    let mut block_radii: Vec<f64> = comps
        .iter()
        .map(|comp| {
            let block = gsub.principal_submatrix(comp);
            symmetric_radius(&block.to_dense())
        })
        .collect::<Result<_, _>>()?;
    block_radii.sort_by(|x, y| y.partial_cmp(x).unwrap());
    Ok(DelayAnalysis {
        rho_full,
        rho_active,
        num_blocks: comps.len(),
        block_radii,
    })
}

fn symmetric_radius(m: &DenseMatrix) -> Result<f64, LinalgError> {
    let ev = eigen::symmetric_eigenvalues(m)?;
    Ok(ev.iter().map(|v| v.abs()).fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_matrices::{fd, fe};

    #[test]
    fn interlacing_on_fd_matrix() {
        let a = fd::laplacian_2d(4, 5).scale_to_unit_diagonal().unwrap();
        let g = IterationMatrix::new(&a).to_csr().to_dense();
        let lambda = eigen::symmetric_eigenvalues(&g).unwrap();
        // Delay rows 0, 7, 13: active set is the rest.
        let active: Vec<usize> = (0..20).filter(|i| ![0, 7, 13].contains(i)).collect();
        let gsub = active_submatrix_of_g(&a, &active).to_dense();
        let mu = eigen::symmetric_eigenvalues(&gsub).unwrap();
        assert!(interlacing_holds(&lambda, &mu, 1e-10));
        // And a violated instance is detected.
        let bad = vec![lambda[0] - 1.0];
        assert!(!interlacing_holds(&lambda, &bad, 1e-10));
    }

    #[test]
    fn submatrix_radius_never_exceeds_full_radius() {
        let a = fd::laplacian_2d(5, 5).scale_to_unit_diagonal().unwrap();
        let analysis = analyze_delay(&a, &(0..20).collect::<Vec<_>>()).unwrap();
        assert!(analysis.rho_active <= analysis.rho_full + 1e-12);
    }

    #[test]
    fn more_delays_shrink_the_active_radius() {
        // §IV-D: "If enough rows are delayed, these submatrices can be very
        // small, resulting in a significantly smaller ρ(G̃)."
        let a = fd::laplacian_2d(6, 6).scale_to_unit_diagonal().unwrap();
        let few: Vec<usize> = (0..36).filter(|&i| i != 0).collect();
        let many: Vec<usize> = (0..36).step_by(3).collect();
        let r_few = analyze_delay(&a, &few).unwrap().rho_active;
        let r_many = analyze_delay(&a, &many).unwrap().rho_active;
        assert!(r_many < r_few, "ρ(G̃): many delays {r_many} vs few {r_few}");
    }

    #[test]
    fn components_decouple_when_separator_rows_are_delayed() {
        // 1-D chain: delaying the middle row splits the active graph in two.
        let a = fd::laplacian_1d(7).scale_to_unit_diagonal().unwrap();
        let active: Vec<usize> = vec![0, 1, 2, 4, 5, 6];
        let comps = active_components(&a, &active);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4, 5]);
        let analysis = analyze_delay(&a, &active).unwrap();
        assert_eq!(analysis.num_blocks, 2);
        // Block radii bounded by the active radius.
        for &r in &analysis.block_radii {
            assert!(r <= analysis.rho_active + 1e-12);
        }
    }

    #[test]
    fn fe_matrix_active_radius_can_fall_below_one() {
        // The §IV-D mechanism for the divergence rescue: ρ(G) > 1 on the FE
        // matrix, but delaying enough rows drives ρ(G̃) below 1.
        let a = fe::fe_matrix(12, 12, 0.45, 3);
        let g = IterationMatrix::new(&a).to_csr().to_dense();
        let rho_full = eigen::symmetric_eigenvalues(&g)
            .unwrap()
            .iter()
            .map(|v| v.abs())
            .fold(0.0, f64::max);
        assert!(rho_full > 1.0);
        // Keep every third row active.
        let active: Vec<usize> = (0..a.nrows()).step_by(3).collect();
        let analysis = analyze_delay(&a, &active).unwrap();
        assert!(
            analysis.rho_active < rho_full,
            "ρ(G̃) = {} vs ρ(G) = {rho_full}",
            analysis.rho_active
        );
    }
}
