//! §IV-B: Gauss–Seidel as sequences of propagation masks.
//!
//! "If a single row j is relaxed at time k … relaxing all rows in ascending
//! order of index is precisely Gauss-Seidel with natural ordering. For
//! multicolor Gauss-Seidel … D̂(k) can be expressed [as the indicator of an
//! independent set]." These helpers build those mask sequences and apply
//! them, giving an executable proof of the equivalence (see the tests).

use crate::mask::ActiveMask;
use crate::propagation::apply_step;
use aj_linalg::CsrMatrix;

/// The natural-ordering Gauss–Seidel mask sequence: one single-row mask per
/// row, ascending.
pub fn gauss_seidel_masks(n: usize) -> Vec<ActiveMask> {
    (0..n).map(|i| ActiveMask::from_rows(n, &[i])).collect()
}

/// The multicolor Gauss–Seidel mask sequence: one mask per color class
/// (independent set), in ascending color order.
pub fn multicolor_masks(colors: &[usize]) -> Vec<ActiveMask> {
    let classes = aj_linalg::sweeps::color_classes(colors);
    classes
        .into_iter()
        .map(|rows| ActiveMask::from_rows(colors.len(), &rows))
        .collect()
}

/// Applies a sequence of propagation steps in order (one "inexact
/// multiplicative block relaxation" pass in the paper's terms).
pub fn apply_mask_sequence(a: &CsrMatrix, b: &[f64], masks: &[ActiveMask], x: &mut [f64]) {
    let diag_inv: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
    for mask in masks {
        apply_step(a, b, &diag_inv, mask, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_linalg::sweeps;
    use aj_matrices::fd;

    #[test]
    fn single_row_masks_in_order_reproduce_gauss_seidel() {
        let a = fd::laplacian_2d(4, 5);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();

        let mut x_masks = x0.clone();
        apply_mask_sequence(&a, &b, &gauss_seidel_masks(n), &mut x_masks);

        let diag_inv: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
        let mut x_gs = x0;
        sweeps::gauss_seidel_sweep(&a, &b, &diag_inv, &mut x_gs);

        assert!(aj_linalg::vecops::rel_diff(&x_masks, &x_gs) < 1e-14);
    }

    #[test]
    fn multicolor_masks_reproduce_color_ordered_gauss_seidel() {
        let a = fd::laplacian_2d(5, 5);
        let n = a.nrows();
        let colors = sweeps::greedy_coloring(&a);
        let b: Vec<f64> = (0..n).map(|i| 0.1 * i as f64 - 1.0).collect();
        let x0 = vec![0.0; n];

        // Propagation-mask version: one step per color class.
        let mut x_masks = x0.clone();
        apply_mask_sequence(&a, &b, &multicolor_masks(&colors), &mut x_masks);

        // Reference: Gauss–Seidel visiting rows grouped by color. Because
        // each class is an independent set, within-class update order is
        // irrelevant, making this exactly multicolor GS.
        let diag_inv: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
        let mut x_ref = x0;
        for class in sweeps::color_classes(&colors) {
            for i in class {
                let r = b[i] - a.row_dot(i, &x_ref);
                x_ref[i] += diag_inv[i] * r;
            }
        }
        assert!(aj_linalg::vecops::rel_diff(&x_masks, &x_ref) < 1e-14);
    }

    #[test]
    fn gs_mask_sequence_converges_where_jacobi_masks_would_too_but_faster() {
        // Multiplicative (GS) sequences reduce the residual at least as much
        // per pass as one additive (Jacobi) full-mask step on this SPD
        // W.D.D. matrix.
        let a = fd::laplacian_2d(6, 6).scale_to_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![1.0; n];
        let x0 = vec![0.0; n];
        let r0 = aj_linalg::vecops::norm(&a.residual(&x0, &b), aj_linalg::vecops::Norm::L2);

        let mut x_gs = x0.clone();
        apply_mask_sequence(&a, &b, &gauss_seidel_masks(n), &mut x_gs);
        let r_gs = aj_linalg::vecops::norm(&a.residual(&x_gs, &b), aj_linalg::vecops::Norm::L2);

        let mut x_j = x0;
        apply_mask_sequence(&a, &b, &[crate::mask::ActiveMask::all(n)], &mut x_j);
        let r_j = aj_linalg::vecops::norm(&a.residual(&x_j, &b), aj_linalg::vecops::Norm::L2);

        assert!(r_gs < r_j, "GS pass {r_gs} vs Jacobi step {r_j}");
        assert!(r_gs < r0);
    }

    #[test]
    fn mask_counts() {
        assert_eq!(gauss_seidel_masks(7).len(), 7);
        let colors = vec![0, 1, 0, 1];
        let masks = multicolor_masks(&colors);
        assert_eq!(masks.len(), 2);
        assert_eq!(masks[0].active_rows(), vec![0, 2]);
        assert_eq!(masks[1].active_rows(), vec![1, 3]);
    }
}
