//! Spectral analysis of *periodic* propagation sequences.
//!
//! A periodic schedule applies the same masks `Ψ(1), …, Ψ(p)` over and
//! over, so the error contracts per period by the product
//! `T = Ĝ(p) ⋯ Ĝ(2) Ĝ(1)`. Its spectral radius `ρ(T)` is the *effective*
//! asymptotic rate of that asynchronous pattern — the quantity that decides
//! the §IV-D convergence questions exactly (e.g. multicolor Gauss–Seidel is
//! the two-mask period whose product radius matches classical GS theory).
//!
//! `T` is applied matrix-free (one masked relaxation per factor), and
//! `ρ(T)` estimated by the power method on the period map.

use crate::mask::ActiveMask;
use crate::propagation::apply_step_weighted;
use aj_linalg::ops::LinearOperator;
use aj_linalg::{eigen, CsrMatrix, LinalgError};

/// The linear period map `e ↦ T e` of a mask sequence (error propagation
/// through one period, `b = 0`).
pub struct PeriodOperator<'a> {
    a: &'a CsrMatrix,
    masks: &'a [ActiveMask],
    diag_inv: Vec<f64>,
    omega: f64,
}

impl<'a> PeriodOperator<'a> {
    /// Builds the period map for `a` and `masks` with weight `omega`.
    ///
    /// # Errors
    /// [`LinalgError::ZeroDiagonal`] when a diagonal entry vanishes.
    pub fn new(a: &'a CsrMatrix, masks: &'a [ActiveMask], omega: f64) -> Result<Self, LinalgError> {
        assert!(!masks.is_empty(), "need at least one mask per period");
        let diag_inv: Vec<f64> = a
            .diagonal()
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                if d == 0.0 {
                    Err(LinalgError::ZeroDiagonal { row: i })
                } else {
                    Ok(1.0 / d)
                }
            })
            .collect::<Result<_, _>>()?;
        Ok(PeriodOperator {
            a,
            masks,
            diag_inv,
            omega,
        })
    }
}

impl LinearOperator for PeriodOperator<'_> {
    fn dim(&self) -> usize {
        self.a.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // Error propagation = the affine iteration with b = 0.
        y.copy_from_slice(x);
        let zero_b = vec![0.0; x.len()];
        for mask in self.masks {
            apply_step_weighted(self.a, &zero_b, &self.diag_inv, mask, self.omega, y);
        }
    }
}

/// Power-method estimate of the effective per-period spectral radius of a
/// mask sequence. The per-*step* rate is `ρ^(1/p)` for a period of length
/// `p`.
pub fn period_spectral_radius(
    a: &CsrMatrix,
    masks: &[ActiveMask],
    omega: f64,
) -> Result<f64, LinalgError> {
    let op = PeriodOperator::new(a, masks, omega)?;
    Ok(eigen::power_method(&op, 1e-10, 50_000)?.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gs_equiv;
    use aj_linalg::sweeps;
    use aj_matrices::fd;

    fn unit_fd(nx: usize, ny: usize) -> CsrMatrix {
        fd::laplacian_2d(nx, ny).scale_to_unit_diagonal().unwrap()
    }

    #[test]
    fn full_mask_period_recovers_jacobi_radius() {
        let a = unit_fd(5, 5);
        let masks = vec![ActiveMask::all(25)];
        let rho = period_spectral_radius(&a, &masks, 1.0).unwrap();
        let exact = eigen::jacobi_spectral_radius_unit_diag(&a, 25).unwrap();
        assert!((rho - exact).abs() < 1e-6, "{rho} vs {exact}");
    }

    #[test]
    fn gauss_seidel_period_matches_classical_theory() {
        // For consistently-ordered matrices (2-D 5-point grids are),
        // ρ(GS) = ρ(Jacobi)². The GS period = single-row masks in order.
        let a = unit_fd(4, 4);
        let masks = gs_equiv::gauss_seidel_masks(16);
        let rho_gs = period_spectral_radius(&a, &masks, 1.0).unwrap();
        let rho_j = eigen::jacobi_spectral_radius_unit_diag(&a, 16).unwrap();
        assert!(
            (rho_gs - rho_j * rho_j).abs() < 1e-4,
            "ρ(GS) = {rho_gs} vs ρ(J)² = {}",
            rho_j * rho_j
        );
    }

    #[test]
    fn multicolor_gs_period_matches_gs_on_two_colorable_grids() {
        // Red-black GS on a consistently-ordered matrix has the same
        // asymptotic rate as lexicographic GS.
        let a = unit_fd(4, 4);
        let colors = sweeps::greedy_coloring(&a);
        let masks = gs_equiv::multicolor_masks(&colors);
        assert_eq!(masks.len(), 2);
        let rho_mc = period_spectral_radius(&a, &masks, 1.0).unwrap();
        let rho_j = eigen::jacobi_spectral_radius_unit_diag(&a, 16).unwrap();
        assert!(
            (rho_mc - rho_j * rho_j).abs() < 1e-4,
            "{rho_mc} vs {}",
            rho_j * rho_j
        );
    }

    #[test]
    fn delayed_row_period_has_unit_radius() {
        // Theorem 1 for products: if one row never relaxes in the period,
        // its unit vector is a fixed point of every factor, so ρ(T) = 1.
        let a = unit_fd(4, 4);
        let masks = vec![
            ActiveMask::all_except(16, &[5]),
            ActiveMask::all_except(16, &[5]),
        ];
        let rho = period_spectral_radius(&a, &masks, 1.0).unwrap();
        assert!((rho - 1.0).abs() < 1e-6, "ρ = {rho}");
    }

    #[test]
    fn alternating_halves_beat_single_jacobi_step_per_relaxation() {
        // Relaxing the two halves alternately (a 2-mask period; each row
        // relaxes once per period) is multiplicative and contracts at least
        // as fast per period as one full Jacobi step per... period of
        // relaxation work.
        let a = unit_fd(4, 4);
        let n = 16;
        let first: Vec<usize> = (0..n / 2).collect();
        let second: Vec<usize> = (n / 2..n).collect();
        let masks = vec![
            ActiveMask::from_rows(n, &first),
            ActiveMask::from_rows(n, &second),
        ];
        let rho_halves = period_spectral_radius(&a, &masks, 1.0).unwrap();
        let rho_j = eigen::jacobi_spectral_radius_unit_diag(&a, n).unwrap();
        // Same number of relaxations per period as one Jacobi step.
        assert!(
            rho_halves < rho_j,
            "ρ(halves) = {rho_halves} vs ρ(J) = {rho_j}"
        );
    }

    #[test]
    fn damping_changes_the_period_radius() {
        let a = unit_fd(4, 4);
        let masks = vec![ActiveMask::all(16)];
        let rho_1 = period_spectral_radius(&a, &masks, 1.0).unwrap();
        let rho_07 = period_spectral_radius(&a, &masks, 0.7).unwrap();
        assert!(
            rho_07 > rho_1,
            "under-damping slows SPD Jacobi: {rho_07} vs {rho_1}"
        );
    }
}
