//! Delay schedules: who relaxes at each model step.
//!
//! §VII-B of the paper: "For the model, time is in unit steps, and δ is the
//! number of those steps that row i is delayed by. In the asynchronous case,
//! row i only relaxes at multiples of δ, while all other rows relax at every
//! time step. In the synchronous case, all rows relax at multiples of δ to
//! simulate waiting for the slowest process."

use crate::mask::ActiveMask;

/// Chooses the active set `Ψ(k)` for every model step `k = 1, 2, …`.
#[derive(Debug, Clone)]
pub enum DelaySchedule {
    /// Nobody is delayed: every step relaxes every row.
    None,
    /// The listed rows only relax when `k` is a multiple of `delta`
    /// (`delta = 0` or `1` means no delay). All other rows relax each step.
    SlowRows {
        /// Delayed row indices.
        rows: Vec<usize>,
        /// Delay factor δ in model steps.
        delta: u64,
    },
    /// Each row independently active with probability `density` per step
    /// (fresh pseudo-random draw each step, deterministic in `seed`).
    Random {
        /// Activation probability per row per step.
        density: f64,
        /// RNG seed.
        seed: u64,
    },
    /// An explicit sequence of masks, cycled if the run is longer.
    Explicit(Vec<ActiveMask>),
}

impl DelaySchedule {
    /// Convenience constructor for the paper's single-slow-thread scenario.
    pub fn single_slow_row(row: usize, delta: u64) -> Self {
        DelaySchedule::SlowRows {
            rows: vec![row],
            delta,
        }
    }

    /// The mask for model step `k` (1-based) on an `n`-row problem.
    pub fn mask_at(&self, n: usize, k: u64) -> ActiveMask {
        match self {
            DelaySchedule::None => ActiveMask::all(n),
            DelaySchedule::SlowRows { rows, delta } => {
                if *delta <= 1 || k.is_multiple_of(*delta) {
                    ActiveMask::all(n)
                } else {
                    ActiveMask::all_except(n, rows)
                }
            }
            DelaySchedule::Random { density, seed } => {
                ActiveMask::random(n, *density, seed.wrapping_add(k))
            }
            DelaySchedule::Explicit(masks) => {
                assert!(
                    !masks.is_empty(),
                    "explicit schedule needs at least one mask"
                );
                masks[((k - 1) % masks.len() as u64) as usize].clone()
            }
        }
    }

    /// Model time consumed by one *synchronous* iteration under this
    /// schedule: the barrier makes everyone wait for the slowest row, so a
    /// delay factor δ stretches each iteration to δ time units.
    pub fn sync_iteration_cost(&self) -> u64 {
        match self {
            DelaySchedule::SlowRows { delta, .. } => (*delta).max(1),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_activates_everyone() {
        let s = DelaySchedule::None;
        assert_eq!(s.mask_at(4, 1).num_active(), 4);
        assert_eq!(s.sync_iteration_cost(), 1);
    }

    #[test]
    fn slow_row_fires_only_on_multiples_of_delta() {
        let s = DelaySchedule::single_slow_row(2, 3);
        assert!(!s.mask_at(5, 1).is_active(2));
        assert!(!s.mask_at(5, 2).is_active(2));
        assert!(s.mask_at(5, 3).is_active(2));
        assert!(!s.mask_at(5, 4).is_active(2));
        assert!(s.mask_at(5, 6).is_active(2));
        // Other rows always relax.
        assert!(s.mask_at(5, 1).is_active(0));
        assert_eq!(s.sync_iteration_cost(), 3);
    }

    #[test]
    fn delta_zero_and_one_mean_no_delay() {
        for delta in [0, 1] {
            let s = DelaySchedule::single_slow_row(0, delta);
            assert!(s.mask_at(3, 1).is_active(0));
            assert_eq!(s.sync_iteration_cost(), 1);
        }
    }

    #[test]
    fn random_schedule_varies_by_step_but_is_reproducible() {
        let s = DelaySchedule::Random {
            density: 0.5,
            seed: 77,
        };
        let m1 = s.mask_at(100, 1);
        let m2 = s.mask_at(100, 2);
        assert_ne!(m1, m2);
        assert_eq!(m1, s.mask_at(100, 1));
    }

    #[test]
    fn explicit_schedule_cycles() {
        let masks = vec![
            ActiveMask::from_rows(3, &[0]),
            ActiveMask::from_rows(3, &[1]),
        ];
        let s = DelaySchedule::Explicit(masks);
        assert!(s.mask_at(3, 1).is_active(0));
        assert!(s.mask_at(3, 2).is_active(1));
        assert!(s.mask_at(3, 3).is_active(0)); // cycled
    }
}
