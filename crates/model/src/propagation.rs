//! Propagation matrices `Ĝ(k)` and `Ĥ(k)` (paper §IV-A) and the Theorem 1
//! diagnostics.
//!
//! Structure (for unit-diagonal `A`): `Ĝ(k)` equals `G = I − A` with every
//! *row* belonging to a delayed index replaced by the unit basis vector;
//! `Ĥ(k)` equals `G` with every such *column* replaced by the unit basis
//! vector.

use crate::mask::ActiveMask;
use aj_linalg::method::{self, ResolvedMethod};
use aj_linalg::{eigen, CsrMatrix};

/// One model relaxation step applied in place:
/// `x ← x + D̂ D⁻¹ (b − A x)`. Only rows active in `mask` change.
/// `diag_inv[i] = 1 / a_ii`.
pub fn apply_step(a: &CsrMatrix, b: &[f64], diag_inv: &[f64], mask: &ActiveMask, x: &mut [f64]) {
    apply_step_weighted(a, b, diag_inv, mask, 1.0, x);
}

/// Weighted (damped) model step: `x ← x + ω D̂ D⁻¹ (b − A x)`. The masked
/// damped propagation matrix is `Ĝ_ω(k) = I − ω D̂ D⁻¹ A`.
pub fn apply_step_weighted(
    a: &CsrMatrix,
    b: &[f64],
    diag_inv: &[f64],
    mask: &ActiveMask,
    omega: f64,
    x: &mut [f64],
) {
    let n = a.nrows();
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(b.len(), n);
    // Two-phase (compute all updates from the same x, then write), matching
    // the simultaneous reads of Equation (6).
    let mut updates: Vec<(usize, f64)> = Vec::with_capacity(mask.num_active());
    for (i, &dinv) in diag_inv.iter().enumerate() {
        if mask.is_active(i) {
            let r = b[i] - a.row_dot(i, x);
            updates.push((i, omega * dinv * r));
        }
    }
    for (i, du) in updates {
        x[i] += du;
    }
}

/// One masked step of an arbitrary [`ResolvedMethod`], generalizing
/// [`apply_step_weighted`]: active rows update per the method, delayed rows
/// hold. `x_prev[i]` must hold the value `x[i]` had before its last
/// relaxation (initialize to `x0`; the momentum term then vanishes on a
/// row's first relaxation) and is maintained here for the rows that relax.
/// `step` feeds the randomized row-selection stream. Returns the number of
/// rows relaxed, which for `rwr` is a residual-weighted subset of the mask.
#[allow(clippy::too_many_arguments)] // mirrors the run_*_model signature plus the method
pub fn apply_method_step(
    a: &CsrMatrix,
    b: &[f64],
    diag_inv: &[f64],
    mask: &ActiveMask,
    method: &ResolvedMethod,
    step: u64,
    x: &mut [f64],
    x_prev: &mut [f64],
) -> usize {
    match *method {
        ResolvedMethod::Jacobi => {
            apply_step(a, b, diag_inv, mask, x);
            mask.num_active()
        }
        ResolvedMethod::Richardson1 { omega } => {
            apply_step_weighted(a, b, diag_inv, mask, omega, x);
            mask.num_active()
        }
        ResolvedMethod::Richardson2 { omega, beta } => {
            let mut updates: Vec<(usize, f64)> = Vec::with_capacity(mask.num_active());
            for (i, &dinv) in diag_inv.iter().enumerate() {
                if mask.is_active(i) {
                    let r = b[i] - a.row_dot(i, x);
                    updates.push((i, x[i] + omega * dinv * r + beta * (x[i] - x_prev[i])));
                }
            }
            let relaxed = updates.len();
            for (i, next) in updates {
                x_prev[i] = x[i];
                x[i] = next;
            }
            relaxed
        }
        ResolvedMethod::RandomizedResidual { fraction, seed } => {
            let active = mask.active_rows();
            if active.is_empty() {
                return 0;
            }
            let residuals: Vec<f64> = active.iter().map(|&i| b[i] - a.row_dot(i, x)).collect();
            let weights: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
            let k = ((fraction * active.len() as f64).ceil() as usize).max(1);
            let chosen = method::select_residual_weighted(
                &weights,
                k,
                method::selection_seed(seed, 0, step),
            );
            for &c in &chosen {
                let i = active[c];
                x_prev[i] = x[i];
                x[i] += diag_inv[i] * residuals[c];
            }
            chosen.len()
        }
    }
}

/// The error propagation matrix `Ĝ(k) = I − D̂ D⁻¹ A` as explicit CSR.
pub fn ghat_csr(a: &CsrMatrix, mask: &ActiveMask) -> CsrMatrix {
    let n = a.nrows();
    let diag = a.diagonal();
    let mut coo = aj_linalg::CooMatrix::with_capacity(n, n, a.nnz() + n);
    for i in 0..n {
        if mask.is_active(i) {
            let inv = 1.0 / diag[i];
            let mut wrote_diag = false;
            for (j, v) in a.row_iter(i) {
                let g = if j == i {
                    wrote_diag = true;
                    1.0 - inv * v
                } else {
                    -inv * v
                };
                coo.push(i, j, g);
            }
            if !wrote_diag {
                coo.push(i, i, 1.0);
            }
        } else {
            // Delayed row: unit basis vector row.
            coo.push(i, i, 1.0);
        }
    }
    coo.to_csr()
}

/// The residual propagation matrix `Ĥ(k) = I − A D̂ D⁻¹` as explicit CSR.
pub fn hhat_csr(a: &CsrMatrix, mask: &ActiveMask) -> CsrMatrix {
    let n = a.nrows();
    let diag = a.diagonal();
    let mut coo = aj_linalg::CooMatrix::with_capacity(n, n, a.nnz() + n);
    for i in 0..n {
        let mut wrote_diag = false;
        for (j, v) in a.row_iter(i) {
            if mask.is_active(j) {
                let h = if j == i {
                    wrote_diag = true;
                    1.0 - v / diag[j]
                } else {
                    -v / diag[j]
                };
                coo.push(i, j, h);
            } else if j == i {
                wrote_diag = true;
                coo.push(i, i, 1.0);
            }
        }
        if !wrote_diag {
            coo.push(i, i, 1.0);
        }
    }
    coo.to_csr()
}

/// Everything Theorem 1 asserts about one propagation step, measured.
#[derive(Debug, Clone, Copy)]
pub struct Theorem1Check {
    /// `‖Ĝ(k)‖∞` — 1 exactly when `A` is W.D.D. and some row is delayed.
    pub ghat_norm_inf: f64,
    /// `‖Ĥ(k)‖₁` — same statement in the 1-norm.
    pub hhat_norm_one: f64,
    /// `ρ(Ĝ(k))` (power-method estimate on small matrices).
    pub ghat_spectral_radius: f64,
    /// `ρ(Ĥ(k))`.
    pub hhat_spectral_radius: f64,
    /// Number of delayed rows in the mask.
    pub num_delayed: usize,
}

/// Measures the Theorem 1 quantities for `A` and one mask. Spectral radii
/// use the dense eigensolver when the propagation matrix is symmetric and a
/// power iteration otherwise, so keep `n` modest (≤ ~2000).
pub fn theorem1_check(a: &CsrMatrix, mask: &ActiveMask) -> Theorem1Check {
    let g = ghat_csr(a, mask);
    let h = hhat_csr(a, mask);
    Theorem1Check {
        ghat_norm_inf: g.norm_inf(),
        hhat_norm_one: h.norm_one(),
        ghat_spectral_radius: eigen::dense_spectral_radius(&g.to_dense()),
        hhat_spectral_radius: eigen::dense_spectral_radius(&h.to_dense()),
        num_delayed: mask.num_delayed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_matrices::fd;

    fn unit_fd(nx: usize, ny: usize) -> CsrMatrix {
        fd::laplacian_2d(nx, ny).scale_to_unit_diagonal().unwrap()
    }

    #[test]
    fn full_mask_reproduces_synchronous_jacobi() {
        let a = unit_fd(3, 4);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x0: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let diag_inv = vec![1.0; n];
        let mut x = x0.clone();
        apply_step(&a, &b, &diag_inv, &ActiveMask::all(n), &mut x);
        let mut x_ref = vec![0.0; n];
        aj_linalg::sweeps::jacobi_iteration(&a, &b, &diag_inv, &x0, &mut x_ref);
        assert!(aj_linalg::vecops::rel_diff(&x, &x_ref) < 1e-15);
    }

    #[test]
    fn empty_mask_is_identity() {
        let a = unit_fd(3, 3);
        let n = a.nrows();
        let b = vec![1.0; n];
        let diag_inv = vec![1.0; n];
        let mut x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let before = x.clone();
        apply_step(&a, &b, &diag_inv, &ActiveMask::none(n), &mut x);
        assert_eq!(x, before);
        let g = ghat_csr(&a, &ActiveMask::none(n));
        assert!(
            g.to_dense()
                .max_abs_diff(&aj_linalg::DenseMatrix::identity(n))
                < 1e-15
        );
    }

    #[test]
    fn ghat_rows_of_delayed_rows_are_unit_basis() {
        let a = unit_fd(3, 3);
        let mask = ActiveMask::all_except(9, &[4]);
        let g = ghat_csr(&a, &mask);
        assert_eq!(g.row_indices(4), &[4]);
        assert_eq!(g.row_values(4), &[1.0]);
        // Active rows match G = I − A.
        let gfull = aj_linalg::IterationMatrix::new(&a).to_csr();
        for i in [0usize, 1, 2, 3, 5, 6, 7, 8] {
            assert_eq!(g.row_indices(i), gfull.row_indices(i));
        }
    }

    #[test]
    fn hhat_columns_of_delayed_rows_are_unit_basis() {
        let a = unit_fd(3, 3);
        let mask = ActiveMask::all_except(9, &[4]);
        let h = hhat_csr(&a, &mask);
        let ht = h.transpose();
        assert_eq!(ht.row_indices(4), &[4]);
        assert_eq!(ht.row_values(4), &[1.0]);
    }

    #[test]
    fn ghat_is_transpose_of_hhat_for_symmetric_unit_diagonal() {
        // For symmetric unit-diagonal A: Ĥ = I − A D̂ = (I − D̂ A)ᵀ = Ĝᵀ.
        let a = unit_fd(4, 3);
        let mask = ActiveMask::from_rows(12, &[0, 3, 7, 11]);
        let g = ghat_csr(&a, &mask);
        let h = hhat_csr(&a, &mask);
        assert!(g.to_dense().max_abs_diff(&h.transpose().to_dense()) < 1e-14);
    }

    #[test]
    fn error_and_residual_propagate_as_claimed() {
        // e(k+1) = Ĝ e(k) and r(k+1) = Ĥ r(k), verified numerically.
        let a = unit_fd(4, 4);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| 0.1 * i as f64).collect();
        // Solve accurately for the exact solution with plain Jacobi.
        let (x_exact, _) = aj_linalg::sweeps::jacobi_solve(
            &a,
            &b,
            &vec![0.0; n],
            1e-14,
            200_000,
            aj_linalg::vecops::Norm::L2,
        )
        .unwrap();
        let mask = ActiveMask::all_except(n, &[2, 9]);
        let diag_inv = vec![1.0; n];
        let x0: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin()).collect();
        let mut x1 = x0.clone();
        apply_step(&a, &b, &diag_inv, &mask, &mut x1);

        let e0 = aj_linalg::vecops::sub(&x_exact, &x0);
        let e1 = aj_linalg::vecops::sub(&x_exact, &x1);
        let g = ghat_csr(&a, &mask);
        assert!(aj_linalg::vecops::rel_diff(&g.spmv(&e0), &e1) < 1e-10);

        let r0 = a.residual(&x0, &b);
        let r1 = a.residual(&x1, &b);
        let h = hhat_csr(&a, &mask);
        assert!(aj_linalg::vecops::rel_diff(&h.spmv(&r0), &r1) < 1e-10);
    }

    #[test]
    fn theorem1_holds_on_wdd_matrix_with_delays() {
        let a = unit_fd(4, 4);
        assert!(a.is_weakly_diagonally_dominant());
        let mask = ActiveMask::all_except(16, &[5]);
        let c = theorem1_check(&a, &mask);
        assert!(
            (c.ghat_norm_inf - 1.0).abs() < 1e-12,
            "‖Ĝ‖∞ = {}",
            c.ghat_norm_inf
        );
        assert!(
            (c.hhat_norm_one - 1.0).abs() < 1e-12,
            "‖Ĥ‖₁ = {}",
            c.hhat_norm_one
        );
        assert!(
            (c.ghat_spectral_radius - 1.0).abs() < 1e-6,
            "ρ(Ĝ) = {}",
            c.ghat_spectral_radius
        );
        assert!(
            (c.hhat_spectral_radius - 1.0).abs() < 1e-6,
            "ρ(Ĥ) = {}",
            c.hhat_spectral_radius
        );
        assert_eq!(c.num_delayed, 1);
    }

    #[test]
    fn weighted_step_with_omega_one_equals_plain_step() {
        let a = unit_fd(3, 3);
        let b = vec![0.5; 9];
        let diag_inv = vec![1.0; 9];
        let mask = ActiveMask::all_except(9, &[2]);
        let mut x1: Vec<f64> = (0..9).map(|i| i as f64 * 0.1).collect();
        let mut x2 = x1.clone();
        apply_step(&a, &b, &diag_inv, &mask, &mut x1);
        apply_step_weighted(&a, &b, &diag_inv, &mask, 1.0, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn weighted_step_scales_the_update() {
        let a = unit_fd(3, 3);
        let b = vec![0.5; 9];
        let diag_inv = vec![1.0; 9];
        let mask = ActiveMask::all(9);
        let x0: Vec<f64> = (0..9).map(|i| (i as f64).cos()).collect();
        let mut x_full = x0.clone();
        apply_step(&a, &b, &diag_inv, &mask, &mut x_full);
        let mut x_half = x0.clone();
        apply_step_weighted(&a, &b, &diag_inv, &mask, 0.5, &mut x_half);
        for i in 0..9 {
            let full = x_full[i] - x0[i];
            let half = x_half[i] - x0[i];
            assert!((half - 0.5 * full).abs() < 1e-15);
        }
    }

    #[test]
    fn no_delay_norms_can_drop_below_one_with_strict_dominance() {
        // Strictly dominant matrix, no delayed rows: ‖G‖∞ < 1.
        let a = fd::parabolic_2d(4, 4, 1.0)
            .scale_to_unit_diagonal()
            .unwrap();
        let c = theorem1_check(&a, &ActiveMask::all(16));
        assert!(c.ghat_norm_inf < 1.0);
    }
}
