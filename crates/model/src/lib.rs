//! # aj-model
//!
//! The paper's propagation-matrix model of asynchronous Jacobi (§IV).
//!
//! A "parallel step" relaxes the rows in the active set `Ψ(k)`:
//!
//! ```text
//! x(k+1) = (I − D̂(k) D⁻¹ A) x(k) + D̂(k) D⁻¹ b
//! ```
//!
//! where `D̂(k)` is the 0/1 diagonal indicator of `Ψ(k)` and `D` the matrix
//! diagonal (the paper scales `A` to unit diagonal so `D = I`; we keep `D`
//! explicit so unscaled matrices work too). The error and residual evolve by
//! the *propagation matrices*
//!
//! ```text
//! Ĝ(k) = I − D̂(k) D⁻¹ A        (error)
//! Ĥ(k) = I − A D̂(k) D⁻¹        (residual)
//! ```
//!
//! Crate contents:
//!
//! * [`mask`] — active-row sets `Ψ(k)` and generators for delay patterns;
//! * [`propagation`] — matrix-free application and explicit CSR forms of
//!   `Ĝ(k)`/`Ĥ(k)`, plus the Theorem 1 diagnostics (`‖Ĝ‖∞`, `‖Ĥ‖₁`,
//!   spectral radii);
//! * [`executor`] — the sequential model executor used for Figures 3 and 4:
//!   synchronous and asynchronous runs under a delay schedule, with
//!   model-time bookkeeping and residual histories;
//! * [`schedule`] — delay schedules (none, single/multi slow row, random
//!   masks, explicit sequences);
//! * [`gs_equiv`] — §IV-B: Gauss–Seidel and multicolor Gauss–Seidel
//!   expressed as sequences of propagation masks;
//! * [`analysis`] — §IV-C/D: principal submatrices `G̃`, eigenvalue
//!   interlacing, decoupled active blocks, and the Theorem 1 verdict.

// Index loops over coupled arrays read more clearly in these kernels.
#![allow(clippy::needless_range_loop)]

pub mod analysis;
pub mod cycles;
pub mod executor;
pub mod gs_equiv;
pub mod mask;
pub mod propagation;
pub mod schedule;
pub mod tracked;

pub use executor::{
    model_speedup, run_async_model, run_async_model_method, run_sync_model, run_sync_model_method,
    ModelRun,
};
pub use mask::ActiveMask;
pub use schedule::DelaySchedule;
