//! A generalized model executor that tracks the *error* as well as the
//! residual, with optional damping.
//!
//! Theorem 1 makes two statements: the residual 1-norm and the **error
//! ∞-norm** are non-increasing under any propagation sequence on W.D.D.
//! systems. The basic executor ([`crate::executor`]) observes the residual
//! (all the paper's figures use it, since the exact solution is unknown in
//! practice); this one also observes `‖x − x*‖∞` when a manufactured exact
//! solution is available, making the second half of Theorem 1 testable.

use crate::propagation::apply_step_weighted;
use crate::schedule::DelaySchedule;
use aj_linalg::vecops::{self, Norm};
use aj_linalg::{CsrMatrix, LinalgError};

/// Options for a tracked run.
#[derive(Debug, Clone)]
pub struct TrackedOptions<'a> {
    /// Relative residual tolerance (set 0 to run a fixed number of steps).
    pub tol: f64,
    /// Maximum model steps.
    pub max_steps: u64,
    /// Residual norm.
    pub residual_norm: Norm,
    /// Relaxation weight ω.
    pub omega: f64,
    /// Exact solution for error tracking (e.g. from
    /// `aj_matrices::manufactured`).
    pub x_exact: Option<&'a [f64]>,
}

impl Default for TrackedOptions<'_> {
    fn default() -> Self {
        TrackedOptions {
            tol: 1e-6,
            max_steps: 100_000,
            residual_norm: Norm::L1,
            omega: 1.0,
            x_exact: None,
        }
    }
}

/// Result of a tracked run.
#[derive(Debug, Clone)]
pub struct TrackedRun {
    /// Final iterate.
    pub x: Vec<f64>,
    /// `(step, relative residual)` samples.
    pub residual_history: Vec<(u64, f64)>,
    /// `(step, ‖x − x*‖∞)` samples when an exact solution was supplied.
    pub error_history: Option<Vec<(u64, f64)>>,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Total relaxations.
    pub relaxations: u64,
}

/// Runs the asynchronous model under `schedule` with full tracking.
pub fn run_tracked(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    schedule: &DelaySchedule,
    opts: &TrackedOptions<'_>,
) -> Result<TrackedRun, LinalgError> {
    let n = a.nrows();
    let diag_inv: Vec<f64> = a
        .diagonal()
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            if d == 0.0 {
                Err(LinalgError::ZeroDiagonal { row: i })
            } else {
                Ok(1.0 / d)
            }
        })
        .collect::<Result<_, _>>()?;
    let mut x = x0.to_vec();
    let nb = vecops::norm(b, opts.residual_norm).max(f64::MIN_POSITIVE);
    let error_of = |x: &[f64]| {
        opts.x_exact
            .map(|xe| vecops::norm(&vecops::sub(x, xe), Norm::Inf))
    };
    let mut residual_history = vec![(0u64, a.residual_norm(&x, b, opts.residual_norm) / nb)];
    let mut error_history = error_of(&x).map(|e| vec![(0u64, e)]);
    let mut relaxations = 0u64;
    let mut step = 0u64;
    while residual_history.last().unwrap().1 >= opts.tol && step < opts.max_steps {
        step += 1;
        let mask = schedule.mask_at(n, step);
        apply_step_weighted(a, b, &diag_inv, &mask, opts.omega, &mut x);
        relaxations += mask.num_active() as u64;
        residual_history.push((step, a.residual_norm(&x, b, opts.residual_norm) / nb));
        if let (Some(h), Some(e)) = (error_history.as_mut(), error_of(&x)) {
            h.push((step, e));
        }
    }
    let converged = residual_history.last().unwrap().1 < opts.tol;
    Ok(TrackedRun {
        x,
        residual_history,
        error_history,
        converged,
        relaxations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aj_matrices::{fd, manufactured};

    #[test]
    fn error_infinity_norm_is_monotone_on_wdd_matrix() {
        // The error half of Theorem 1: ‖Ĝ‖∞ ≤ 1 ⇒ ‖e‖∞ never grows,
        // whatever the masks.
        let a = fd::laplacian_2d(6, 6).scale_to_unit_diagonal().unwrap();
        let m = manufactured::random(&a, 3);
        let schedule = DelaySchedule::Random {
            density: 0.5,
            seed: 9,
        };
        let x0 = vec![0.0; 36];
        let opts = TrackedOptions {
            tol: 0.0,
            max_steps: 300,
            x_exact: Some(&m.x_exact),
            ..Default::default()
        };
        let run = run_tracked(&a, &m.b, &x0, &schedule, &opts).unwrap();
        let hist = run.error_history.expect("error tracked");
        for w in hist.windows(2) {
            assert!(w[1].1 <= w[0].1 * (1.0 + 1e-12), "error grew: {:?}", w);
        }
        assert!(hist.last().unwrap().1 < 0.01 * hist[0].1);
    }

    #[test]
    fn damped_tracked_run_converges_on_fe_matrix() {
        // ω = 0.7 rescues the divergent FE matrix even synchronously.
        let a = aj_matrices::fe::fe_matrix(10, 10, 0.45, 3);
        let m = manufactured::random(&a, 4);
        let opts = TrackedOptions {
            tol: 1e-6,
            max_steps: 200_000,
            omega: 0.7,
            x_exact: Some(&m.x_exact),
            ..Default::default()
        };
        let run =
            run_tracked(&a, &m.b, &vec![0.0; a.nrows()], &DelaySchedule::None, &opts).unwrap();
        assert!(run.converged);
        assert!(run.error_history.unwrap().last().unwrap().1 < 1e-4);
    }

    #[test]
    fn tracked_matches_basic_executor_without_extras() {
        let a = fd::paper_fd("fd40")
            .unwrap()
            .scale_to_unit_diagonal()
            .unwrap();
        let (b, x0) = aj_matrices::rhs::paper_problem(40, 6);
        let schedule = DelaySchedule::single_slow_row(20, 7);
        let opts = TrackedOptions {
            tol: 1e-4,
            max_steps: 100_000,
            ..Default::default()
        };
        let t = run_tracked(&a, &b, &x0, &schedule, &opts).unwrap();
        let basic =
            crate::executor::run_async_model(&a, &b, &x0, &schedule, 1e-4, 100_000, Norm::L1)
                .unwrap();
        assert_eq!(t.converged, basic.converged);
        assert_eq!(t.relaxations, basic.relaxations);
        assert!(aj_linalg::vecops::rel_diff(&t.x, &basic.x) < 1e-14);
        assert!(t.error_history.is_none());
    }
}
