//! Shared experiment drivers for the figure-regeneration binaries.
//!
//! Each paper table/figure has a binary under `src/bin/`; the heavy lifting
//! lives here so `run_all` and the individual binaries share one code path.
//! Every driver returns [`aj_core::report::Series`] values; binaries print
//! them and write `results/<figure>.csv`.

use aj_core::dmsim::shmem_sim::run_shmem_async_rowwise;
use aj_core::dmsim::shmem_sim::{ShmemSimConfig, SimDelay, StopRule};
use aj_core::dmsim::{run_dist_async, run_dist_sync, run_shmem_async, run_shmem_sync, DistConfig};
use aj_core::linalg::vecops::Norm;
use aj_core::model::{run_async_model, run_sync_model, DelaySchedule};
use aj_core::partition::block_partition;
use aj_core::report::Series;
use aj_core::Problem;

pub mod par;
pub use par::par_map;

/// Global knobs for a regeneration run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Quick mode: smaller problems / fewer points, for smoke tests.
    pub quick: bool,
    /// Seed for workloads and jitter.
    pub seed: u64,
}

impl RunOptions {
    /// Parses `--quick` and `--seed N` from command-line arguments.
    pub fn from_args() -> RunOptions {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(2018);
        RunOptions { quick, seed }
    }
}

/// Builds a shared-memory sim config whose per-iteration overhead includes
/// the §V O(n) convergence scan — the dominant window cost on the paper's
/// platforms and the reason thread windows are nearly identical.
pub fn shmem_cfg(threads: usize, p: &Problem, seed: u64) -> ShmemSimConfig {
    let mut cfg = ShmemSimConfig::new(threads, p.n(), seed);
    cfg.cost.per_iteration = 40.0 + 0.5 * p.n() as f64;
    cfg
}

/// The paper's Figure 3 worker/problem setup: `fd68`, one worker per row.
pub fn fig3_speedup(opts: RunOptions) -> (Series, Series) {
    let p = Problem::paper_fd("fd68", opts.seed).expect("fd68 exists");
    let tol = 1e-3;

    // Model curve: δ in model steps.
    let deltas_model: Vec<u64> = if opts.quick {
        vec![0, 10, 50, 100]
    } else {
        vec![0, 2, 5, 10, 20, 30, 50, 75, 100]
    };
    let mut model_pts = Vec::new();
    for &d in &deltas_model {
        let schedule = DelaySchedule::single_slow_row(34, d);
        let sync = run_sync_model(&p.a, &p.b, &p.x0, &schedule, tol, 3_000_000, Norm::L1).unwrap();
        let asy = run_async_model(&p.a, &p.b, &p.x0, &schedule, tol, 3_000_000, Norm::L1).unwrap();
        if let (Some(ts), Some(ta)) = (sync.time_to_tolerance(tol), asy.time_to_tolerance(tol)) {
            model_pts.push((d as f64, ts as f64 / (ta.max(1)) as f64));
        }
    }

    // Simulated-threads curve: δ in multiples of the iteration window so the
    // x-axes line up with the model's "delay in units of one iteration".
    let mut sim_pts = Vec::new();
    let window = {
        let cfg = shmem_cfg(68, &p, opts.seed);
        cfg.cost.sweep_cost(p.a.nnz() / 68)
    };
    for &d in &deltas_model {
        let mut cfg = shmem_cfg(68, &p, opts.seed);
        cfg.tol = tol;
        cfg.delay = (d > 0).then_some(SimDelay {
            worker: 34,
            extra_ticks: d as f64 * window,
        });
        let asy = run_shmem_async(&p.a, &p.b, &p.x0, &cfg);
        let syn = run_shmem_sync(&p.a, &p.b, &p.x0, &cfg);
        if let (Some(ts), Some(ta)) = (syn.time_to_tolerance(tol), asy.time_to_tolerance(tol)) {
            sim_pts.push((d as f64, ts / ta.max(1e-12)));
        }
    }
    (
        Series::new("model", model_pts),
        Series::new("simulated threads", sim_pts),
    )
}

/// Figure 4: residual histories for sync/async under several delays.
/// Returns `(model series, simulated-thread series)`.
pub fn fig4_histories(opts: RunOptions) -> (Vec<Series>, Vec<Series>) {
    let p = Problem::paper_fd("fd68", opts.seed).expect("fd68 exists");
    let tol = 1e-3;
    let deltas: Vec<u64> = if opts.quick {
        vec![0, 20, 100]
    } else {
        vec![0, 10, 20, 50, 100]
    };

    let mut model_series = Vec::new();
    for &d in &deltas {
        let schedule = DelaySchedule::single_slow_row(34, d);
        let sync = run_sync_model(&p.a, &p.b, &p.x0, &schedule, tol, 300_000, Norm::L1).unwrap();
        model_series.push(Series::new(
            format!("model sync δ={d}"),
            sync.residual_history
                .iter()
                .map(|&(t, r)| (t as f64, r))
                .collect(),
        ));
        if d > 0 {
            let asy =
                run_async_model(&p.a, &p.b, &p.x0, &schedule, tol, 300_000, Norm::L1).unwrap();
            model_series.push(Series::new(
                format!("model async δ={d}"),
                asy.residual_history
                    .iter()
                    .map(|&(t, r)| (t as f64, r))
                    .collect(),
            ));
        }
    }

    let mut sim_series = Vec::new();
    let window = {
        let cfg = shmem_cfg(68, &p, opts.seed);
        cfg.cost.sweep_cost(p.a.nnz() / 68)
    };
    for &d in &deltas {
        let mut cfg = shmem_cfg(68, &p, opts.seed);
        cfg.tol = tol;
        cfg.sample_every = 68;
        cfg.max_time = 1e9;
        cfg.delay = (d > 0).then_some(SimDelay {
            worker: 34,
            extra_ticks: d as f64 * window,
        });
        let syn = run_shmem_sync(&p.a, &p.b, &p.x0, &cfg);
        sim_series.push(Series::new(
            format!("sim sync δ={d}"),
            syn.samples.iter().map(|s| (s.time, s.residual)).collect(),
        ));
        if d > 0 {
            let asy = run_shmem_async(&p.a, &p.b, &p.x0, &cfg);
            sim_series.push(Series::new(
                format!("sim async δ={d}"),
                asy.samples.iter().map(|s| (s.time, s.residual)).collect(),
            ));
        }
    }
    (model_series, sim_series)
}

/// Figure 5 setup: `fd4624`, thread counts up to 272.
pub fn fig5_scaling(opts: RunOptions) -> (Vec<Series>, Vec<Series>) {
    let p = Problem::paper_fd("fd4624", opts.seed).expect("fd4624 exists");
    let threads: Vec<usize> = if opts.quick {
        vec![4, 17, 68, 272]
    } else {
        vec![1, 2, 4, 8, 17, 34, 68, 136, 272]
    };
    let tol = 1e-3;

    // Each thread count is an independent simulation: fan the sweep across
    // host cores, then reassemble the four curves in input order.
    let per_count = par_map(&threads, |&t| {
        let mut cfg = shmem_cfg(t, &p, opts.seed);
        cfg.tol = tol;
        cfg.max_time = 1e12;
        let syn = run_shmem_sync(&p.a, &p.b, &p.x0, &cfg);
        let asy = run_shmem_async(&p.a, &p.b, &p.x0, &cfg);

        let mut cfg100 = shmem_cfg(t, &p, opts.seed);
        cfg100.stop = StopRule::FixedIterations(100);
        cfg100.tol = 0.0;
        let syn100 = run_shmem_sync(&p.a, &p.b, &p.x0, &cfg100);
        let asy100 = run_shmem_async(&p.a, &p.b, &p.x0, &cfg100);
        (
            syn.time_to_tolerance(tol),
            asy.time_to_tolerance(tol),
            syn100.time,
            asy100.time,
        )
    });

    // (a) time to tolerance.
    let mut sync_tol = Vec::new();
    let mut async_tol = Vec::new();
    // (b) time for 100 iterations.
    let mut sync_100 = Vec::new();
    let mut async_100 = Vec::new();
    for (&t, &(ts, ta, t_syn100, t_asy100)) in threads.iter().zip(per_count.iter()) {
        if let Some(ts) = ts {
            sync_tol.push((t as f64, ts));
        }
        if let Some(ta) = ta {
            async_tol.push((t as f64, ta));
        }
        sync_100.push((t as f64, t_syn100));
        async_100.push((t as f64, t_asy100));
    }
    (
        vec![
            Series::new("sync (to 1e-3)", sync_tol),
            Series::new("async (to 1e-3)", async_tol),
        ],
        vec![
            Series::new("sync (100 iters)", sync_100),
            Series::new("async (100 iters)", async_100),
        ],
    )
}

/// Builds the Figure 6 configuration: the divergence-rescue experiment
/// probes the Jacobi↔Gauss–Seidel boundary, which depends on *within-window*
/// read freshness, so it runs on the row-granular two-phase engine with a
/// compute-dominated window (small convergence-scan share).
fn fig6_cfg(threads: usize, p: &Problem, seed: u64) -> ShmemSimConfig {
    let mut cfg = ShmemSimConfig::new(threads, p.n(), seed);
    cfg.cost.per_iteration = 40.0 + 0.05 * p.n() as f64;
    cfg
}

/// Figure 6: the FE matrix where synchronous Jacobi diverges.
pub fn fig6_divergence_rescue(opts: RunOptions) -> (Vec<Series>, Series) {
    let p = Problem::paper_fe(opts.seed);
    let threads: Vec<usize> = if opts.quick {
        vec![68, 272]
    } else {
        vec![68, 136, 272]
    };
    let iters: u64 = if opts.quick { 150 } else { 400 };
    let mut series = Vec::new();
    for &t in &threads {
        let mut cfg = fig6_cfg(t, &p, opts.seed);
        cfg.stop = StopRule::FixedIterations(iters);
        cfg.tol = 0.0;
        cfg.max_time = 1e13;
        if t == threads[0] {
            // One synchronous curve suffices — iteration counts, not thread
            // counts, determine it (it is exactly global Jacobi).
            let syn = run_shmem_sync(&p.a, &p.b, &p.x0, &cfg);
            series.push(Series::new(
                "sync (any threads)",
                syn.samples
                    .iter()
                    .map(|s| (s.relaxations_per_n, s.residual))
                    .collect(),
            ));
        }
        let asy = run_shmem_async_rowwise(&p.a, &p.b, &p.x0, &cfg);
        series.push(Series::new(
            format!("async, {t} threads"),
            asy.samples
                .iter()
                .map(|s| (s.relaxations_per_n, s.residual))
                .collect(),
        ));
    }
    // (b) long run at max threads to show true convergence.
    let mut cfg = fig6_cfg(*threads.last().unwrap(), &p, opts.seed);
    cfg.stop = StopRule::FixedIterations(4 * iters);
    cfg.tol = 0.0;
    cfg.max_time = 1e14;
    let long = run_shmem_async_rowwise(&p.a, &p.b, &p.x0, &cfg);
    let long_series = Series::new(
        format!("async, {} threads (long)", threads.last().unwrap()),
        long.samples
            .iter()
            .map(|s| (s.relaxations_per_n, s.residual))
            .collect(),
    );
    (series, long_series)
}

/// The Table-I problem list used by Figures 7 and 8 (all but Dubcova2).
pub fn fig7_problem_names() -> [&'static str; 6] {
    [
        "thermomech_dm",
        "parabolic_fem",
        "ecology2",
        "apache2",
        "G3_circuit",
        "thermal2",
    ]
}

/// Rank counts for the distributed figures (paper: 32–4096 over 1–128
/// nodes of 32 ranks).
pub fn fig7_rank_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![32, 256]
    } else {
        vec![32, 128, 512, 2048, 4096]
    }
}

/// Runs one distributed experiment and returns the raw outcome.
fn dist_outcome(
    p: &Problem,
    ranks: usize,
    asynchronous: bool,
    iters: u64,
    seed: u64,
) -> aj_core::dmsim::SimOutcome {
    let partition = block_partition(p.n(), ranks);
    let mut cfg = DistConfig::new(p.n(), seed);
    cfg.stop = StopRule::FixedIterations(iters);
    cfg.tol = 0.0;
    cfg.max_time = 1e14;
    cfg.sample_every = (p.n() as u64 * 2).max(1);
    if asynchronous {
        run_dist_async(&p.a, &p.b, &p.x0, &partition, &cfg)
    } else {
        run_dist_sync(&p.a, &p.b, &p.x0, &partition, &cfg)
    }
}

fn dist_label(ranks: usize, asynchronous: bool) -> String {
    if asynchronous {
        format!("async, {ranks} ranks")
    } else {
        format!("sync, {ranks} ranks")
    }
}

/// One distributed experiment: the residual-vs-relaxations curve (Figure 7).
pub fn dist_curve(p: &Problem, ranks: usize, asynchronous: bool, iters: u64, seed: u64) -> Series {
    let out = dist_outcome(p, ranks, asynchronous, iters, seed);
    Series::new(
        dist_label(ranks, asynchronous),
        out.samples
            .iter()
            .map(|s| (s.relaxations_per_n, s.residual))
            .collect(),
    )
}

/// One distributed experiment: the residual-vs-time curve (Figure 8).
pub fn dist_time_curve(
    p: &Problem,
    ranks: usize,
    asynchronous: bool,
    iters: u64,
    seed: u64,
) -> Series {
    let out = dist_outcome(p, ranks, asynchronous, iters, seed);
    Series::new(
        dist_label(ranks, asynchronous),
        out.samples.iter().map(|s| (s.time, s.residual)).collect(),
    )
}

/// Scale used for suite problems in figure runs.
pub fn suite_scale(quick: bool) -> aj_core::matrices::suite::Scale {
    if quick {
        aj_core::matrices::suite::Scale::Tiny
    } else {
        aj_core::matrices::suite::Scale::Small
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig3_produces_increasing_speedup() {
        let (model, sim) = fig3_speedup(RunOptions {
            quick: true,
            seed: 1,
        });
        assert!(model.points.len() >= 3);
        assert!(sim.points.len() >= 3);
        // Speedup grows with delay in both model and simulation.
        let m_first = model.points.first().unwrap().1;
        let m_last = model.points.last().unwrap().1;
        assert!(
            m_last > m_first,
            "model speedup should grow: {m_first} → {m_last}"
        );
        let s_last = sim.points.last().unwrap().1;
        assert!(s_last > 2.0, "simulated speedup at large delay: {s_last}");
    }

    #[test]
    fn quick_dist_curve_decreases() {
        let p = Problem::suite("ecology2", aj_core::matrices::suite::Scale::Tiny, 7).unwrap();
        let s = dist_curve(&p, 32, true, 50, 7);
        assert!(s.points.len() > 2);
        assert!(s.final_y() < s.points[0].1, "residual should fall");
    }

    #[test]
    fn options_parse_defaults() {
        let o = RunOptions {
            quick: false,
            seed: 2018,
        };
        assert_eq!(o.seed, 2018);
    }
}
