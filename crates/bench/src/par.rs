//! Parallel sweep runner for the figure drivers.
//!
//! Every figure is a sweep: the same deterministic simulation evaluated at
//! each point of a config list (thread counts, rank counts, delays, ω
//! values). The points are independent — each run seeds its own jitter
//! stream — so they can fan out across host cores without changing any
//! number. [`par_map`] does exactly that: work-steals the input list with
//! an atomic cursor over crossbeam scoped threads, then reassembles results
//! **in input order** so downstream series/CSV output is byte-identical to
//! the serial loop it replaces.
//!
//! Single-core hosts (and single-item lists) degrade to a plain serial
//! iteration — no threads are spawned at all.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every input across all available cores, returning outputs
/// in input order.
///
/// An atomic cursor hands out indices one at a time, so an expensive point
/// (say, 4096 ranks) occupies one core while the cheap points drain on the
/// others — better balance than pre-chunking for the heavily skewed costs
/// of scaling sweeps.
///
/// # Panics
/// Propagates a panic from `f` (the whole sweep is aborted).
pub fn par_map<I, O, F>(inputs: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    par_map_workers(inputs, workers, f)
}

/// [`par_map`] with an explicit worker count (`par_map` passes the host's
/// available parallelism). `workers <= 1` — or a list of fewer than two
/// items — runs serially without spawning any threads.
pub fn par_map_workers<I, O, F>(inputs: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return inputs.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let per_thread: Vec<Vec<(usize, O)>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, f(&inputs[i])));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope panicked");

    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    for (i, out) in per_thread.into_iter().flatten() {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::{par_map, par_map_workers};

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = par_map(&inputs, |&i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<u64>>());
    }

    #[test]
    fn threaded_path_matches_serial() {
        // Force multiple workers regardless of the host's core count.
        let inputs: Vec<u64> = (0..64).collect();
        let out = par_map_workers(&inputs, 4, |&i| i * 3 + 1);
        assert_eq!(out, inputs.iter().map(|&i| i * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(par_map(&none, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_serial_reference_under_skewed_cost() {
        // Heavier work for low indices exercises the work-stealing cursor.
        let inputs: Vec<usize> = (0..32).collect();
        let f = |&i: &usize| -> f64 {
            let rounds = if i < 4 { 200_000 } else { 100 };
            let mut acc = 0.0f64;
            for k in 0..rounds {
                acc += ((i * 31 + k) as f64).sqrt();
            }
            acc
        };
        let serial: Vec<f64> = inputs.iter().map(f).collect();
        assert_eq!(par_map_workers(&inputs, 3, f), serial);
    }

    // No `expected` string: the message differs between the serial path
    // (the original panic) and the threaded path (the join wrapper).
    #[test]
    #[should_panic]
    fn worker_panic_aborts_the_sweep() {
        let inputs: Vec<u32> = (0..8).collect();
        par_map(&inputs, |&i| {
            assert!(i != 5, "boom");
            i
        });
    }
}
