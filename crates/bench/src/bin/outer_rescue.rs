//! The divergence-rescue experiment behind DESIGN.md §17 and the
//! `outer-matrix` CI smoke: on the Dubcova2 tiny analogue (`ρ(G) > 1`,
//! standalone asynchronous Jacobi diverges), the *same* asynchronous
//! relaxation engine converges when demoted from solver to component —
//! as the smoother inside `outer=vcycle` and as the preconditioner
//! inside `outer=fcg`.
//!
//! Emits three residual curves (standalone / vcycle / fcg; x = outer
//! iteration for the outer runs, sweep index for standalone) to
//! `results/outer_rescue.csv` and prints them as a table. Exits non-zero
//! if the rescue fails: the standalone run must *not* converge while both
//! outer runs must reach the tolerance — this is the paper-level claim the
//! CSV documents, so a silent regression here must fail CI.

use aj_bench::RunOptions;
use aj_core::report::{print_table, results_path, write_csv, Series};
use aj_core::{solve, Backend, Problem, SolveOptions};

const TOL: f64 = 1e-6;

fn main() {
    let opts = RunOptions::from_args();
    let p = Problem::suite("Dubcova2", aj_core::matrices::suite::Scale::Tiny, opts.seed)
        .expect("Dubcova2");
    let backend = Backend::SimShared {
        workers: 8,
        asynchronous: true,
    };
    let run = |outer: Option<&str>, max_iterations: u64| {
        let o = SolveOptions {
            tol: TOL,
            max_iterations,
            seed: opts.seed,
            outer: outer.map(|s| aj_core::spec::parse_outer(s).expect("outer selector")),
            ..Default::default()
        };
        solve(&p, backend, &o).expect("solve")
    };

    let standalone = run(None, if opts.quick { 300 } else { 1000 });
    let vcycle = run(Some("vcycle:smooth=richardson1:omega=auto"), 200);
    let fcg = run(Some("fcg:prec=richardson1:omega=auto"), 400);

    let series = vec![
        Series::new("standalone async (sweeps)", standalone.history.clone()),
        Series::new("outer=vcycle (cycles)", vcycle.history.clone()),
        Series::new("outer=fcg (iterations)", fcg.history.clone()),
    ];
    print_table(
        &format!("Divergence rescue: Dubcova2 tiny (n = {})", p.n()),
        "iteration",
        &series,
    );
    write_csv(&results_path("outer_rescue"), &series).expect("write results/outer_rescue.csv");
    println!(
        "\nstandalone: converged={} final={:.3e} | vcycle: converged={} final={:.3e} \
         | fcg: converged={} final={:.3e}",
        standalone.converged,
        standalone.final_residual,
        vcycle.converged,
        vcycle.final_residual,
        fcg.converged,
        fcg.final_residual,
    );

    // The claim itself, gated: the same async engine diverges standalone
    // and converges inside either outer iteration.
    let mut failed = false;
    if standalone.converged || standalone.final_residual < 1.0 {
        eprintln!(
            "outer_rescue FAILED: standalone async Jacobi no longer diverges \
             (final residual {:.3e}) — the rescue has nothing to rescue",
            standalone.final_residual
        );
        failed = true;
    }
    for (name, rep) in [("vcycle", &vcycle), ("fcg", &fcg)] {
        if !rep.converged {
            eprintln!(
                "outer_rescue FAILED: outer={name} did not converge \
                 (final residual {:.3e})",
                rep.final_residual
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("Paper: a divergent async iteration is rescued by outer acceleration.");
}
