//! Regenerates Figure 5: shared-memory strong scaling on the 4624-row FD
//! matrix. (a) time to reach relative residual 1e-3 vs thread count;
//! (b) time for 100 iterations vs thread count. The paper's findings:
//! async is fastest at the *largest* thread count (272) while sync is
//! fastest at fewer threads, and async is over 10× faster at scale.

use aj_bench::{fig5_scaling, RunOptions};
use aj_core::report::{print_table, results_path, write_csv};

fn main() {
    let opts = RunOptions::from_args();
    let (to_tol, hundred) = fig5_scaling(opts);
    print_table(
        "Figure 5(a): time to rel. residual ≤ 1e-3",
        "threads",
        &to_tol,
    );
    print_table("Figure 5(b): time for 100 iterations", "threads", &hundred);
    let mut all = to_tol;
    all.extend(hundred);
    write_csv(&results_path("fig5"), &all).expect("write results/fig5.csv");
    println!("\nPaper: async minimizes (a) at 272 threads; sync minimizes it below 272;");
    println!("async stays faster than sync in (b) at every thread count.");
}
