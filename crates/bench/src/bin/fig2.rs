//! Regenerates Figure 2: fraction of propagated relaxations as a function
//! of thread count, for the paper's two platforms:
//! * "CPU": the 40-row FD matrix with 5/10/20/40 threads;
//! * "Phi": the 272-row FD matrix with 17/34/68/136/272 threads.
//!
//! Two data sources: the deterministic simulated-thread engine (primary,
//! scales to 272 workers) and the real-`std::thread` traced solver as a
//! cross-check at small counts.

use aj_bench::{par_map, RunOptions};
use aj_core::dmsim::shmem_sim::{run_shmem_async_traced, ShmemSimConfig, StopRule};
use aj_core::report::{print_series_blocks, results_path, write_csv, Series};
use aj_core::trace::reconstruct;
use aj_core::Problem;

fn main() {
    let opts = RunOptions::from_args();
    let iterations: usize = if opts.quick { 10 } else { 30 };
    let mut all = Vec::new();
    for (label, matrix, threads) in [
        ("CPU (fd40)", "fd40", vec![5usize, 10, 20, 40]),
        ("Phi (fd272)", "fd272", vec![17, 34, 68, 136, 272]),
    ] {
        let p = Problem::paper_fd(matrix, opts.seed).expect("paper FD matrix");
        let pts = par_map(&threads, |&t| {
            let mut cfg = ShmemSimConfig::new(t, p.n(), opts.seed);
            cfg.stop = StopRule::FixedIterations(iterations as u64);
            cfg.tol = 0.0;
            let (_, trace) = run_shmem_async_traced(&p.a, &p.b, &p.x0, &cfg);
            (t as f64, reconstruct(&trace).fraction())
        });
        all.push(Series::new(format!("simulated {label}"), pts));
    }

    // Cross-check with real threads (small counts only on this host).
    let p = Problem::paper_fd("fd40", opts.seed).unwrap();
    let mut real_pts = Vec::new();
    for &t in &[2usize, 5, 10] {
        let (trace, _) = aj_core::shmem::traced::run_traced(&p.a, &p.b, &p.x0, t, iterations);
        real_pts.push((t as f64, reconstruct(&trace).fraction()));
    }
    all.push(Series::new("real threads (fd40)", real_pts));

    print_series_blocks(
        "Figure 2: fraction of propagated relaxations vs threads",
        "threads",
        &all,
    );
    write_csv(&results_path("fig2"), &all).expect("write results/fig2.csv");
    println!("\nPaper: fractions 0.8–0.99, increasing as rows-per-thread shrink;");
    println!("our simulated traces dip lower at intermediate counts (see EXPERIMENTS.md).");
}
