//! Regenerates Table I: the test-problem inventory, with the paper's
//! original sizes alongside our synthetic analogues (including measured
//! ρ(G), which determines whether synchronous Jacobi converges).

use aj_bench::{suite_scale, RunOptions};
use aj_core::linalg::eigen;
use aj_core::matrices::suite::suite_problems;

fn main() {
    let opts = RunOptions::from_args();
    let scale = suite_scale(opts.quick);
    println!("== Table I: test problems (paper vs analogue at {scale:?} scale) ==");
    println!(
        "{:>15} {:>12} {:>12} {:>10} {:>10} {:>8}  analogue",
        "matrix", "paper nnz", "paper eqs", "our nnz", "our eqs", "ρ(G)"
    );
    for p in suite_problems() {
        let a = p.build(scale);
        let rho = eigen::jacobi_spectral_radius_unit_diag(&a, 200).unwrap_or(f64::NAN);
        println!(
            "{:>15} {:>12} {:>12} {:>10} {:>10} {:>8.4}  {}",
            p.name,
            p.paper_nonzeros,
            p.paper_equations,
            a.nnz(),
            a.nrows(),
            rho,
            p.analogue
        );
    }
    println!("\nJacobi converges on all problems except Dubcova2 (ρ(G) > 1), as in the paper.");
}
