//! Regenerates Figure 1: the two four-process relaxation histories of
//! §IV-A — (a) expressible as a propagation-matrix sequence, (b) not.

use aj_core::trace::{examples, reconstruct};

fn main() {
    for (name, trace) in [
        ("Figure 1(a)", examples::figure1a()),
        ("Figure 1(b)", examples::figure1b()),
    ] {
        let analysis = reconstruct(&trace);
        println!("== {name} ==");
        println!("relaxations: {}", analysis.total);
        println!(
            "propagated:  {} (fraction {:.2})",
            analysis.propagated,
            analysis.fraction()
        );
        for (l, phi) in analysis.steps.iter().enumerate() {
            let names: Vec<String> = phi.iter().map(|&r| format!("p{}", r + 1)).collect();
            println!("Φ({}) = {{{}}}", l + 1, names.join(", "));
        }
        for &(row, k) in &analysis.non_propagated {
            println!("not propagated: relaxation {} of p{}", k + 1, row + 1);
        }
        println!();
    }
    println!("Paper: (a) reconstructs as Φ(1)={{p4}}, Φ(2)={{p1,p2}}, Φ(3)={{p3}};");
    println!("       (b) strands p3's relaxation (3 of 4 propagated).");
}
