//! Wall-clock baseline for the dmsim hot paths, written to
//! `BENCH_dmsim.json` at the repo root (or the path given as the first
//! non-flag argument). CI runs this so perf regressions in the event
//! engine show up as a diffable number; the committed file records the
//! reference host's timings.
//!
//! Timings are medians of `REPS` runs — the quick figure workloads finish
//! in well under a second each, so a median over a few runs is stable
//! enough to compare engine versions on one host. Cross-host numbers are
//! not comparable; re-baseline when the reference machine changes.
//!
//! The distributed workload is also timed with sampled observability
//! (`ObsConfig::sampled(16)`), and the obs-on/obs-off ratio is recorded as
//! `obs_overhead_frac`. Unlike the absolute timings, the ratio *is*
//! host-independent enough to gate on: with `--guard`, the binary exits
//! non-zero when sampled recording costs more than the 5% budget the obs
//! layer promises (DESIGN.md §11).

use aj_bench::{fig5_scaling, RunOptions};
use aj_core::dmsim::shmem_sim::StopRule;
use aj_core::dmsim::{run_dist_async, DistConfig, ObsConfig};
use aj_core::linalg::{StorageFormat, SweepKernel};
use aj_core::partition::block_partition;
use aj_core::Problem;
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 5;
/// Block sweeps per sweep-kernel timing sample.
const KERNEL_SWEEPS: usize = 200;

fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[REPS / 2]
}

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_dmsim.json".to_string());
    let opts = RunOptions {
        quick: true,
        seed: 2018,
    };

    // Figure 5 quick sweep: the shmem engine across 4 thread counts × 2
    // stop rules × sync/async (16 simulations).
    let fig5 = median_secs(|| {
        let _ = fig5_scaling(opts);
    });

    // Figure 7-style quick run: the dist engine at 256 ranks on the
    // smallest Table-I problem, fixed 60 iterations.
    let p = Problem::suite(
        "thermomech_dm",
        aj_core::matrices::suite::Scale::Tiny,
        opts.seed,
    )
    .expect("known problem");
    let partition = block_partition(p.n(), 256.min(p.n()));
    let dist_run = |iters: u64, obs: ObsConfig| {
        let mut cfg = DistConfig::new(p.n(), opts.seed);
        cfg.stop = StopRule::FixedIterations(iters);
        cfg.tol = 0.0;
        cfg.max_time = 1e14;
        cfg.obs = obs;
        let _ = run_dist_async(&p.a, &p.b, &p.x0, &partition, &cfg);
    };
    // Interleaved min-of-N is the stable estimator for a ratio of two short
    // runs: noise only ever adds time, so the minimum of each series
    // approaches the true cost of the code path.
    let mut fig7 = f64::INFINITY;
    let mut fig7_obs = f64::INFINITY;
    for _ in 0..11 {
        let t0 = Instant::now();
        dist_run(60, ObsConfig::off());
        fig7 = fig7.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        dist_run(60, ObsConfig::sampled(16));
        fig7_obs = fig7_obs.min(t0.elapsed().as_secs_f64());
    }
    // The gated ratio is the median of per-pair ratios: host-speed drift
    // over the measurement (frequency scaling, co-tenants) inflates an
    // adjacent off/obs pair equally and cancels in their ratio, where a
    // min-of-series or median-of-series comparison would absorb the drift
    // into the overhead estimate.
    let mut ratios: Vec<f64> = (0..9)
        .map(|_| {
            let t0 = Instant::now();
            dist_run(240, ObsConfig::off());
            let off = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            dist_run(240, ObsConfig::sampled(16));
            t0.elapsed().as_secs_f64() / off
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let overhead = ratios[ratios.len() / 2] - 1.0;

    // Sweep-kernel throughput: one whole-matrix kernel per storage format
    // on the same suite problem, min of 9 samples of KERNEL_SWEEPS block
    // sweeps each (minimum because noise only ever adds time). Reported as
    // µs per sweep, plus each format's speedup over the scalar CSR loop.
    let kernel_us = |format: StorageFormat| {
        let mut k = SweepKernel::build(&p.a, 0..p.n(), format).expect("kernel build");
        let mut out = vec![0.0; p.n()];
        let mut best = f64::INFINITY;
        for _ in 0..9 {
            let t0 = Instant::now();
            for _ in 0..KERNEL_SWEEPS {
                k.residuals_into(black_box(&p.a), &p.x0, &p.b, &mut out);
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        black_box(&out);
        best / KERNEL_SWEEPS as f64 * 1e6
    };
    let k_csr = kernel_us(StorageFormat::Csr);
    let k_sellc = kernel_us(StorageFormat::SellC { c: 8 });
    let k_rcm = kernel_us(StorageFormat::RcmBlocked);
    let sellc_speedup = k_csr / k_sellc;
    let rcm_speedup = k_csr / k_rcm;

    // Outer-solver baselines: a V-cycle and an FCG solve wrapping the async
    // shmem simulator as smoother/preconditioner on grid:31x31 to 1e-8
    // (DESIGN.md §17). The timings are host-bound like everything above,
    // but the outer iteration counts are seeded-deterministic, so --guard
    // pins them as host-independent regression tripwires.
    let outer_run = |selector: &str| {
        let gp = aj_core::spec::load_problem("grid:31x31", opts.seed).expect("grid problem");
        let o = aj_core::SolveOptions {
            tol: 1e-8,
            seed: opts.seed,
            outer: Some(aj_core::spec::parse_outer(selector).expect("outer selector")),
            ..Default::default()
        };
        let backend = aj_core::Backend::SimShared {
            workers: 8,
            asynchronous: true,
        };
        let mut iters = 0;
        let secs = median_secs(|| {
            let rep = aj_core::solve(&gp, backend, &o).expect("outer solve");
            assert!(rep.converged, "{selector} failed to converge on grid:31x31");
            iters = rep.outer.as_ref().map_or(0, |orep| orep.iterations);
        });
        (secs, iters)
    };
    let (vcycle_secs, vcycle_cycles) = outer_run("vcycle:smooth=richardson1:omega=auto");
    let (fcg_secs, fcg_iters) = outer_run("fcg:prec=richardson1:omega=auto");

    // Closed-loop rescue scenario (DESIGN.md §18): richardson2 with the
    // sync-optimal ω/β is unstable on the async dist engine once links
    // degrade — the momentum term amplifies stale reads (the paper's
    // surprising result for heavy-ball under delay). Uncontrolled, the
    // residual diverges and the pinned 2000-iteration budget is blown;
    // with the controller on, the stall detector catches the flat/growing
    // residual window and switches to first-order relaxation mid-solve.
    // Engine, seed, fault plan, and budget are identical across the pair —
    // only `control` differs — and the outcome is seeded-deterministic, so
    // --guard pins it as a host-independent tripwire.
    let rescue_run = |control: &str| {
        let gp = aj_core::spec::load_problem("grid:16x16", opts.seed).expect("grid problem");
        let o = aj_core::SolveOptions {
            tol: 1e-6,
            max_iterations: 2000,
            seed: opts.seed,
            method: aj_core::spec::parse_method("richardson2:omega=auto").expect("method"),
            faults: Some(aj_core::dmsim::fault::FaultPlan::new(opts.seed).with_link(
                aj_core::dmsim::fault::LinkFault {
                    latency_factor: 8.0,
                    ..aj_core::dmsim::fault::LinkFault::everywhere()
                },
            )),
            control: aj_core::spec::parse_control(control).expect("control selector"),
            ..Default::default()
        };
        let backend = aj_core::Backend::SimDistributed {
            ranks: 16,
            asynchronous: true,
            detect: false,
        };
        let rep = aj_core::solve(&gp, backend, &o).expect("rescue solve");
        let decisions = rep.control.as_ref().map_or(0, |c| c.decisions.len());
        (rep.converged, rep.final_residual, decisions)
    };
    let (off_converged, off_resid, _) = rescue_run("off");
    let (on_converged, on_resid, on_decisions) = rescue_run("on");

    let json = format!(
        "{{\n  \"description\": \"dmsim wall-clock baselines (fig5: median of {REPS} runs; dist: min of 11 interleaved runs, seconds; overhead: median of 9 paired obs/off ratios at 240 iterations; sweep_kernel: min-of-9 µs per whole-matrix block sweep on thermomech_dm:tiny; outer: median of {REPS} vcycle/fcg solves wrapping the async shmem sim on grid:31x31 to 1e-8; rescue: seeded grid:16x16 dist-async x16 momentum divergence, controller off vs on)\",\n  \"fig5_quick_seconds\": {fig5:.4},\n  \"dist_async_256r_60it_seconds\": {fig7:.4},\n  \"dist_async_256r_60it_obs_sampled16_seconds\": {fig7_obs:.4},\n  \"obs_overhead_frac\": {overhead:.4},\n  \"sweep_kernel_csr_us\": {k_csr:.2},\n  \"sweep_kernel_sellc8_us\": {k_sellc:.2},\n  \"sweep_kernel_rcm_blocked_us\": {k_rcm:.2},\n  \"sweep_kernel_sellc8_speedup\": {sellc_speedup:.3},\n  \"sweep_kernel_rcm_blocked_speedup\": {rcm_speedup:.3},\n  \"outer_vcycle_grid31_seconds\": {vcycle_secs:.4},\n  \"outer_vcycle_grid31_cycles\": {vcycle_cycles},\n  \"outer_fcg_grid31_seconds\": {fcg_secs:.4},\n  \"outer_fcg_grid31_iters\": {fcg_iters},\n  \"rescue_off_converged\": {off_converged},\n  \"rescue_off_residual\": {off_resid:.3e},\n  \"rescue_on_converged\": {on_converged},\n  \"rescue_on_residual\": {on_resid:.3e},\n  \"rescue_on_decisions\": {on_decisions}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write baseline JSON");
    print!("{json}");
    eprintln!("wrote {out_path}");

    if std::env::args().any(|a| a == "--guard") {
        let mut failed = false;
        if overhead > 0.05 {
            eprintln!(
                "obs overhead guard FAILED: sampled(16) costs {:.1}% (> 5% budget)",
                overhead * 100.0
            );
            failed = true;
        }
        // The SIMD formats exist to beat the scalar CSR loop; fail when the
        // best of them regresses more than 5% below it.
        let best_speedup = sellc_speedup.max(rcm_speedup);
        if best_speedup < 0.95 {
            eprintln!(
                "sweep-kernel guard FAILED: best SIMD format runs at {best_speedup:.2}x \
                 the CSR sweep (< 0.95x floor)"
            );
            failed = true;
        }
        // Outer convergence is seeded-deterministic on this workload; the
        // caps are ~2x the observed counts, so they trip on algorithmic
        // regressions (smoother mistuning, broken coarse transfer), not on
        // host speed.
        if vcycle_cycles > 25 {
            eprintln!(
                "outer guard FAILED: vcycle took {vcycle_cycles} cycles on grid:31x31 \
                 (> 25 cap)"
            );
            failed = true;
        }
        if fcg_iters > 300 {
            eprintln!(
                "outer guard FAILED: fcg took {fcg_iters} iterations on grid:31x31 \
                 (> 300 cap)"
            );
            failed = true;
        }
        // The rescue pair is seeded-deterministic: uncontrolled momentum
        // must blow the budget, the controller must reach the tolerance.
        // Either side flipping means the stall detector or the ω/β
        // adaptation regressed.
        if off_converged {
            eprintln!(
                "rescue guard FAILED: uncontrolled richardson2 converged under the \
                 degraded-link fault (the scenario no longer stresses the controller)"
            );
            failed = true;
        }
        if !on_converged || on_decisions == 0 {
            eprintln!(
                "rescue guard FAILED: controlled run converged={on_converged} with \
                 {on_decisions} decisions (residual {on_resid:.3e}); the controller \
                 failed to rescue the stalled solve"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
