//! Wall-clock baseline for the dmsim hot paths, written to
//! `BENCH_dmsim.json` at the repo root (or the path given as the first
//! non-flag argument). CI runs this so perf regressions in the event
//! engine show up as a diffable number; the committed file records the
//! reference host's timings.
//!
//! Timings are medians of `REPS` runs — the quick figure workloads finish
//! in well under a second each, so a median over a few runs is stable
//! enough to compare engine versions on one host. Cross-host numbers are
//! not comparable; re-baseline when the reference machine changes.

use aj_bench::{fig5_scaling, RunOptions};
use aj_core::dmsim::shmem_sim::StopRule;
use aj_core::dmsim::{run_dist_async, DistConfig};
use aj_core::partition::block_partition;
use aj_core::Problem;
use std::time::Instant;

const REPS: usize = 5;

fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[REPS / 2]
}

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_dmsim.json".to_string());
    let opts = RunOptions {
        quick: true,
        seed: 2018,
    };

    // Figure 5 quick sweep: the shmem engine across 4 thread counts × 2
    // stop rules × sync/async (16 simulations).
    let fig5 = median_secs(|| {
        let _ = fig5_scaling(opts);
    });

    // Figure 7-style quick run: the dist engine at 256 ranks on the
    // smallest Table-I problem, fixed 60 iterations.
    let p = Problem::suite(
        "thermomech_dm",
        aj_core::matrices::suite::Scale::Tiny,
        opts.seed,
    )
    .expect("known problem");
    let partition = block_partition(p.n(), 256.min(p.n()));
    let fig7 = median_secs(|| {
        let mut cfg = DistConfig::new(p.n(), opts.seed);
        cfg.stop = StopRule::FixedIterations(60);
        cfg.tol = 0.0;
        cfg.max_time = 1e14;
        let _ = run_dist_async(&p.a, &p.b, &p.x0, &partition, &cfg);
    });

    let json = format!(
        "{{\n  \"description\": \"dmsim wall-clock baselines (median of {REPS} runs, seconds)\",\n  \"fig5_quick_seconds\": {fig5:.4},\n  \"dist_async_256r_60it_seconds\": {fig7:.4}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write baseline JSON");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
