//! Ablation studies for the design choices called out in DESIGN.md §5:
//!
//! * `jitter`  — how per-iteration noise magnitude affects the asynchronous
//!   advantage (noise is the staggering mechanism);
//! * `latency` — put-latency sweep: the crossover into the stale-ghost
//!   regime where async needs *more* relaxations (Bethune et al.'s
//!   large-core-count observation);
//! * `mask`    — §IV-D in the model: convergence rate of random-mask
//!   propagation sequences vs mask density;
//! * `partition` — BFS graph-grown vs contiguous-block subdomains: edge cut
//!   and async convergence impact.
//! * `faults`  — the Theorem-1 robustness story: residual behaviour under
//!   each injected fault class (drops, duplicates/reorders, degraded links,
//!   stalls, recovering and permanent crashes), W.D.D. matrix, termination
//!   via the staleness-timeout path.
//!
//! Run all: `cargo run --release -p aj-bench --bin ablations`
//! or one:  `... --bin ablations jitter`

use aj_bench::{par_map, RunOptions};
use aj_core::dmsim::cost::Jitter;
use aj_core::dmsim::{run_dist_async, run_dist_sync, DistConfig, DistVariant};
use aj_core::linalg::vecops::Norm;
use aj_core::model::{run_async_model, DelaySchedule};
use aj_core::partition::{bfs_partition, block_partition};
use aj_core::report::{print_table, results_path, write_csv, Series};
use aj_core::Problem;

fn main() {
    let opts = RunOptions::from_args();
    let which: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let all = which.is_empty();
    let has = |name: &str| all || which.iter().any(|w| w == name);

    if has("jitter") {
        ablation_jitter(opts);
    }
    if has("latency") {
        ablation_latency(opts);
    }
    if has("mask") {
        ablation_mask_density(opts);
    }
    if has("partition") {
        ablation_partition(opts);
    }
    if has("eager") {
        ablation_eager(opts);
    }
    if has("omega") {
        ablation_omega(opts);
    }
    if has("local-solve") {
        ablation_local_solve(opts);
    }
    if has("faults") {
        ablation_faults(opts);
    }
}

/// Fault tolerance (Theorem 1 in practice): one curve per fault class on a
/// W.D.D. FD Laplacian, all with the termination protocol stopping through
/// report staleness. Fault times are scheduled relative to the fault-free
/// run's duration so the classes stay comparable across matrix sizes.
fn ablation_faults(opts: RunOptions) {
    use aj_core::dmsim::fault::{FaultPlan, LinkFault};
    use aj_core::dmsim::TerminationProtocol;
    let name = if opts.quick { "fd68" } else { "fd272" };
    let p = Problem::paper_fd(name, opts.seed).unwrap();
    let partition = block_partition(p.n(), 8);
    let tol = 1e-4;
    let base_cfg = || {
        let mut cfg = DistConfig::new(p.n(), opts.seed);
        cfg.tol = tol;
        cfg
    };
    // Fault-free probe: sizes the fault schedule.
    let baseline = run_dist_async(&p.a, &p.b, &p.x0, &partition, &base_cfg());
    let t_total = baseline.time;
    let drop10 = LinkFault {
        drop: 0.10,
        ..LinkFault::everywhere()
    };
    let classes: Vec<(&str, Option<FaultPlan>)> = vec![
        ("no faults", None),
        (
            "drop 10%",
            Some(FaultPlan::new(opts.seed).with_link(drop10)),
        ),
        (
            "dup 20% + reorder 20%",
            Some(FaultPlan::new(opts.seed).with_link(LinkFault {
                duplicate: 0.20,
                reorder: 0.20,
                ..LinkFault::everywhere()
            })),
        ),
        (
            "all links 4x latency",
            Some(FaultPlan::new(opts.seed).with_link(LinkFault {
                latency_factor: 4.0,
                ..LinkFault::everywhere()
            })),
        ),
        (
            "stall rank 3 for 25%",
            Some(FaultPlan::new(opts.seed).with_stall(3, 0.25 * t_total, 0.25 * t_total)),
        ),
        (
            "crash rank 3, recovers",
            Some(FaultPlan::new(opts.seed).with_crash(3, 0.25 * t_total, Some(0.20 * t_total))),
        ),
        (
            "crash rank 3 + drop 10%",
            Some(
                FaultPlan::new(opts.seed)
                    .with_link(drop10)
                    .with_crash(3, 0.25 * t_total, None),
            ),
        ),
    ];
    let results = par_map(&classes, |(label, plan)| {
        let mut cfg = base_cfg();
        cfg.termination = Some(TerminationProtocol::with_staleness_timeout(0.15 * t_total));
        cfg.max_time = 5.0 * t_total;
        cfg.faults = plan.clone();
        let out = run_dist_async(&p.a, &p.b, &p.x0, &partition, &cfg);
        let curve: Vec<(f64, f64)> = out.samples.iter().map(|s| (s.time, s.residual)).collect();
        let term = out.termination.clone().unwrap_or_default();
        (label.to_string(), curve, term, out.comm, out.faults)
    });
    println!("== Ablation: fault classes ({name}, 8 ranks, tol {tol:.0e}) ==");
    println!(
        "{:<24} {:>10} {:>12} {:>8} {:>6} {:>8} {:>10}",
        "class", "stop time", "final resid", "drops", "dups", "reorders", "excluded"
    );
    let mut series = Vec::new();
    for (label, curve, term, comm, _faults) in results {
        let final_resid = curve.last().map_or(f64::NAN, |p| p.1);
        println!(
            "{label:<24} {:>10.0} {final_resid:>12.3e} {:>8} {:>6} {:>8} {:>10}",
            term.detected_at.unwrap_or(f64::NAN),
            comm.drops,
            comm.duplicates,
            comm.reorders,
            if term.excluded_ranks.is_empty() {
                "-".to_string()
            } else {
                format!("{:?}", term.excluded_ranks)
            },
        );
        series.push(Series::new(label, curve));
    }
    write_csv(&results_path("ablation_faults"), &series).unwrap();
}

/// Damping weight ω on the FE matrix: plain synchronous Jacobi diverges
/// (ρ(G) > 1) but damped variants converge, at a speed that peaks near the
/// optimal ω — the classical counterpart of the paper's asynchronous
/// rescue, for context.
fn ablation_omega(opts: RunOptions) {
    use aj_core::dmsim::shmem_sim::{run_shmem_sync, ShmemSimConfig, StopRule};
    let p = Problem::paper_fe(opts.seed);
    let omegas = [0.4, 0.55, 0.7, 0.85, 1.0];
    let finals = par_map(&omegas, |&omega| {
        let mut cfg = ShmemSimConfig::new(8, p.n(), opts.seed);
        cfg.stop = StopRule::FixedIterations(400);
        cfg.tol = 0.0;
        cfg.max_time = 1e14;
        cfg.omega = omega;
        let out = run_shmem_sync(&p.a, &p.b, &p.x0, &cfg);
        (omega, out.final_residual())
    });
    let series = vec![Series::new("sync final residual after 400 iters", finals)];
    print_table("Ablation: damping weight ω on the FE matrix", "ω", &series);
    write_csv(&results_path("ablation_omega"), &series).unwrap();
}

/// Local subdomain solver: one Jacobi iteration (the paper) vs one
/// Gauss–Seidel sweep (Jager & Bradley's inexact block Jacobi).
fn ablation_local_solve(opts: RunOptions) {
    use aj_core::dmsim::dist::LocalSolve;
    let p = Problem::suite("ecology2", aj_core::matrices::suite::Scale::Tiny, opts.seed).unwrap();
    let tol = 1e-2;
    let configs: Vec<(usize, LocalSolve)> = [8usize, 32, 128]
        .iter()
        .flat_map(|&r| [(r, LocalSolve::Jacobi), (r, LocalSolve::GaussSeidel)])
        .collect();
    let results = par_map(&configs, |&(ranks, solve)| {
        let partition = block_partition(p.n(), ranks);
        let mut cfg = DistConfig::new(p.n(), opts.seed);
        cfg.tol = tol;
        cfg.local_solve = solve;
        let out = run_dist_async(&p.a, &p.b, &p.x0, &partition, &cfg);
        out.relaxations_to_tolerance(tol)
    });
    let mut jac_pts = Vec::new();
    let mut gs_pts = Vec::new();
    for (&(ranks, solve), r) in configs.iter().zip(results) {
        if let Some(r) = r {
            match solve {
                LocalSolve::Jacobi => jac_pts.push((ranks as f64, r)),
                LocalSolve::GaussSeidel => gs_pts.push((ranks as f64, r)),
            }
        }
    }
    let series = vec![
        Series::new("local Jacobi relax/n", jac_pts),
        Series::new("local Gauss–Seidel relax/n", gs_pts),
    ];
    print_table("Ablation: local subdomain solver", "ranks", &series);
    write_csv(&results_path("ablation_local_solve"), &series).unwrap();
}

/// Racy (Baudet, the paper's scheme) vs eager (Jager & Bradley): total
/// relaxations and time to tolerance across put latencies. Eager avoids
/// re-relaxing on stale data, which pays off when latency is high.
fn ablation_eager(opts: RunOptions) {
    let p = Problem::suite("ecology2", aj_core::matrices::suite::Scale::Tiny, opts.seed).unwrap();
    let partition = block_partition(p.n(), 32);
    let tol = 1e-2;
    let configs: Vec<(f64, DistVariant)> = [50.0, 300.0, 1000.0, 3000.0]
        .iter()
        .flat_map(|&lat| [(lat, DistVariant::Racy), (lat, DistVariant::Eager)])
        .collect();
    let results = par_map(&configs, |&(lat, variant)| {
        let mut cfg = DistConfig::new(p.n(), opts.seed);
        cfg.tol = tol;
        cfg.cost.put_latency = lat;
        cfg.variant = variant;
        let out = run_dist_async(&p.a, &p.b, &p.x0, &partition, &cfg);
        (
            out.relaxations_to_tolerance(tol),
            out.time_to_tolerance(tol),
        )
    });
    let mut racy_relax = Vec::new();
    let mut eager_relax = Vec::new();
    let mut racy_time = Vec::new();
    let mut eager_time = Vec::new();
    for (&(lat, variant), (r, t)) in configs.iter().zip(results) {
        let (relax_pts, time_pts) = match variant {
            DistVariant::Racy => (&mut racy_relax, &mut racy_time),
            DistVariant::Eager => (&mut eager_relax, &mut eager_time),
        };
        if let Some(r) = r {
            relax_pts.push((lat, r));
        }
        if let Some(t) = t {
            time_pts.push((lat, t));
        }
    }
    let series = vec![
        Series::new("racy relaxations/n", racy_relax),
        Series::new("eager relaxations/n", eager_relax),
        Series::new("racy time", racy_time),
        Series::new("eager time", eager_time),
    ];
    print_table(
        "Ablation: racy vs eager update scheme",
        "put latency",
        &series,
    );
    write_csv(&results_path("ablation_eager"), &series).unwrap();
}

/// Noise magnitude vs the async advantage in relaxations-to-tolerance.
fn ablation_jitter(opts: RunOptions) {
    let p = Problem::suite("ecology2", aj_core::matrices::suite::Scale::Tiny, opts.seed).unwrap();
    let partition = block_partition(p.n(), 32);
    let tol = 1e-2;
    let sigmas = [0.0, 0.02, 0.05, 0.1, 0.2];
    let results = par_map(&sigmas, |&sigma| {
        let mut cfg = DistConfig::new(p.n(), opts.seed);
        cfg.tol = tol;
        cfg.cost.jitter = Jitter {
            static_sigma: sigma / 2.0,
            dynamic_sigma: sigma,
            seed: opts.seed,
        };
        let asy = run_dist_async(&p.a, &p.b, &p.x0, &partition, &cfg);
        asy.relaxations_to_tolerance(tol)
    });
    let pts: Vec<(f64, f64)> = sigmas
        .iter()
        .zip(results)
        .filter_map(|(&sigma, r)| r.map(|r| (sigma, r)))
        .collect();
    let series = vec![Series::new("async relaxations/n to 1e-2", pts)];
    print_table("Ablation: jitter magnitude", "dynamic σ", &series);
    write_csv(&results_path("ablation_jitter"), &series).unwrap();
}

/// Put-latency sweep: async per-relaxation efficiency degrades into the
/// stale-ghost regime as latency grows.
fn ablation_latency(opts: RunOptions) {
    let p = Problem::suite("ecology2", aj_core::matrices::suite::Scale::Tiny, opts.seed).unwrap();
    let partition = block_partition(p.n(), 32);
    let tol = 1e-2;
    let latencies = [0.0, 50.0, 100.0, 300.0, 1000.0, 3000.0];
    let results = par_map(&latencies, |&lat| {
        let mut cfg = DistConfig::new(p.n(), opts.seed);
        cfg.tol = tol;
        cfg.cost.put_latency = lat;
        let asy = run_dist_async(&p.a, &p.b, &p.x0, &partition, &cfg);
        let syn = run_dist_sync(&p.a, &p.b, &p.x0, &partition, &cfg);
        (
            asy.relaxations_to_tolerance(tol),
            syn.relaxations_to_tolerance(tol),
        )
    });
    let mut async_pts = Vec::new();
    let mut sync_pts = Vec::new();
    for (&lat, (ra, rs)) in latencies.iter().zip(results) {
        if let Some(r) = ra {
            async_pts.push((lat, r));
        }
        if let Some(r) = rs {
            sync_pts.push((lat, r));
        }
    }
    let series = vec![
        Series::new("async relaxations/n", async_pts),
        Series::new("sync relaxations/n", sync_pts),
    ];
    print_table(
        "Ablation: put latency (stale-ghost crossover)",
        "latency (ticks)",
        &series,
    );
    write_csv(&results_path("ablation_latency"), &series).unwrap();
}

/// §IV-D quantified: convergence of the random-mask model vs mask density.
fn ablation_mask_density(opts: RunOptions) {
    let p = Problem::paper_fd("fd272", opts.seed).unwrap();
    let densities = [0.2, 0.4, 0.6, 0.8, 1.0];
    let results = par_map(&densities, |&density| {
        let schedule = DelaySchedule::Random {
            density,
            seed: opts.seed,
        };
        let run = run_async_model(&p.a, &p.b, &p.x0, &schedule, 1e-4, 200_000, Norm::L1).unwrap();
        run.time_to_tolerance(1e-4)
            .map(|t| (t as f64, run.relaxations as f64 / p.n() as f64))
    });
    let mut per_step = Vec::new();
    let mut per_relax = Vec::new();
    for (&density, r) in densities.iter().zip(results) {
        if let Some((t, relax)) = r {
            per_step.push((density, t));
            per_relax.push((density, relax));
        }
    }
    let series = vec![
        Series::new("model steps to 1e-4", per_step),
        Series::new("relaxations/n to 1e-4", per_relax),
    ];
    print_table("Ablation: mask density (model §IV-D)", "density", &series);
    write_csv(&results_path("ablation_mask_density"), &series).unwrap();
}

/// Partition quality: BFS graph growing vs plain contiguous blocks.
fn ablation_partition(opts: RunOptions) {
    let p = Problem::suite("ecology2", aj_core::matrices::suite::Scale::Tiny, opts.seed).unwrap();
    let tol = 1e-2;
    let rank_counts = [8usize, 32, 128];
    let results = par_map(&rank_counts, |&ranks| {
        let pb = block_partition(p.n(), ranks);
        let pg = bfs_partition(&p.a, ranks);
        let mut cfg = DistConfig::new(p.n(), opts.seed);
        cfg.tol = tol;
        let ob = run_dist_async(&p.a, &p.b, &p.x0, &pb, &cfg);
        let og = run_dist_async(&p.a, &p.b, &p.x0, &pg, &cfg);
        (
            pb.edge_cut(&p.a) as f64,
            pg.edge_cut(&p.a) as f64,
            ob.relaxations_to_tolerance(tol),
            og.relaxations_to_tolerance(tol),
        )
    });
    let mut cut_block = Vec::new();
    let mut cut_bfs = Vec::new();
    let mut relax_block = Vec::new();
    let mut relax_bfs = Vec::new();
    for (&ranks, (cb, cg, rb, rg)) in rank_counts.iter().zip(results) {
        cut_block.push((ranks as f64, cb));
        cut_bfs.push((ranks as f64, cg));
        if let Some(r) = rb {
            relax_block.push((ranks as f64, r));
        }
        if let Some(r) = rg {
            relax_bfs.push((ranks as f64, r));
        }
    }
    let series = vec![
        Series::new("edge cut (block)", cut_block),
        Series::new("edge cut (BFS)", cut_bfs),
        Series::new("async relax/n (block)", relax_block),
        Series::new("async relax/n (BFS)", relax_bfs),
    ];
    print_table("Ablation: partitioner", "ranks", &series);
    write_csv(&results_path("ablation_partition"), &series).unwrap();
}
