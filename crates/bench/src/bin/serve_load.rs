//! Load-generation harness for `aj serve`, writing `BENCH_serve.json`.
//!
//! Drives a mixed workload (two matrices × three backends, two seeds each,
//! so the plan cache sees repeats; `--workload dist256` swaps in the dmsim
//! baseline's 256-rank `suite:thermomech_dm:tiny` problem; `--method M`
//! stamps a relaxation-method selector onto every request, which also
//! exercises the server's per-problem method-resolution memoization;
//! `--outer O` stamps an outer-solver selector — `vcycle`, `fcg`, or
//! `fgmres` — onto every request, swapping the mixed workload onto odd
//! grids so multigrid coarsening applies, which exercises the server's
//! per-problem hierarchy memoization)
//! through the NDJSON-over-TCP protocol in two classic modes:
//!
//! * **closed loop** — `--conns` connections, each submit → wait → repeat;
//!   measures service capacity with bounded concurrency;
//! * **open loop** — one connection firing requests at seeded-Poisson
//!   arrivals of `--rate` jobs/s *without* waiting, the arrival process a
//!   saturating client can't apply; queueing (and shedding, once the
//!   admission queue fills) shows up in the latency tail.
//!
//! `--workload streaming` replaces both modes with the streaming-session
//! driver: long-lived sessions solve the same cached problem with a
//! drifting right-hand side, warm-starting each solve from the previous
//! fixed point. Latencies are split cold (first solve of a session) vs
//! warm (every later solve, confirmed by the wire's `warm_started` flag),
//! and `--guard` requires the warm-start speedup — cold p50 over warm p50
//! — to be at least 1.3x, plus exactly one plan build across the stream.
//!
//! Latencies are recorded client-side into `aj-obs` histograms; p50/p99 are
//! bucket-midpoint quantiles from them. The server's own snapshot is
//! fetched at the end for the cache hit ratio and the server-side
//! queue/solve split.
//!
//! **Accounting is always enforced**: every submitted request must come
//! back as exactly one done/shed/failed response — lost jobs exit 1 (see
//! the exit-code table in `aj --help`; all-shed exits 4). `--guard`
//! additionally requires completed > 0 and a warm cache (hit ratio > 0),
//! which is what CI runs.
//!
//! ```text
//! serve_load --quick --addr 127.0.0.1:4100 --shutdown   # against aj serve
//! serve_load --quick --embed                            # self-contained
//! serve_load --quick --chaos kill-restart --guard       # durability proof
//! ```
//!
//! **Chaos mode** (`--chaos kill-restart`) is the durability acceptance
//! harness: it spawns `aj serve --store <dir>` as a real OS process,
//! drives keyed (idempotent) jobs at it, `SIGKILL`s the server with a
//! batch in flight, restarts it against the same store on a fresh port,
//! resubmits every key, and asserts the no-lost-jobs identity — every
//! key reaches exactly one consistent terminal outcome, with replays
//! deduplicated server-side. The recovery accounting lands in a CSV
//! (`--chaos-csv`) that CI uploads as an artifact.

use aj_core::obs::{Histogram, Snapshot};
use aj_serve::proto::{self, Request, Response};
use aj_serve::{JobSpec, Server, ServiceConfig, SolveService};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

const EXIT_RUNTIME: i32 = 1;
const EXIT_SHED: i32 = 4;

#[derive(Debug, Clone)]
struct Cli {
    quick: bool,
    guard: bool,
    embed: bool,
    shutdown: bool,
    addr: String,
    jobs: usize,
    conns: usize,
    rate: f64,
    seed: u64,
    out: String,
    workload: Workload,
    method: String,
    outer: String,
    chaos: Option<String>,
    server_bin: Option<String>,
    store: Option<String>,
    chaos_csv: String,
}

/// Which request mix to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    /// 2 matrices × 3 backends × 2 seeds (the acceptance workload).
    Mixed,
    /// The 256-rank distributed problem (`suite:thermomech_dm:tiny`,
    /// `dist-async`/`dist-sync` ×256), 2 seeds — the dmsim baseline
    /// workload pushed through the service.
    Dist256,
    /// Long-lived streaming sessions over one cached plan: each session
    /// solves a drifting-`b` sequence, warm-starting from the previous
    /// fixed point (protocol v3 `session`/`perturb_*` fields).
    Streaming,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        guard: false,
        embed: false,
        shutdown: false,
        addr: "127.0.0.1:4100".into(),
        jobs: 200,
        conns: 4,
        rate: 150.0,
        seed: 2018,
        out: "BENCH_serve.json".into(),
        workload: Workload::Mixed,
        method: "jacobi".into(),
        outer: String::new(),
        chaos: None,
        server_bin: None,
        store: None,
        chaos_csv: "serve_chaos.csv".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("option {name} needs a value"))
        };
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--guard" => cli.guard = true,
            "--embed" => cli.embed = true,
            "--shutdown" => cli.shutdown = true,
            "--addr" => cli.addr = value("--addr")?,
            "--jobs" => {
                cli.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs".to_string())?
            }
            "--conns" => {
                cli.conns = value("--conns")?
                    .parse()
                    .map_err(|_| "bad --conns".to_string())?
            }
            "--rate" => {
                cli.rate = value("--rate")?
                    .parse()
                    .map_err(|_| "bad --rate".to_string())?
            }
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?
            }
            "--out" => cli.out = value("--out")?,
            "--method" => cli.method = value("--method")?,
            "--outer" => cli.outer = value("--outer")?,
            "--chaos" => {
                let mode = value("--chaos")?;
                if mode != "kill-restart" {
                    return Err(format!("unknown chaos mode {mode} (kill-restart)"));
                }
                cli.chaos = Some(mode);
            }
            "--server-bin" => cli.server_bin = Some(value("--server-bin")?),
            "--store" => cli.store = Some(value("--store")?),
            "--chaos-csv" => cli.chaos_csv = value("--chaos-csv")?,
            "--workload" => {
                cli.workload = match value("--workload")?.as_str() {
                    "mixed" => Workload::Mixed,
                    "dist256" => Workload::Dist256,
                    "streaming" => Workload::Streaming,
                    other => {
                        return Err(format!(
                            "unknown workload {other} (mixed | dist256 | streaming)"
                        ))
                    }
                }
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if cli.quick {
        cli.jobs = cli.jobs.min(60);
        cli.conns = cli.conns.min(3);
    }
    if cli.chaos.is_some() && cli.workload == Workload::Streaming {
        // Sessions are in-memory only; a kill/restart chaos run would just
        // measure cold starts. Keep the two acceptance harnesses separate.
        return Err("--chaos does not combine with --workload streaming".into());
    }
    Ok(cli)
}

/// Request `k` of a run. The mixed workload interleaves two matrices ×
/// three backends × two seeds = 4 distinct plan-cache keys, every one of
/// them revisited many times per run; dist256 replays the dmsim baseline's
/// 256-rank problem through the service.
fn job_spec(workload: Workload, k: usize, method: &str, outer: &str) -> JobSpec {
    let spec = match workload {
        Workload::Mixed => {
            // The default matrices are too small (fd68) or even-sided
            // (grid:16x16) to coarsen, so an outer run swaps in odd grids
            // that every outer kind — including vcycle — accepts.
            let mix = if outer.is_empty() {
                [
                    ("fd68", "sync"),
                    ("grid:16x16", "dist-async"),
                    ("fd68", "sim-async"),
                    ("grid:16x16", "sync"),
                    ("fd68", "dist-async"),
                    ("grid:16x16", "sim-async"),
                ]
            } else {
                [
                    ("grid:15x15", "sync"),
                    ("grid:21x21", "dist-async"),
                    ("grid:15x15", "sim-async"),
                    ("grid:21x21", "sync"),
                    ("grid:15x15", "dist-async"),
                    ("grid:21x21", "sim-async"),
                ]
            };
            let (matrix, backend) = mix[k % mix.len()];
            JobSpec {
                matrix: matrix.into(),
                backend: backend.into(),
                seed: 1 + (k / mix.len()) as u64 % 2,
                threads: 2,
                ranks: 4,
                tol: 1e-5,
                ..Default::default()
            }
        }
        Workload::Dist256 => JobSpec {
            matrix: "suite:thermomech_dm:tiny".into(),
            backend: if k.is_multiple_of(2) {
                "dist-async"
            } else {
                "dist-sync"
            }
            .into(),
            seed: 1 + (k / 2) as u64 % 2,
            ranks: 256,
            tol: 1e-4,
            ..Default::default()
        },
        // Streaming never reaches the mixed request generator: `run`
        // branches into `run_streaming` first, and parse_cli rejects the
        // chaos combination.
        Workload::Streaming => unreachable!("streaming workload has its own driver"),
    };
    JobSpec {
        method: method.into(),
        outer: outer.into(),
        ..spec
    }
}

/// Per-mode result accounting.
#[derive(Debug, Default)]
struct Tally {
    sent: u64,
    done: u64,
    converged: u64,
    cache_hits: u64,
    failed: u64,
    shed: u64,
    wall: Duration,
    latency_us: Histogram,
}

impl Tally {
    fn absorb(&mut self, resp: &Response, latency: Duration) -> Result<(), String> {
        match resp {
            Response::Done { result, .. } => {
                self.done += 1;
                self.converged += result.converged as u64;
                self.cache_hits += result.cache_hit as u64;
                self.latency_us.record(latency.as_micros() as u64);
            }
            Response::Shed { .. } => self.shed += 1,
            Response::Failed { id, error } => {
                eprintln!("job {id} failed: {error}");
                self.failed += 1;
            }
            other => return Err(format!("unexpected response {other:?}")),
        }
        Ok(())
    }

    fn answered(&self) -> u64 {
        self.done + self.failed + self.shed
    }

    fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.done as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Bucket-midpoint quantile of an `aj-obs` histogram, in milliseconds.
fn quantile_ms(h: &Histogram, q: f64) -> f64 {
    h.quantile_bounds(q)
        .map(|(lo, hi)| (lo + hi) as f64 / 2.0 / 1000.0)
        .unwrap_or(0.0)
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn connect(addr: &str) -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        Ok(Conn {
            writer,
            reader: BufReader::new(stream),
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        let mut line = proto::render_request(req);
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("send: {e}"))
    }

    fn recv(&mut self) -> Result<Response, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => proto::parse_response(line.trim()),
            Err(e) => Err(format!("recv: {e}")),
        }
    }
}

/// Closed loop: `conns` client threads, one request in flight each.
fn closed_loop(
    addr: &str,
    workload: Workload,
    jobs: usize,
    conns: usize,
    method: &str,
    outer: &str,
) -> Result<Tally, String> {
    let started = Instant::now();
    let tallies: Vec<Result<Tally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || -> Result<Tally, String> {
                    let mut conn = Conn::connect(addr)?;
                    let mut t = Tally::default();
                    // Interleave the mix across connections.
                    for k in (c..jobs).step_by(conns) {
                        let sent = Instant::now();
                        conn.send(&Request::Solve {
                            id: k as u64,
                            spec: job_spec(workload, k, method, outer),
                        })?;
                        t.sent += 1;
                        t.absorb(&conn.recv()?, sent.elapsed())?;
                    }
                    Ok(t)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut total = Tally::default();
    for t in tallies {
        let t = t?;
        total.sent += t.sent;
        total.done += t.done;
        total.converged += t.converged;
        total.cache_hits += t.cache_hits;
        total.failed += t.failed;
        total.shed += t.shed;
        total.latency_us.merge(&t.latency_us);
    }
    total.wall = started.elapsed();
    Ok(total)
}

/// Open loop: one connection, seeded-Poisson arrivals at `rate` jobs/s,
/// responses collected concurrently and matched back by id.
fn open_loop(
    addr: &str,
    workload: Workload,
    jobs: usize,
    rate: f64,
    seed: u64,
    method: &str,
    outer: &str,
) -> Result<Tally, String> {
    let conn = Conn::connect(addr)?;
    let mut writer = conn.writer;
    let mut reader = conn.reader;
    let (resp_tx, resp_rx) = mpsc::channel::<Result<(Response, Instant), String>>();
    let reader_thread = std::thread::spawn(move || {
        // One message per expected response; the main thread counts.
        loop {
            let mut line = String::new();
            let msg = match reader.read_line(&mut line) {
                Ok(0) => Err("server closed the connection".to_string()),
                Ok(_) => proto::parse_response(line.trim()).map(|r| (r, Instant::now())),
                Err(e) => Err(format!("recv: {e}")),
            };
            let failed = msg.is_err();
            if resp_tx.send(msg).is_err() || failed {
                return;
            }
        }
    });

    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tally::default();
    let started = Instant::now();
    let mut next_arrival = started;
    for k in 0..jobs {
        // Exponential inter-arrival times make the arrival process Poisson.
        let u: f64 = rng.random_range(0.0..1.0);
        next_arrival += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
        if let Some(wait) = next_arrival.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        sent_at.insert(k as u64, Instant::now());
        let mut line = proto::render_request(&Request::Solve {
            id: k as u64,
            spec: job_spec(workload, k, method, outer),
        });
        line.push('\n');
        writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        t.sent += 1;
    }

    // Drain: every request must be answered. A generous timeout only
    // bounds a wedged server — normally the queue empties in seconds.
    let deadline = Instant::now() + Duration::from_secs(120);
    while t.answered() < t.sent {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or("timed out waiting for responses (jobs lost?)")?;
        let (resp, at) = resp_rx
            .recv_timeout(remaining)
            .map_err(|_| "response stream ended early (jobs lost?)".to_string())??;
        let resp_id = match &resp {
            Response::Done { id, .. } | Response::Shed { id, .. } | Response::Failed { id, .. } => {
                *id
            }
            other => return Err(format!("unexpected response {other:?}")),
        };
        let sent = sent_at
            .remove(&resp_id)
            .ok_or_else(|| format!("response for unknown id {resp_id}"))?;
        t.absorb(&resp, at - sent)?;
    }
    t.wall = started.elapsed();
    drop(resp_rx);
    // Reader exits on the dropped receiver at the next response, or on the
    // connection closing; detach rather than block on an idle socket.
    drop(writer);
    drop(reader_thread);
    Ok(t)
}

fn fetch_stats(addr: &str) -> Result<Snapshot, String> {
    let mut conn = Conn::connect(addr)?;
    conn.send(&Request::Stats)?;
    match conn.recv()? {
        Response::Stats { snapshot } => Ok(snapshot),
        other => Err(format!("expected stats, got {other:?}")),
    }
}

fn mode_json(name: &str, t: &Tally, extra: &str) -> String {
    format!(
        "  \"{name}\": {{\n    {extra}\"jobs\": {},\n    \"completed\": {},\n    \"converged\": {},\n    \"cache_hits\": {},\n    \"failed\": {},\n    \"shed\": {},\n    \"wall_seconds\": {:.4},\n    \"throughput_jobs_per_s\": {:.2},\n    \"p50_ms\": {:.3},\n    \"p99_ms\": {:.3}\n  }}",
        t.sent,
        t.done,
        t.converged,
        t.cache_hits,
        t.failed,
        t.shed,
        t.wall.as_secs_f64(),
        t.throughput(),
        quantile_ms(&t.latency_us, 0.5),
        quantile_ms(&t.latency_us, 0.99),
    )
}

// ---------------------------------------------------------------------------
// Streaming workload: warm-start sessions over one cached plan
// ---------------------------------------------------------------------------

/// One solve of a streaming session. Every request in the run shares one
/// plan-cache key (same matrix/backend/method/seed), so the whole stream
/// rebuilds the plan exactly once; each solve drifts `b` by 0.1%
/// deterministically in the perturb seed, small enough that the previous
/// fixed point lands several residual decades closer than the cold `x0`.
/// The grid is big enough (1024 unknowns) that solve time dominates the
/// round trip — on a tiny matrix the saved iterations vanish into
/// constant wire/queue overhead and the measured speedup is noise.
fn streaming_spec(session: &str, perturb_seed: u64, method: &str) -> JobSpec {
    JobSpec {
        matrix: "grid:32x32".into(),
        backend: "sync".into(),
        tol: 1e-8,
        method: method.into(),
        session: Some(session.into()),
        perturb_seed,
        perturb_scale: 1e-3,
        ..Default::default()
    }
}

/// Streaming accounting: the usual outcome tally, plus cold/warm latency
/// split by the server-confirmed `warm_started` flag and a check that
/// session ordinals arrive in exactly the order the client drove them.
#[derive(Debug)]
struct StreamTally {
    sent: u64,
    done: u64,
    converged: u64,
    failed: u64,
    shed: u64,
    warm: u64,
    /// Responses whose `session_solve`/`warm_started` disagreed with the
    /// client-side solve order — any nonzero count fails accounting.
    ordinal_errors: u64,
    cold_latency_us: Histogram,
    warm_latency_us: Histogram,
    /// Smallest initial residual any cold start saw, and the largest any
    /// warm start saw: warm max below cold min is the warm-start claim.
    cold_initial_residual_min: f64,
    warm_initial_residual_max: f64,
    wall: Duration,
}

impl StreamTally {
    fn new() -> StreamTally {
        StreamTally {
            sent: 0,
            done: 0,
            converged: 0,
            failed: 0,
            shed: 0,
            warm: 0,
            ordinal_errors: 0,
            cold_latency_us: Histogram::default(),
            warm_latency_us: Histogram::default(),
            cold_initial_residual_min: f64::INFINITY,
            warm_initial_residual_max: 0.0,
            wall: Duration::ZERO,
        }
    }

    fn absorb(&mut self, resp: &Response, latency: Duration, expect: u64) -> Result<(), String> {
        match resp {
            Response::Done { id, result } => {
                self.done += 1;
                self.converged += result.converged as u64;
                if result.session_solve != Some(expect) || result.warm_started != (expect > 1) {
                    eprintln!(
                        "job {id}: expected session solve {expect} (warm {}), server says \
                         {:?} (warm {})",
                        expect > 1,
                        result.session_solve,
                        result.warm_started
                    );
                    self.ordinal_errors += 1;
                }
                if result.warm_started {
                    self.warm += 1;
                    self.warm_latency_us.record(latency.as_micros() as u64);
                    self.warm_initial_residual_max =
                        self.warm_initial_residual_max.max(result.initial_residual);
                } else {
                    self.cold_latency_us.record(latency.as_micros() as u64);
                    self.cold_initial_residual_min =
                        self.cold_initial_residual_min.min(result.initial_residual);
                }
            }
            Response::Shed { .. } => self.shed += 1,
            Response::Failed { id, error } => {
                eprintln!("job {id} failed: {error}");
                self.failed += 1;
            }
            other => return Err(format!("unexpected response {other:?}")),
        }
        Ok(())
    }

    fn answered(&self) -> u64 {
        self.done + self.failed + self.shed
    }

    fn merge(&mut self, t: StreamTally) {
        self.sent += t.sent;
        self.done += t.done;
        self.converged += t.converged;
        self.failed += t.failed;
        self.shed += t.shed;
        self.warm += t.warm;
        self.ordinal_errors += t.ordinal_errors;
        self.cold_latency_us.merge(&t.cold_latency_us);
        self.warm_latency_us.merge(&t.warm_latency_us);
        self.cold_initial_residual_min = self
            .cold_initial_residual_min
            .min(t.cold_initial_residual_min);
        self.warm_initial_residual_max = self
            .warm_initial_residual_max
            .max(t.warm_initial_residual_max);
    }
}

/// Drives `sessions` streaming sessions of `solves_per_session` perturbed
/// solves each across `conns` connections. A session lives entirely on one
/// connection and its solves run strictly in order — warm starts only make
/// sense sequentially — while distinct sessions interleave freely.
fn streaming_loop(
    addr: &str,
    sessions: usize,
    solves_per_session: usize,
    conns: usize,
    method: &str,
    seed: u64,
) -> Result<StreamTally, String> {
    // Session names carry the pid so repeat runs against a long-lived
    // server start fresh sessions instead of resuming an old ordinal.
    let pid = std::process::id();
    let started = Instant::now();
    let tallies: Vec<Result<StreamTally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || -> Result<StreamTally, String> {
                    let mut conn = Conn::connect(addr)?;
                    let mut t = StreamTally::new();
                    for s in (c..sessions).step_by(conns) {
                        let name = format!("bench-{pid}-{seed}-{s}");
                        for k in 0..solves_per_session {
                            let id = (s * solves_per_session + k) as u64;
                            let sent = Instant::now();
                            conn.send(&Request::Solve {
                                id,
                                spec: streaming_spec(&name, seed.wrapping_add(id), method),
                            })?;
                            t.sent += 1;
                            t.absorb(&conn.recv()?, sent.elapsed(), (k + 1) as u64)?;
                        }
                    }
                    Ok(t)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut total = StreamTally::new();
    for t in tallies {
        total.merge(t?);
    }
    total.wall = started.elapsed();
    Ok(total)
}

/// The streaming acceptance run: drive the sessions, then check the
/// accounting identity, the single-plan-build claim, and (under `--guard`)
/// the warm-start speedup the workload is sold on.
fn run_streaming(cli: &Cli) -> Result<i32, String> {
    let embedded = if cli.embed {
        let service = SolveService::start(ServiceConfig {
            workers: 4,
            queue_cap: 32,
            cache_cap: 8,
            ..Default::default()
        });
        Some(Arc::new(Server::bind("127.0.0.1:0", service)?))
    } else {
        None
    };
    let addr = match &embedded {
        Some(server) => server.addr().to_string(),
        None => cli.addr.clone(),
    };
    let server_thread = embedded.as_ref().map(|server| {
        let server = Arc::clone(server);
        std::thread::spawn(move || server.run())
    });

    let conns = cli.conns.max(1);
    let sessions = (conns * 2).min(cli.jobs.max(1));
    let solves_per_session = (cli.jobs / sessions).max(2);
    eprintln!(
        "serve_load streaming: {sessions} sessions x {solves_per_session} solves against \
         {addr} ({conns} conns)"
    );
    let t = streaming_loop(
        &addr,
        sessions,
        solves_per_session,
        conns,
        &cli.method,
        cli.seed,
    )?;
    let stats = fetch_stats(&addr)?;

    if cli.shutdown || cli.embed {
        let mut conn = Conn::connect(&addr)?;
        conn.send(&Request::Shutdown { drain: true })?;
        match conn.recv()? {
            Response::ShuttingDown => {}
            other => return Err(format!("expected shutdown ack, got {other:?}")),
        }
    }
    if let Some(h) = server_thread {
        h.join().map_err(|_| "server thread panicked")??;
    }

    let mut ok = true;
    if t.answered() != t.sent {
        eprintln!(
            "ACCOUNTING FAILED (streaming): {} submitted but only {} answered",
            t.sent,
            t.answered()
        );
        ok = false;
    }
    if t.ordinal_errors > 0 {
        eprintln!(
            "ACCOUNTING FAILED (streaming): {} responses broke session solve order",
            t.ordinal_errors
        );
        ok = false;
    }

    let counter = |k: &str| stats.counters.get(k).copied().unwrap_or(0);
    let plan_builds = counter("plan_cache_misses");
    let cold_p50 = quantile_ms(&t.cold_latency_us, 0.5);
    let warm_p50 = quantile_ms(&t.warm_latency_us, 0.5);
    let warm_speedup = if warm_p50 > 0.0 {
        cold_p50 / warm_p50
    } else {
        0.0
    };
    let mut json = String::new();
    json.push_str(&format!(
        "{{\n  \"description\": \"serve_load streaming workload: {sessions} sessions x \
         {solves_per_session} solves of grid:32x32/sync at tol 1e-8 over {conns} conns, b drifting \
         0.1% per solve; warm starts resume from the previous fixed point over one cached \
         plan; latencies are client-side aj-obs histogram midpoints\",\n  \"quick\": {},\n",
        cli.quick
    ));
    json.push_str("  \"streaming\": {\n");
    json.push_str(&format!("    \"sessions\": {sessions},\n"));
    json.push_str(&format!(
        "    \"solves_per_session\": {solves_per_session},\n"
    ));
    json.push_str(&format!("    \"jobs\": {},\n", t.sent));
    json.push_str(&format!("    \"completed\": {},\n", t.done));
    json.push_str(&format!("    \"converged\": {},\n", t.converged));
    json.push_str(&format!("    \"failed\": {},\n", t.failed));
    json.push_str(&format!("    \"shed\": {},\n", t.shed));
    json.push_str(&format!("    \"warm_solves\": {},\n", t.warm));
    json.push_str(&format!("    \"cold_solves\": {},\n", t.done - t.warm));
    json.push_str(&format!(
        "    \"wall_seconds\": {:.4},\n",
        t.wall.as_secs_f64()
    ));
    json.push_str(&format!("    \"cold_p50_ms\": {cold_p50:.3},\n"));
    json.push_str(&format!(
        "    \"cold_p99_ms\": {:.3},\n",
        quantile_ms(&t.cold_latency_us, 0.99)
    ));
    json.push_str(&format!("    \"warm_p50_ms\": {warm_p50:.3},\n"));
    json.push_str(&format!(
        "    \"warm_p99_ms\": {:.3},\n",
        quantile_ms(&t.warm_latency_us, 0.99)
    ));
    json.push_str(&format!("    \"warm_speedup\": {warm_speedup:.3},\n"));
    json.push_str(&format!(
        "    \"cold_initial_residual_min\": {:.3e},\n",
        if t.cold_initial_residual_min.is_finite() {
            t.cold_initial_residual_min
        } else {
            0.0
        }
    ));
    json.push_str(&format!(
        "    \"warm_initial_residual_max\": {:.3e}\n",
        t.warm_initial_residual_max
    ));
    json.push_str("  },\n  \"server\": {\n");
    json.push_str(&format!("    \"plan_builds\": {plan_builds},\n"));
    json.push_str(&format!(
        "    \"cache_hit_ratio\": {:.4},\n",
        stats
            .gauges
            .get("plan_cache_hit_ratio")
            .copied()
            .unwrap_or(0.0)
    ));
    json.push_str(&format!(
        "    \"solve_p50_us\": {:.0}\n",
        stats
            .histograms
            .get("serve/solve_us")
            .map_or(0.0, |h| quantile_ms(h, 0.5) * 1000.0)
    ));
    json.push_str("  }\n}\n");
    std::fs::write(&cli.out, &json).map_err(|e| format!("write {}: {e}", cli.out))?;
    print!("{json}");
    eprintln!("wrote {}", cli.out);

    if !ok {
        return Ok(EXIT_RUNTIME);
    }
    if t.done == 0 {
        return Ok(if t.shed > 0 { EXIT_SHED } else { EXIT_RUNTIME });
    }
    if cli.guard {
        if t.failed > 0 || t.converged != t.done {
            eprintln!(
                "guard FAILED: {} failed, {} of {} converged",
                t.failed, t.converged, t.done
            );
            return Ok(EXIT_RUNTIME);
        }
        // Every request shares one plan-cache key, so builds are bounded
        // by the startup race: the cache deliberately lets concurrent
        // first-misses both build (the loser adopts the winner's entry),
        // which caps builds at one per connection. Anything above that
        // means the stream rebuilt a warm plan.
        if plan_builds > conns as u64 {
            eprintln!(
                "guard FAILED: {plan_builds} plan builds on a single-plan stream \
                 ({conns} conns)"
            );
            return Ok(EXIT_RUNTIME);
        }
        if warm_speedup < 1.3 {
            eprintln!(
                "guard FAILED: warm-start speedup {warm_speedup:.3} < 1.3 \
                 (cold p50 {cold_p50:.3} ms, warm p50 {warm_p50:.3} ms)"
            );
            return Ok(EXIT_RUNTIME);
        }
    }
    Ok(0)
}

// ---------------------------------------------------------------------------
// Chaos mode: kill-restart durability harness
// ---------------------------------------------------------------------------

/// The terminal outcome a key reached, as the client saw it. Used to check
/// that replays agree with originals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChaosKind {
    Done { converged: bool },
    Shed,
    Failed,
}

#[derive(Debug, Default)]
struct ChaosLedger {
    /// key index → outcome (first answer wins; later answers must agree).
    outcomes: HashMap<usize, ChaosKind>,
    /// Responses that arrived with `replayed: true` (served from the log
    /// or the idempotency index, not a fresh solve).
    replays_confirmed: u64,
    /// Duplicate answers whose outcome disagreed with the original.
    conflicts: u64,
}

impl ChaosLedger {
    fn record(&mut self, key: usize, resp: &Response) -> Result<(), String> {
        let kind = match resp {
            Response::Done { result, .. } => {
                if result.replayed {
                    self.replays_confirmed += 1;
                }
                ChaosKind::Done {
                    converged: result.converged,
                }
            }
            Response::Shed { .. } => ChaosKind::Shed,
            Response::Failed { id, error } => {
                eprintln!("chaos: job {id} failed: {error}");
                ChaosKind::Failed
            }
            other => return Err(format!("unexpected response {other:?}")),
        };
        match self.outcomes.get(&key) {
            None => {
                self.outcomes.insert(key, kind);
            }
            Some(prev) if *prev == kind => {}
            Some(prev) => {
                eprintln!("chaos: key {key} answered {prev:?} then {kind:?}");
                self.conflicts += 1;
            }
        }
        Ok(())
    }
}

/// Finds the `aj` binary next to this one (both live in the same cargo
/// target directory) unless `--server-bin` named it.
fn server_bin(cli: &Cli) -> Result<PathBuf, String> {
    if let Some(bin) = &cli.server_bin {
        return Ok(PathBuf::from(bin));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let cand = exe
        .parent()
        .ok_or("current_exe has no parent dir")?
        .join("aj");
    if cand.exists() {
        Ok(cand)
    } else {
        Err(format!(
            "cannot find the aj binary at {} — pass --server-bin",
            cand.display()
        ))
    }
}

/// Spawns `aj serve --store <dir>` on an ephemeral port and returns the
/// child plus the address it reported. A fresh port per (re)start avoids
/// colliding with the kernel-side teardown of a SIGKILLed predecessor's
/// listener.
fn spawn_server(bin: &Path, store: &Path) -> Result<(Child, String), String> {
    let mut child = Command::new(bin)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue-cap",
            "256",
        ])
        .arg("--store")
        .arg(store)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut addr = None;
    for _ in 0..32 {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if let Some(rest) = line.split("listening on ").nth(1) {
                    addr = rest.split_whitespace().next().map(str::to_string);
                    break;
                }
            }
            Err(e) => return Err(format!("read server stdout: {e}")),
        }
    }
    let Some(addr) = addr else {
        let _ = child.kill();
        let _ = child.wait();
        return Err("server never reported its listen address".into());
    };
    // Keep draining stdout so the server can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Ok((child, addr))
}

/// One keyed chaos job. Same request mix as the load modes, plus the
/// idempotency key that makes crash-time resubmission safe.
fn chaos_spec(workload: Workload, k: usize, method: &str, outer: &str) -> JobSpec {
    JobSpec {
        idempotency_key: Some(format!("chaos-{k}")),
        ..job_spec(workload, k, method, outer)
    }
}

/// A deliberately slow keyed job for the killed batch: tight tolerance on a
/// larger grid keeps it running (or queued) for the hundreds of
/// milliseconds between "durably logged" and the SIGKILL, so the restart
/// actually exercises in-flight recovery instead of replaying a log whose
/// every job already finished.
fn chaos_spec_slow(k: usize) -> JobSpec {
    JobSpec {
        matrix: "grid:64x64".into(),
        backend: "sync".into(),
        tol: 1e-12,
        max_iterations: 200_000,
        idempotency_key: Some(format!("chaos-{k}")),
        ..Default::default()
    }
}

/// The kill/restart acceptance run. Phases:
///
/// 1. closed-loop the first half of the jobs (all answered and logged);
/// 2. fire a batch of slow jobs without waiting, poll the server's
///    `jobs_accepted` counter until every one has crossed the durability
///    barrier, read **one** response, then `SIGKILL` the server — the rest
///    of the batch is durably logged but queued or running, and the client
///    does not know which;
/// 3. restart against the same store (recovery re-enqueues in-flight
///    jobs), resubmit *every* key from phases 1–2, and submit the
///    remaining fresh jobs;
/// 4. assert the identity: every key has exactly one consistent outcome,
///    phase-1 resubmits all came back `replayed`, and the server's own
///    `submitted = completed + failed + shed` holds.
fn chaos_kill_restart(cli: &Cli) -> Result<i32, String> {
    let bin = server_bin(cli)?;
    let store = match &cli.store {
        Some(dir) => PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("aj-serve-chaos-{}", std::process::id())),
    };
    let _ = std::fs::remove_dir_all(&store);
    let jobs = cli.jobs.max(12);
    let phase1 = jobs / 2;
    let batch = (jobs / 4).max(4);
    let fresh = jobs - phase1 - batch;
    let recv_timeout = Duration::from_secs(120);
    let mut ledger = ChaosLedger::default();

    eprintln!(
        "chaos kill-restart: {jobs} keyed jobs (closed {phase1} + killed batch {batch} + \
         post-restart {fresh}), store {}",
        store.display()
    );

    // Phase 1+2 against the first server incarnation.
    let (mut child, addr) = spawn_server(&bin, &store)?;
    let mut run_phase12 = || -> Result<u64, String> {
        let mut conn = Conn::connect(&addr)?;
        conn.reader
            .get_ref()
            .set_read_timeout(Some(recv_timeout))
            .map_err(|e| format!("set timeout: {e}"))?;
        for k in 0..phase1 {
            conn.send(&Request::Solve {
                id: k as u64,
                spec: chaos_spec(cli.workload, k, &cli.method, &cli.outer),
            })?;
            ledger.record(k, &conn.recv()?)?;
        }
        // Fire the slow batch without waiting. Responses are correlated by
        // id = key.
        for k in phase1..phase1 + batch {
            conn.send(&Request::Solve {
                id: k as u64,
                spec: chaos_spec_slow(k),
            })?;
        }
        // Wait for every batch job to cross the durability barrier —
        // `jobs_accepted` only moves after the fsynced `submitted` append —
        // so the kill provably lands with logged-but-unfinished jobs.
        let target = (phase1 + batch) as u64;
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let accepted = fetch_stats(&addr)?
                .counters
                .get("jobs_accepted")
                .copied()
                .unwrap_or(0);
            if accepted >= target {
                break;
            }
            if std::time::Instant::now() > deadline {
                return Err(format!(
                    "chaos: server accepted only {accepted} of {target} jobs within 30s"
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Collect exactly one response, then die.
        let resp = conn.recv()?;
        let id = match &resp {
            Response::Done { id, .. } | Response::Shed { id, .. } | Response::Failed { id, .. } => {
                *id as usize
            }
            other => return Err(format!("unexpected response {other:?}")),
        };
        ledger.record(id, &resp)?;
        Ok(1)
    };
    let batch_answered_pre_kill = run_phase12()?;
    child.kill().map_err(|e| format!("SIGKILL server: {e}"))?;
    let _ = child.wait();
    eprintln!(
        "chaos: SIGKILLed server with {} of {batch} batch jobs unanswered",
        batch as u64 - batch_answered_pre_kill
    );

    // Phase 3: restart on the same store; recovery happens before the
    // listen line is printed, so connecting means replay already ran.
    let (mut child2, addr2) = spawn_server(&bin, &store)?;
    let mut conn = Conn::connect(&addr2)?;
    conn.reader
        .get_ref()
        .set_read_timeout(Some(recv_timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut resubmitted = 0u64;
    let phase1_replays_before = ledger.replays_confirmed;
    for k in 0..phase1 + batch {
        let spec = if k >= phase1 {
            chaos_spec_slow(k)
        } else {
            chaos_spec(cli.workload, k, &cli.method, &cli.outer)
        };
        conn.send(&Request::Solve {
            id: 10_000 + k as u64,
            spec,
        })?;
        resubmitted += 1;
        ledger.record(k, &conn.recv()?)?;
    }
    let phase1_replays = ledger.replays_confirmed - phase1_replays_before;
    for k in phase1 + batch..jobs {
        conn.send(&Request::Solve {
            id: 10_000 + k as u64,
            spec: chaos_spec(cli.workload, k, &cli.method, &cli.outer),
        })?;
        ledger.record(k, &conn.recv()?)?;
    }
    let stats = fetch_stats(&addr2)?;
    {
        let mut conn = Conn::connect(&addr2)?;
        conn.send(&Request::Shutdown { drain: true })?;
        match conn.recv()? {
            Response::ShuttingDown => {}
            other => return Err(format!("expected shutdown ack, got {other:?}")),
        }
    }
    let status = child2.wait().map_err(|e| format!("wait server: {e}"))?;

    // Phase 4: the accounting identity, client side and server side.
    let counter = |k: &str| stats.counters.get(k).copied().unwrap_or(0);
    let server_submitted = counter("jobs_submitted");
    let server_resolved = counter("jobs_completed")
        + counter("jobs_failed")
        + counter("jobs_shed_queue_full")
        + counter("jobs_shed_deadline")
        + counter("jobs_shed_cancelled")
        + counter("jobs_shed_shutdown");
    let done = ledger
        .outcomes
        .values()
        .filter(|k| matches!(k, ChaosKind::Done { .. }))
        .count() as u64;
    let mut ok = true;
    if ledger.outcomes.len() != jobs {
        eprintln!(
            "CHAOS ACCOUNTING FAILED: {jobs} keys submitted, {} reached an outcome",
            ledger.outcomes.len()
        );
        ok = false;
    }
    if ledger.conflicts > 0 {
        eprintln!(
            "CHAOS ACCOUNTING FAILED: {} keys answered inconsistently across the restart",
            ledger.conflicts
        );
        ok = false;
    }
    // Every phase-1 key was answered and durably logged before the kill:
    // its resubmit must be a replay, never a second solve.
    if phase1_replays < phase1 as u64 {
        eprintln!(
            "CHAOS ACCOUNTING FAILED: only {phase1_replays} of {phase1} pre-kill keys \
             came back replayed"
        );
        ok = false;
    }
    // The gate in phase 2 guarantees the log held unfinished jobs at the
    // kill; recovery must have re-enqueued at least one of them, or the
    // run never exercised the code path this harness exists for.
    if counter("jobs_recovered_inflight") == 0 {
        eprintln!("CHAOS ACCOUNTING FAILED: restart recovered zero in-flight jobs");
        ok = false;
    }
    if server_submitted != server_resolved {
        eprintln!(
            "CHAOS ACCOUNTING FAILED (server): {server_submitted} submitted, \
             {server_resolved} resolved"
        );
        ok = false;
    }
    if !status.success() {
        eprintln!("CHAOS FAILED: restarted server exited with {status}");
        ok = false;
    }

    let csv = format!(
        "metric,value\n\
         jobs_total,{jobs}\n\
         phase1_closed,{phase1}\n\
         batch_sent,{batch}\n\
         batch_answered_pre_kill,{batch_answered_pre_kill}\n\
         resubmitted,{resubmitted}\n\
         replays_confirmed,{}\n\
         phase1_replays,{phase1_replays}\n\
         outcomes_done,{done}\n\
         outcomes_total,{}\n\
         conflicts,{}\n\
         recovered_inflight,{}\n\
         idempotent_replays,{}\n\
         replayed_events,{}\n\
         replayed_jobs,{}\n\
         wal_appends,{}\n\
         wal_fsyncs,{}\n\
         wal_errors,{}\n\
         server_submitted,{server_submitted}\n\
         server_resolved,{server_resolved}\n\
         identity_ok,{}\n",
        ledger.replays_confirmed,
        ledger.outcomes.len(),
        ledger.conflicts,
        counter("jobs_recovered_inflight"),
        counter("jobs_idempotent_replays"),
        counter("replayed_events"),
        counter("replayed_jobs"),
        counter("wal_appends"),
        counter("wal_fsyncs"),
        counter("wal_errors"),
        ok as u8,
    );
    if let Some(dir) = Path::new(&cli.chaos_csv).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
    }
    std::fs::write(&cli.chaos_csv, &csv).map_err(|e| format!("write {}: {e}", cli.chaos_csv))?;
    print!("{csv}");
    eprintln!(
        "chaos: {} outcomes / {jobs} keys, {} replays confirmed, {} recovered in-flight; \
         wrote {}",
        ledger.outcomes.len(),
        ledger.replays_confirmed,
        counter("jobs_recovered_inflight"),
        cli.chaos_csv
    );
    let _ = std::fs::remove_dir_all(&store);

    if !ok {
        return Ok(EXIT_RUNTIME);
    }
    if cli.guard && done == 0 {
        eprintln!("guard FAILED: no job completed across the kill/restart");
        return Ok(EXIT_RUNTIME);
    }
    Ok(0)
}

fn run() -> Result<i32, String> {
    let cli = parse_cli()?;
    if cli.chaos.is_some() {
        return chaos_kill_restart(&cli);
    }
    if cli.workload == Workload::Streaming {
        return run_streaming(&cli);
    }

    // --embed: self-contained run against an in-process server on an
    // ephemeral port (same TCP path, no second process to manage).
    let embedded = if cli.embed {
        let service = SolveService::start(ServiceConfig {
            workers: 4,
            queue_cap: 32,
            cache_cap: 8,
            ..Default::default()
        });
        Some(Arc::new(Server::bind("127.0.0.1:0", service)?))
    } else {
        None
    };
    let addr = match &embedded {
        Some(server) => server.addr().to_string(),
        None => cli.addr.clone(),
    };
    let server_thread = embedded.as_ref().map(|server| {
        let server = Arc::clone(server);
        std::thread::spawn(move || server.run())
    });

    eprintln!(
        "serve_load: {} jobs/mode against {addr} (closed ×{} conns, open @{} jobs/s)",
        cli.jobs, cli.conns, cli.rate
    );
    let closed = closed_loop(
        &addr,
        cli.workload,
        cli.jobs,
        cli.conns.max(1),
        &cli.method,
        &cli.outer,
    )?;
    let open = open_loop(
        &addr,
        cli.workload,
        cli.jobs,
        cli.rate.max(1.0),
        cli.seed,
        &cli.method,
        &cli.outer,
    )?;
    let stats = fetch_stats(&addr)?;

    if cli.shutdown || cli.embed {
        let mut conn = Conn::connect(&addr)?;
        conn.send(&Request::Shutdown { drain: true })?;
        match conn.recv()? {
            Response::ShuttingDown => {}
            other => return Err(format!("expected shutdown ack, got {other:?}")),
        }
    }
    if let Some(h) = server_thread {
        h.join().map_err(|_| "server thread panicked")??;
    }

    // ---- accounting: nothing may be lost, server and client must agree.
    let mut ok = true;
    for (name, t) in [("closed", &closed), ("open", &open)] {
        if t.answered() != t.sent {
            eprintln!(
                "ACCOUNTING FAILED ({name}): {} submitted but only {} answered",
                t.sent,
                t.answered()
            );
            ok = false;
        }
    }
    let counter = |k: &str| stats.counters.get(k).copied().unwrap_or(0);
    let server_submitted = counter("jobs_submitted");
    let server_resolved = counter("jobs_completed")
        + counter("jobs_failed")
        + counter("jobs_shed_queue_full")
        + counter("jobs_shed_deadline")
        + counter("jobs_shed_cancelled")
        + counter("jobs_shed_shutdown");
    if server_submitted != closed.sent + open.sent {
        eprintln!(
            "ACCOUNTING FAILED (server): saw {server_submitted} submissions, clients sent {}",
            closed.sent + open.sent
        );
        ok = false;
    }
    if server_resolved != server_submitted {
        eprintln!(
            "ACCOUNTING FAILED (server): {server_submitted} submitted, {server_resolved} resolved"
        );
        ok = false;
    }

    let hit_ratio = stats
        .gauges
        .get("plan_cache_hit_ratio")
        .copied()
        .unwrap_or(0.0);
    let total_done = closed.done + open.done;
    let workload_desc = match cli.workload {
        Workload::Mixed => "4 plan-cache keys (2 matrices x 3 backends x 2 seeds)",
        Workload::Dist256 => {
            "suite:thermomech_dm:tiny at 256 ranks (dist-async/dist-sync, 2 seeds)"
        }
        Workload::Streaming => unreachable!("streaming workload has its own driver"),
    };
    let json = format!(
        "{{\n  \"description\": \"serve_load against aj-serve: closed loop ({} conns) and open loop (seeded Poisson @{} jobs/s), {} jobs each over {}; latencies are client-side aj-obs histogram midpoints\",\n  \"quick\": {},\n{},\n{},\n  \"server\": {{\n    \"cache_hit_ratio\": {:.4},\n    \"cache_evictions\": {},\n    \"queue_p50_us\": {:.0},\n    \"solve_p50_us\": {:.0}\n  }}\n}}\n",
        cli.conns.max(1),
        cli.rate,
        cli.jobs,
        workload_desc,
        cli.quick,
        mode_json("closed", &closed, ""),
        mode_json("open", &open, &format!("\"rate_jobs_per_s\": {:.1},\n    ", cli.rate)),
        hit_ratio,
        counter("plan_cache_evictions"),
        stats
            .histograms
            .get("serve/queue_us")
            .map_or(0.0, |h| quantile_ms(h, 0.5) * 1000.0),
        stats
            .histograms
            .get("serve/solve_us")
            .map_or(0.0, |h| quantile_ms(h, 0.5) * 1000.0),
    );
    std::fs::write(&cli.out, &json).map_err(|e| format!("write {}: {e}", cli.out))?;
    print!("{json}");
    eprintln!("wrote {}", cli.out);

    if !ok {
        return Ok(EXIT_RUNTIME);
    }
    if total_done == 0 {
        // Nothing executed: the service shed the entire workload.
        return Ok(if closed.shed + open.shed > 0 {
            EXIT_SHED
        } else {
            EXIT_RUNTIME
        });
    }
    if cli.guard {
        if closed.failed + open.failed > 0 {
            eprintln!("guard FAILED: {} jobs failed", closed.failed + open.failed);
            return Ok(EXIT_RUNTIME);
        }
        if hit_ratio <= 0.0 {
            eprintln!("guard FAILED: plan cache never hit on a repeating workload");
            return Ok(EXIT_RUNTIME);
        }
    }
    Ok(0)
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("serve_load: {e}");
            std::process::exit(EXIT_RUNTIME);
        }
    }
}
