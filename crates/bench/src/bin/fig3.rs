//! Regenerates Figure 3: speedup of asynchronous over synchronous Jacobi as
//! a function of the delay δ of one worker (68 workers, one row each, the
//! paper's fd68 matrix, tolerance 1e-3). Compares the §IV model against the
//! simulated-thread implementation; the paper's curves plateau above 40×.

use aj_bench::{fig3_speedup, RunOptions};
use aj_core::report::{print_table, results_path, write_csv};

fn main() {
    let opts = RunOptions::from_args();
    let (model, sim) = fig3_speedup(opts);
    let series = vec![model, sim];
    print_table(
        "Figure 3: async/sync speedup vs delay δ",
        "delay (iterations)",
        &series,
    );
    write_csv(&results_path("fig3"), &series).expect("write results/fig3.csv");
    println!("\nPaper: both model and measured speedups grow with δ and plateau above 40×.");
}
