//! Regenerates Figure 9: the Dubcova2 analogue (ρ(G) > 1, synchronous
//! Jacobi diverges). Relative residual vs relaxations/n: asynchronous
//! Jacobi converges once the rank count is high enough, mirroring the
//! shared-memory Figure 6 result in distributed memory.

use aj_bench::{dist_curve, fig7_rank_counts, suite_scale, RunOptions};
use aj_core::report::{print_table, results_path, write_csv, Series};
use aj_core::Problem;

fn main() {
    let opts = RunOptions::from_args();
    let p = Problem::suite("Dubcova2", suite_scale(opts.quick), opts.seed).expect("Dubcova2");
    let ranks = fig7_rank_counts(opts.quick);
    let iters: u64 = if opts.quick { 60 } else { 200 };
    let mut series: Vec<Series> = Vec::new();
    series.push(dist_curve(&p, ranks[0], false, iters, opts.seed));
    series.last_mut().unwrap().label = "sync".into();
    for &r in &ranks {
        if r <= p.n() {
            series.push(dist_curve(&p, r, true, iters, opts.seed));
        }
    }
    print_table(
        &format!("Figure 9: Dubcova2 (n = {})", p.n()),
        "relaxations/n",
        &series,
    );
    write_csv(&results_path("fig9"), &series).expect("write results/fig9.csv");
    println!("\nPaper: sync diverges; async with enough ranks converges.");
}
