//! Regenerates Figure 4: relative residual 1-norm versus time for
//! synchronous and asynchronous Jacobi under one delayed worker, for both
//! the §IV model (model time) and the simulated threads (simulated ticks).
//! The hallmark behaviours: async keeps reducing the residual even when one
//! row is delayed until convergence, and shows the saw-tooth stall at the
//! second-largest delay.

use aj_bench::{fig4_histories, RunOptions};
use aj_core::report::{print_table, results_path, write_csv};

fn main() {
    let opts = RunOptions::from_args();
    let (model, sim) = fig4_histories(opts);
    print_table(
        "Figure 4 (left): model residual histories",
        "model time",
        &model,
    );
    print_table(
        "Figure 4 (right): simulated-thread residual histories",
        "sim time",
        &sim,
    );
    let mut all = model;
    all.extend(sim);
    write_csv(&results_path("fig4"), &all).expect("write results/fig4.csv");
    println!("\nPaper: async with no delay converges fastest; async under large δ still");
    println!("reduces the residual while sync stalls at the barrier.");
}
