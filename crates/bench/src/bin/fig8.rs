//! Regenerates Figure 8: distributed memory — simulated wall-clock time to
//! reduce the residual by 10× as a function of rank count, sync vs async,
//! for the six convergent Table-I problems (log-interpolated, as in the
//! paper).

use aj_bench::{
    dist_time_curve, fig7_problem_names, fig7_rank_counts, par_map, suite_scale, RunOptions,
};
use aj_core::interp::time_to_reduction;
use aj_core::report::{print_table, results_path, write_csv, Series};
use aj_core::Problem;

fn main() {
    let opts = RunOptions::from_args();
    let ranks = fig7_rank_counts(opts.quick);
    let iters: u64 = if opts.quick { 60 } else { 200 };
    let mut all = Vec::new();
    for name in fig7_problem_names() {
        let p = Problem::suite(name, suite_scale(opts.quick), opts.seed).expect("known problem");
        let feasible: Vec<usize> = ranks.iter().copied().filter(|&r| r <= p.n()).collect();
        // Sync and async runs at every rank count fan across cores.
        let times = par_map(&feasible, |&r| {
            let syn = dist_time_curve(&p, r, false, iters, opts.seed);
            let asy = dist_time_curve(&p, r, true, iters, opts.seed);
            (
                time_to_reduction(&syn.points, 0.1),
                time_to_reduction(&asy.points, 0.1),
            )
        });
        let mut sync_pts = Vec::new();
        let mut async_pts = Vec::new();
        for (&r, &(ts, ta)) in feasible.iter().zip(times.iter()) {
            if let Some(t) = ts {
                sync_pts.push((r as f64, t));
            }
            if let Some(t) = ta {
                async_pts.push((r as f64, t));
            }
        }
        let series = vec![
            Series::new(format!("{name} sync"), sync_pts),
            Series::new(format!("{name} async"), async_pts),
        ];
        print_table(
            &format!("Figure 8: {name}, time to 10× reduction"),
            "ranks",
            &series,
        );
        all.extend(series);
    }
    write_csv(&results_path("fig8"), &all).expect("write results/fig8.csv");
    println!("\nPaper: async is faster in wall-clock across problems and rank counts.");
}
