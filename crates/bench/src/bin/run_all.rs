//! Runs every table/figure binary in sequence by spawning them as child
//! processes, forwarding `--quick`/`--seed`. Convenient smoke test:
//! `cargo run --release -p aj-bench --bin run_all -- --quick`.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let targets = [
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "ablations",
    ];
    for t in targets {
        let path = dir.join(t);
        println!("\n──────── {t} ────────");
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{t} exited with {status}");
    }
    println!("\nAll targets completed. CSVs are under results/.");
}
