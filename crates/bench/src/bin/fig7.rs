//! Regenerates Figure 7: distributed memory — relative residual versus
//! relaxations/n for the six convergent Table-I problems, comparing
//! synchronous Jacobi against asynchronous Jacobi at increasing rank counts
//! (the paper's 1–128 nodes → 32–4096 ranks, green-to-blue gradient).

use aj_bench::{
    dist_curve, fig7_problem_names, fig7_rank_counts, par_map, suite_scale, RunOptions,
};
use aj_core::report::{print_table, results_path, write_csv};
use aj_core::Problem;

fn main() {
    let opts = RunOptions::from_args();
    let ranks = fig7_rank_counts(opts.quick);
    let iters: u64 = if opts.quick { 60 } else { 200 };
    for name in fig7_problem_names() {
        let p = Problem::suite(name, suite_scale(opts.quick), opts.seed).expect("known problem");
        // One sync run plus one async run per rank count, fanned across
        // cores; the (ranks, async?) list keeps the series in curve order.
        let configs: Vec<(usize, bool)> = std::iter::once((ranks[0], false))
            .chain(ranks.iter().filter(|&&r| r <= p.n()).map(|&r| (r, true)))
            .collect();
        let mut series = par_map(&configs, |&(r, asynchronous)| {
            dist_curve(&p, r, asynchronous, iters, opts.seed)
        });
        series[0].label = "sync".into();
        print_table(
            &format!("Figure 7: {name} (n = {})", p.n()),
            "relaxations/n",
            &series,
        );
        write_csv(&results_path(&format!("fig7_{name}")), &series).expect("write fig7 CSV");
    }
    println!("\nPaper: async converges in fewer relaxations; more ranks improve it further,");
    println!("most visibly on the smallest problem (thermomech_dm).");
}
