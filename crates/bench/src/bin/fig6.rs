//! Regenerates Figure 6: the FE matrix (ρ(G) > 1) on which synchronous
//! Jacobi diverges. (a) relative residual vs iterations for 68/136/272
//! threads; (b) a long run showing asynchronous Jacobi truly converges.

use aj_bench::{fig6_divergence_rescue, RunOptions};
use aj_core::report::{print_table, results_path, write_csv};

fn main() {
    let opts = RunOptions::from_args();
    let (series, long) = fig6_divergence_rescue(opts);
    print_table(
        "Figure 6(a): FE matrix, residual vs iterations",
        "iterations",
        &series,
    );
    print_table(
        "Figure 6(b): long async run",
        "iterations",
        std::slice::from_ref(&long),
    );
    let mut all = series;
    all.push(long);
    write_csv(&results_path("fig6"), &all).expect("write results/fig6.csv");
    println!("\nPaper: sync diverges; async converges once enough threads are used, and");
    println!("keeps converging (no later divergence).");
}
