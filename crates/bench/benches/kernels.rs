//! Criterion kernel benchmarks: the building-block costs behind every
//! figure. Sample sizes are kept small so `cargo bench --workspace`
//! completes quickly; these measure *our* kernels, not the paper's
//! hardware.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use aj_core::dmsim::shmem_sim::{run_shmem_async, ShmemSimConfig, StopRule};
use aj_core::dmsim::{run_dist_async, DistConfig};
use aj_core::linalg::{eigen, sweeps, IterationMatrix};
use aj_core::model::{mask::ActiveMask, propagation};
use aj_core::partition::{bfs_partition, block_partition, CommPlan};
use aj_core::Problem;

fn bench_spmv(c: &mut Criterion) {
    let p = Problem::paper_fd("fd4624", 1).unwrap();
    let x = p.x0.clone();
    let mut y = vec![0.0; p.n()];
    c.bench_function("spmv_fd4624", |b| {
        b.iter(|| p.a.spmv_into(black_box(&x), black_box(&mut y)));
    });
}

fn bench_relaxation(c: &mut Criterion) {
    let p = Problem::paper_fd("fd4624", 1).unwrap();
    let diag_inv = vec![1.0; p.n()];
    let mut g = c.benchmark_group("relaxation_sweep");
    g.bench_function("jacobi_iteration", |b| {
        let mut x_next = vec![0.0; p.n()];
        b.iter(|| sweeps::jacobi_iteration(&p.a, &p.b, &diag_inv, black_box(&p.x0), &mut x_next));
    });
    g.bench_function("gauss_seidel_sweep", |b| {
        b.iter_batched(
            || p.x0.clone(),
            |mut x| sweeps::gauss_seidel_sweep(&p.a, &p.b, &diag_inv, black_box(&mut x)),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_sweep_kernel(c: &mut Criterion) {
    // The storage-format abstraction behind every asynchronous block
    // engine: block residuals through csr / SELL-C-σ / RCM-blocked
    // kernels, at a small whole-matrix block, a large whole-matrix block,
    // and the 256-rank subdomain shape the dist engine actually sweeps.
    use aj_core::linalg::{StorageFormat, SweepKernel};
    let formats = [
        StorageFormat::Csr,
        StorageFormat::SellC { c: 8 },
        StorageFormat::RcmBlocked,
    ];
    let mut g = c.benchmark_group("sweep_kernel");
    for (label, matrix) in [("fd272", "fd272"), ("fd4624", "fd4624")] {
        let p = Problem::paper_fd(matrix, 1).unwrap();
        let mut out = vec![0.0; p.n()];
        for format in formats {
            let mut k = SweepKernel::build(&p.a, 0..p.n(), format).unwrap();
            g.bench_function(&format!("{label}/{format}"), |b| {
                b.iter(|| {
                    k.residuals_into(black_box(&p.a), &p.x0, &p.b, &mut out);
                });
            });
        }
    }
    // 256-rank subdomain of the Table-I analogue: ~n/256 rows per kernel,
    // swept over the full-width x (owned + ghost columns).
    let p = Problem::suite("thermomech_dm", aj_core::matrices::suite::Scale::Tiny, 1).unwrap();
    let rows = aj_core::linalg::util::even_ranges(p.n(), 256)[128].clone();
    let mut out = vec![0.0; rows.len()];
    for format in formats {
        let mut k = SweepKernel::build(&p.a, rows.clone(), format).unwrap();
        g.bench_function(&format!("subdomain_256r/{format}"), |b| {
            b.iter(|| {
                k.residuals_into(black_box(&p.a), &p.x0, &p.b[rows.clone()], &mut out);
            });
        });
    }
    g.finish();
}

fn bench_model_step(c: &mut Criterion) {
    let p = Problem::paper_fd("fd4624", 1).unwrap();
    let diag_inv = vec![1.0; p.n()];
    let mask = ActiveMask::random(p.n(), 0.5, 7);
    c.bench_function("model_propagation_step", |b| {
        b.iter_batched(
            || p.x0.clone(),
            |mut x| propagation::apply_step(&p.a, &p.b, &diag_inv, black_box(&mask), &mut x),
            BatchSize::SmallInput,
        );
    });
}

fn bench_residual(c: &mut Criterion) {
    // The monitoring hot path: residual_into (no per-call Vec) and the
    // fused residual_norm (no residual vector at all).
    let p = Problem::paper_fd("fd4624", 1).unwrap();
    let mut g = c.benchmark_group("residual");
    g.bench_function("residual_alloc_fd4624", |b| {
        b.iter(|| p.a.residual(black_box(&p.x0), &p.b));
    });
    g.bench_function("residual_into_fd4624", |b| {
        let mut r = vec![0.0; p.n()];
        b.iter(|| p.a.residual_into(black_box(&p.x0), &p.b, &mut r));
    });
    g.bench_function("residual_norm_fused_fd4624", |b| {
        b.iter(|| {
            p.a.residual_norm(black_box(&p.x0), &p.b, aj_core::linalg::vecops::Norm::L1)
        });
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    use aj_core::dmsim::EventQueue;
    // Slot free-list under the simulator's steady-state pattern: each
    // popped event schedules a successor, so slots recycle 1-for-1.
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("steady_state_churn_256_pending", |b| {
        b.iter_batched(
            || {
                let mut q: EventQueue<u64> = EventQueue::new();
                for i in 0..256u64 {
                    q.push(i, i);
                }
                q
            },
            |mut q| {
                for i in 0..4096u64 {
                    let (tick, v) = q.pop().unwrap();
                    q.push(tick + 7 + (v & 3), i);
                }
                q
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("burst_push_pop_4096", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..4096u64 {
                q.push(black_box(i * 37 % 512), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        });
    });
    g.finish();
}

fn bench_event_engine(c: &mut Criterion) {
    let p = Problem::paper_fd("fd272", 1).unwrap();
    c.bench_function("shmem_sim_50_iterations_68_workers", |b| {
        b.iter(|| {
            let mut cfg = ShmemSimConfig::new(68, p.n(), 1);
            cfg.stop = StopRule::FixedIterations(50);
            cfg.tol = 0.0;
            run_shmem_async(black_box(&p.a), &p.b, &p.x0, &cfg)
        });
    });
    c.bench_function("dist_sim_20_iterations_32_ranks", |b| {
        let part = block_partition(p.n(), 32);
        b.iter(|| {
            let mut cfg = DistConfig::new(p.n(), 1);
            cfg.stop = StopRule::FixedIterations(20);
            cfg.tol = 0.0;
            run_dist_async(black_box(&p.a), &p.b, &p.x0, &part, &cfg)
        });
    });
}

fn bench_partitioning(c: &mut Criterion) {
    let p = Problem::paper_fd("fd4624", 1).unwrap();
    let mut g = c.benchmark_group("partitioning");
    g.bench_function("bfs_partition_64", |b| {
        b.iter(|| bfs_partition(black_box(&p.a), 64));
    });
    g.bench_function("comm_plan_64", |b| {
        let part = block_partition(p.n(), 64);
        b.iter(|| CommPlan::build(black_box(&p.a), &part));
    });
    g.finish();
}

fn bench_reconstruction(c: &mut Criterion) {
    // Trace capture + §IV-A reconstruction on the paper's Fig-2 setup.
    let p = Problem::paper_fd("fd272", 1).unwrap();
    let mut cfg = aj_core::dmsim::shmem_sim::ShmemSimConfig::new(68, p.n(), 1);
    cfg.stop = StopRule::FixedIterations(10);
    cfg.tol = 0.0;
    let (_, trace) = aj_core::dmsim::shmem_sim::run_shmem_async_traced(&p.a, &p.b, &p.x0, &cfg);
    c.bench_function("trace_reconstruct_fd272_68w_10it", |b| {
        b.iter(|| aj_core::trace::reconstruct(black_box(&trace)));
    });
}

fn bench_orderings_and_krylov(c: &mut Criterion) {
    let p = Problem::paper_fd("fd4624", 1).unwrap();
    let mut g = c.benchmark_group("orderings_krylov");
    g.sample_size(10);
    g.bench_function("rcm_fd4624", |b| {
        b.iter(|| aj_core::partition::reverse_cuthill_mckee(black_box(&p.a)));
    });
    g.bench_function("multigrid_vcycle_31x31", |b| {
        let a = aj_core::matrices::fd::laplacian_2d(31, 31);
        let bb: Vec<f64> = (0..961).map(|i| ((i % 13) as f64 - 6.0) / 6.0).collect();
        let mg = aj_core::linalg::multigrid::TwoGrid::new(a, 31, 31).unwrap();
        b.iter_batched(
            || vec![0.0; 961],
            |mut x| mg.v_cycle(black_box(&bb), &mut x).unwrap(),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("cg_fd4624_to_1e-6", |b| {
        b.iter(|| {
            aj_core::linalg::krylov::conjugate_gradient(
                black_box(&p.a),
                &p.b,
                &p.x0,
                1e-6,
                10_000,
                aj_core::linalg::vecops::Norm::L2,
            )
            .unwrap()
        });
    });
    g.finish();
}

fn bench_eigen(c: &mut Criterion) {
    let p = Problem::paper_fd("fd272", 1).unwrap();
    let mut g = c.benchmark_group("eigen");
    g.sample_size(10);
    g.bench_function("lanczos_extreme_fd272", |b| {
        b.iter(|| eigen::lanczos_extreme(black_box(&p.a), 80).unwrap());
    });
    g.bench_function("power_method_abs_g", |b| {
        let gabs = IterationMatrix::new(&p.a).abs_csr();
        b.iter(|| eigen::power_method(black_box(&gabs), 1e-8, 2_000).unwrap());
    });
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_spmv, bench_relaxation, bench_sweep_kernel, bench_model_step, bench_residual, bench_event_queue, bench_event_engine, bench_partitioning, bench_reconstruction, bench_orderings_and_krylov, bench_eigen
}
criterion_main!(kernels);
