//! Small dense matrices.
//!
//! Used for the model-validation experiments on the paper's small FD
//! matrices (n ≤ a few thousand), the dense symmetric eigensolver, and
//! tests. Storage is row-major.

use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_rows(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "from_rows: length mismatch");
        DenseMatrix {
            nrows,
            ncols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Underlying storage (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// `y = A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: length mismatch");
        (0..self.nrows)
            .map(|i| crate::vecops::dot(self.row(i), x))
            .collect()
    }

    /// `C = A B`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul: inner dimension mismatch");
        let mut c = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    c[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        c
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Maximum absolute entry difference to `other`.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when `‖A − Aᵀ‖_max ≤ tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// One norm (max absolute column sum).
    pub fn norm_one(&self) -> f64 {
        (0..self.ncols)
            .map(|j| (0..self.nrows).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i = DenseMatrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn symmetry_check() {
        let s = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 5.0]);
        assert!(s.is_symmetric(0.0));
        let ns = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 5.0]);
        assert!(!ns.is_symmetric(0.5));
        assert!(!DenseMatrix::zeros(2, 3).is_symmetric(0.0));
    }

    #[test]
    fn dense_norms() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, -3.0, 2.0, 0.0]);
        assert_eq!(a.norm_inf(), 4.0);
        assert_eq!(a.norm_one(), 3.0);
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = DenseMatrix::identity(2);
        let mut b = a.clone();
        b[(0, 1)] = 0.25;
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }
}
